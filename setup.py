"""Setuptools shim.

The offline environment has no ``wheel`` package, so PEP 660 editable
installs (which build a wheel) fail.  This shim lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` code path; all project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
