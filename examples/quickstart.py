"""Quickstart: build a CrypText system and use its four functions.

Run with::

    python examples/quickstart.py

The script builds the human-written token database from a synthetic social
corpus (the offline stand-in for the paper's Twitter/Reddit crawl), then
exercises Look Up, Perturbation, and Normalization exactly as the paper's
demo does.  Social Listening has its own example (social_listening.py).
"""

from __future__ import annotations

from repro import CrypText
from repro.datasets import build_social_corpus, corpus_texts


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build the database from a corpus of noisy, human-written posts.
    # ------------------------------------------------------------------ #
    posts = build_social_corpus(num_posts=1200, seed=42)
    cryptext = CrypText.from_corpus(corpus_texts(posts))
    stats = cryptext.stats()
    print("=== dictionary ===")
    print(f"raw tokens          : {stats.total_tokens}")
    print(f"unique sounds (k=1) : {stats.unique_keys[1]}")
    print(f"observed perturbed  : {stats.perturbation_tokens}")

    # ------------------------------------------------------------------ #
    # 2. Look Up (paper §III-B): what perturbations of a keyword exist?
    # ------------------------------------------------------------------ #
    print("\n=== look up ===")
    for keyword in ("democrats", "vaccine", "amazon"):
        result = cryptext.look_up(keyword)
        print(f"{keyword:>10} -> {', '.join(result.perturbation_tokens()[:8])}")

    # ------------------------------------------------------------------ #
    # 3. Perturbation (paper §III-D): manipulate a tweet at a chosen ratio.
    # ------------------------------------------------------------------ #
    print("\n=== perturb ===")
    tweet = "the democrats and republicans keep fighting about the vaccine mandate"
    for ratio in (0.15, 0.25, 0.5):
        outcome = cryptext.perturb(tweet, ratio=ratio)
        print(f"r={ratio:<5} {outcome.perturbed_text}")

    # ------------------------------------------------------------------ #
    # 4. Normalization (paper §III-C): detect and de-perturb noisy text.
    # ------------------------------------------------------------------ #
    print("\n=== normalize ===")
    noisy = "The democRATs responsible for the vacc1ne mandate are repubLIEcans now"
    normalized = cryptext.normalize(noisy)
    print(f"in : {noisy}")
    print(f"out: {normalized.normalized_text}")
    for correction in normalized.perturbed_corrections:
        print(
            f"  {correction.original!r} -> {correction.corrected!r} "
            f"({correction.category.value})"
        )


if __name__ == "__main__":
    main()
