"""Social Listening: monitor perturbation usage over time (paper §III-E).

Builds the simulated platform, runs the stream crawler so the dictionary
keeps learning new perturbations (paper §III-F), and then monitors a
watch-list of keywords: per-day frequency and sentiment of posts reachable
through each keyword's perturbations, exported in the chart.js-style payload
the CrypText GUI renders.

Run with::

    python examples/social_listening.py
"""

from __future__ import annotations

from pathlib import Path

from repro import CrypText
from repro.datasets import build_social_corpus
from repro.social import SocialPlatform, StreamCrawler
from repro.viz import (
    build_multi_keyword_chart,
    build_timeline_chart,
    build_word_cloud,
    write_html_report,
)

WATCH_LIST = ("vaccine", "democrats", "republicans")


def main() -> None:
    posts = build_social_corpus(num_posts=1500, seed=23, num_days=21)
    platform = SocialPlatform("twitter")
    platform.ingest_posts(posts)

    # Start from a lexicon-only system and let the crawler learn the wild
    # perturbations from the platform stream, round by round.
    cryptext = CrypText.empty()
    crawler = StreamCrawler(platform, cryptext.dictionary, batch_size=300)
    print("=== crawler ===")
    for report in crawler.crawl_all():
        print(
            f"round {report.round_index}: processed {report.posts_processed} posts, "
            f"+{report.new_tokens} new tokens (dictionary={report.dictionary_size})"
        )
    if cryptext.cache is not None:
        cryptext.cache.clear()

    listener = cryptext.social_listener(platform)
    usages = listener.monitor_keywords(WATCH_LIST)

    print("\n=== watch list ===")
    for keyword, usage in usages.items():
        print(
            f"{keyword:<14} posts={usage.total_posts:<5} "
            f"via-perturbation={usage.perturbed_posts:<4} "
            f"({usage.perturbed_share:.0%}) perturbations-tracked={len(usage.perturbations)}"
        )
        top = sorted(
            usage.per_perturbation_counts.items(), key=lambda item: -item[1]
        )[:5]
        if top:
            print("    top perturbations: " + ", ".join(f"{t}({c})" for t, c in top))

    print("\n=== timeline for 'vaccine' (chart.js payload) ===")
    chart = build_timeline_chart(usages["vaccine"])
    for label, frequency in zip(chart["labels"], chart["datasets"][0]["data"]):
        print(f"  {label}: {'#' * frequency} {frequency}")

    comparison = build_multi_keyword_chart(usages, kind="negative_share")
    print("\n=== negative share by keyword and day ===")
    print("  dates: " + ", ".join(comparison["labels"][:7]) + ", ...")
    for dataset in comparison["datasets"]:
        head = ", ".join(f"{value:.2f}" for value in dataset["data"][:7])
        print(f"  {dataset['label']:<14} {head}, ...")

    # A standalone HTML report with the word clouds and timelines (the static
    # equivalent of the CrypText website).
    report_path = Path("examples_output") / "social_listening_report.html"
    write_html_report(
        report_path,
        title="CrypText social listening report",
        word_clouds={
            keyword: build_word_cloud(cryptext.look_up(keyword)) for keyword in WATCH_LIST
        },
        keyword_usages=usages,
    )
    print(f"\nwrote HTML report to {report_path}")


if __name__ == "__main__":
    main()
