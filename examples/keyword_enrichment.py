"""Keyword enrichment: find the censored side of a conversation (paper §III-B).

The paper's motivating use case: searching a platform with a plain keyword
misses the posts whose authors deliberately misspelled it; adding the
keyword's perturbations as extra queries surfaces that (usually more
negative) content.  The script reproduces the study on the simulated
platform and prints the plain-vs-enriched comparison for each keyword.

Run with::

    python examples/keyword_enrichment.py
"""

from __future__ import annotations

from repro import CrypText
from repro.datasets import build_social_corpus, corpus_texts
from repro.social import SocialListener, SocialPlatform

KEYWORDS = ("democrats", "republicans", "vaccine")


def main() -> None:
    posts = build_social_corpus(num_posts=1500, seed=7)
    cryptext = CrypText.from_corpus(corpus_texts(posts))
    platform = SocialPlatform("twitter")
    platform.ingest_posts(posts)
    listener = SocialListener(platform, cryptext.lookup_engine)

    print(f"platform holds {len(platform)} posts\n")
    print(f"{'keyword':<14}{'plain':>8}{'enriched':>10}{'neg(plain)':>12}{'neg(enriched)':>15}")
    for keyword in KEYWORDS:
        comparison = listener.keyword_enrichment_comparison(keyword)
        print(
            f"{keyword:<14}{comparison['plain_matches']:>8}"
            f"{comparison['enriched_matches']:>10}"
            f"{comparison['plain_negative_share']:>12.2%}"
            f"{comparison['enriched_negative_share']:>15.2%}"
        )

    print("\nenriched queries used for 'vaccine':")
    print("  " + ", ".join(cryptext.look_up("vaccine").enriched_queries(limit=12)))

    print("\nexample posts only reachable through perturbations of 'vaccine':")
    perturbations = cryptext.look_up("vaccine").perturbation_tokens()
    plain_ids = {post["post_id"] for post in platform.search("vaccine").posts}
    enriched = platform.search(("vaccine", *perturbations))
    shown = 0
    for post in enriched.posts:
        if post["post_id"] not in plain_ids and shown < 5:
            print(f"  - {post['text']}")
            shown += 1


if __name__ == "__main__":
    main()
