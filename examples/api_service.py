"""Bulk usage through the token-authorized service layer (paper §III-F).

The deployed CrypText exposes Look Up / Normalization / Perturbation as
secured bulk APIs behind authorization tokens.  This example stands up the
in-process service, issues tokens with different scopes, and walks through
the request/response flow a client integration would use — including what
happens on missing tokens, missing scopes, and rate limiting.

Run with::

    python examples/api_service.py
"""

from __future__ import annotations

import json

from repro import CrypText
from repro.api import CrypTextService, RateLimiter
from repro.datasets import build_social_corpus, corpus_texts
from repro.social import SocialPlatform


def main() -> None:
    posts = build_social_corpus(num_posts=1000, seed=3)
    cryptext = CrypText.from_corpus(corpus_texts(posts))
    platform = SocialPlatform("twitter")
    platform.ingest_posts(posts)

    service = CrypTextService(
        cryptext,
        platform=platform,
        rate_limiter=RateLimiter(max_requests=5, window_seconds=60),
    )

    # Tokens are "provided upon request" with per-client scopes.
    researcher = service.issue_token("researcher")  # all non-admin scopes
    lookup_only = service.issue_token("search-bot", scopes={"lookup"})
    print("issued tokens:")
    print(f"  researcher : scopes={sorted(researcher.scopes)}")
    print(f"  search-bot : scopes={sorted(lookup_only.scopes)}")

    # --- bulk Look Up ----------------------------------------------------
    response = service.lookup(researcher.token, ["democrats", "vaccine"])
    print("\nbulk lookup status:", response.status)
    for query, result in response.body["results"].items():
        tokens = [match["token"] for match in result["matches"][:6]]
        print(f"  {query}: {tokens}")

    # --- bulk Normalization ----------------------------------------------
    response = service.normalize(
        researcher.token,
        ["the demokrats push the vacc1ne mandate", "repubLIEcans are calling for it"],
    )
    for result in response.body["results"]:
        print(f"  normalize: {result['original_text']!r} -> {result['normalized_text']!r}")

    # --- bulk Perturbation -------------------------------------------------
    response = service.perturb(
        researcher.token, ["the democrats support the vaccine mandate"], ratio=0.5
    )
    print("  perturb  :", response.body["results"][0]["perturbed_text"])

    # --- Social Listening ---------------------------------------------------
    response = service.listen(researcher.token, ["vaccine"])
    usage = response.body["results"]["vaccine"]
    print(
        f"  listen   : vaccine matched {usage['total_posts']} posts, "
        f"{usage['perturbed_posts']} via perturbations"
    )

    # --- error handling ------------------------------------------------------
    print("\nerror handling:")
    print("  no token        ->", service.lookup(None, ["vaccine"]).status)
    print("  wrong scope     ->", service.perturb(lookup_only.token, ["hi"], ratio=0.2).status)
    for _ in range(10):
        throttled = service.lookup(lookup_only.token, ["vaccine"])
    print("  rate limited    ->", throttled.status)

    # --- stats, as JSON as a web client would see it -------------------------
    stats = service.stats(researcher.token)
    print("\ndictionary stats payload:")
    print(json.dumps(stats.body["stats"], indent=2)[:400], "...")


if __name__ == "__main__":
    main()
