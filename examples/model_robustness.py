"""Model robustness evaluation: the Figure-4 study as a script (paper §III-D).

Trains the three simulated NLP APIs (toxicity, sentiment, topic
categorization) on clean text, then measures their accuracy on inputs
perturbed by CrypText at increasing manipulation ratios, and contrasts the
damage with the machine-generated TextBugger baseline.

Run with::

    python examples/model_robustness.py
"""

from __future__ import annotations

from repro import CrypText
from repro.adversarial import TextBugger
from repro.classifiers import (
    RobustnessEvaluator,
    SimulatedCategoryAPI,
    SimulatedSentimentAPI,
    SimulatedToxicityAPI,
)
from repro.datasets import build_robustness_dataset, build_social_corpus, corpus_texts
from repro.viz import build_benchmark_page

RATIOS = (0.0, 0.15, 0.25, 0.5)
TRAIN, TEST = 400, 120


def train_api(api, kind: str, seed: int):
    texts, labels = build_robustness_dataset(kind, num_samples=TRAIN + TEST, seed=seed)
    api.train(texts[:TRAIN], labels[:TRAIN])
    return api, texts[TRAIN:], labels[TRAIN:]


def main() -> None:
    posts = build_social_corpus(num_posts=1500, seed=11)
    cryptext = CrypText.from_corpus(corpus_texts(posts))

    apis_and_data = [
        train_api(SimulatedToxicityAPI(), "toxicity", seed=1),
        train_api(SimulatedSentimentAPI(), "sentiment", seed=2),
        train_api(SimulatedCategoryAPI(), "topic", seed=3),
    ]

    cryptext_evaluator = RobustnessEvaluator(
        lambda text, ratio: cryptext.perturb(text, ratio=ratio).perturbed_text,
        ratios=RATIOS,
        repeats=3,
    )
    textbugger = TextBugger(seed=5)
    bugger_evaluator = RobustnessEvaluator(
        lambda text, ratio: textbugger.perturb(text, ratio=ratio),
        ratios=RATIOS,
        repeats=3,
    )

    print("accuracy of simulated NLP APIs under perturbation\n")
    header = f"{'service':<24}{'generator':<14}" + "".join(f"r={r:<7}" for r in RATIOS)
    print(header)
    results_for_page = {}
    for api, texts, labels in apis_and_data:
        for generator_name, evaluator in (
            ("cryptext", cryptext_evaluator),
            ("textbugger", bugger_evaluator),
        ):
            points = evaluator.evaluate(api, texts, labels)
            row = "".join(f"{point.accuracy:<9.3f}" for point in points)
            print(f"{api.service_name:<24}{generator_name:<14}{row}")
            if generator_name == "cryptext":
                results_for_page[api.service_name] = points

    page = build_benchmark_page(results_for_page)
    print("\nML benchmark page rows (as the CrypText website would list them):")
    for row in page["rows"]:
        print(
            f"  {row['service']:<24} r={row['ratio']:<5} "
            f"accuracy={row['accuracy']:.3f} drop={row['accuracy_drop']:.3f}"
        )


if __name__ == "__main__":
    main()
