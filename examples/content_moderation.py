"""Content moderation: catching perturbation-based evasion (paper §III-C / §III-E).

A clean-trained toxicity model misses abusive posts whose key words are
perturbed ("w0rthless", "sc-um", "paTHEtic").  The moderation pipeline runs
the model on the raw text *and* on the CrypText-normalized text, and also
escalates posts that hide sensitive vocabulary behind perturbations — the
workflow the paper proposes for platform gatekeepers.

Run with::

    python examples/content_moderation.py
"""

from __future__ import annotations

from repro import CrypText
from repro.classifiers import SimulatedToxicityAPI
from repro.datasets import (
    build_robustness_dataset,
    build_social_corpus,
    corpus_texts,
)
from repro.social import ModerationPipeline


def main() -> None:
    # The platform's traffic and the CrypText dictionary built from it.
    posts = build_social_corpus(num_posts=1500, seed=31)
    cryptext = CrypText.from_corpus(corpus_texts(posts))

    # A toxicity model trained on clean text only (like commercial APIs).
    # The keyword-centred dataset mirrors the situation moderation models
    # face: the abusive keyword carries the decision.
    texts, labels = build_robustness_dataset("toxicity", num_samples=500, seed=31)
    toxicity_api = SimulatedToxicityAPI().train(texts, labels)

    pipeline = ModerationPipeline(cryptext, toxicity_api, sensitive_review_threshold=1)

    # Review the platform's perturbed toxic traffic.
    incoming = [post.text for post in posts if post.has_perturbation][:120]
    report = pipeline.review_posts(incoming)
    summary = report.summary()

    print("moderation summary over", summary["total"], "perturbed posts")
    for action in ("remove", "remove_after_normalization", "review", "allow"):
        print(f"  {action:<28} {summary[action]}")

    if report.caught_by_normalization:
        print("\nevasive posts caught only after normalization:")
        for verdict in report.caught_by_normalization[:5]:
            print(f"  raw       : {verdict.text}")
            print(f"  normalized: {verdict.normalized_text}")
            print(f"  reason    : {verdict.reason}\n")

    print("\nposts escalated for human review (sensitive perturbations):")
    for verdict in report.needs_review[:5]:
        tokens = ", ".join(verdict.perturbed_sensitive_tokens)
        print(f"  {verdict.text}")
        print(f"    hidden sensitive tokens: {tokens}")

    # A targeted demonstration of the evasion mechanism: perturbing the
    # insult drains the model's toxicity score; normalization restores it.
    print("\ntargeted evasion check (toxicity score of the model):")
    clean = "you are a truly worthless person and everyone here knows it"
    evasive = "you are a truly w0rth-less person and everyone here knows it"
    restored = cryptext.normalize(evasive).normalized_text
    for label, text in (("clean", clean), ("perturbed", evasive), ("normalized", restored)):
        score = toxicity_api.analyze(text).scores.get("toxic", 0.0)
        print(f"  {label:<11} toxicity={score:.3f}  {text}")


if __name__ == "__main__":
    main()
