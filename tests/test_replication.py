"""Fault-injection harness for the replication subsystem.

The contract under test: a follower replica that hydrates from the leader's
snapshot chain and tails its WAL converges to a dictionary observably
identical to the leader — through leader crashes mid-append (torn tails),
follower kills mid-catch-up (idempotent re-tail), segment truncation under
a live tail (graceful re-hydration), and arbitrary interleavings of leader
writes, saves, compactions, and poll ticks.  Around the replicas: the
single-writer flock guard fails loudly, the staleness bound is enforced
against an injectable clock, the replica set routes round-robin with
lag-aware exclusion, and the asyncio front serves the whole path over real
sockets.
"""

from __future__ import annotations

import asyncio
import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import CrypText, CrypTextConfig
from repro.api import AsyncCrypTextService, CrypTextService, RateLimiter
from repro.errors import WalError
from repro.replication import Follower, ReplicaSet, WalTail
from repro.storage import SNAPSHOT_FILE_NAME
from repro.wal import (
    ChangeLog,
    SingleWriterGuard,
    gc_superseded_segments,
    supersede_wal_segments,
    wal_directory_for,
)
from repro.wal.log import decode_segment

CONFIG = CrypTextConfig(cache_enabled=False)

CORPUS = [
    "the demokrats hate the vacc1ne",
    "the dirrty republicans lie",
    "teh vaccine works",
    "the democRATs and the repubLIEcans argue online",
]

LATER = [
    "fresh amaz0n chatter tonight",
    "mus-lim families moved into the neighborhood",
    "the m0derators deleted everything again",
]


class FakeClock:
    """Injectable monotonic clock for staleness tests."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _leader(directory: Path) -> CrypText:
    """A journaling leader writing its chain + WAL under ``directory``."""
    system = CrypText.empty(config=CONFIG, seed_lexicon=False)
    system.dictionary.attach_wal(ChangeLog(wal_directory_for(directory)))
    return system


def _follower(directory: Path, **kwargs) -> Follower:
    return Follower(directory, config=CONFIG, **kwargs)


def _assert_converged(leader: CrypText, follower: Follower) -> None:
    """The replica must be observably identical to the leader."""
    assert (
        follower.system.dictionary.content_fingerprint()
        == leader.dictionary.content_fingerprint()
    )
    assert follower.system.dictionary.token_counts() == leader.dictionary.token_counts()
    for probe in ("vaccine", "democrats", "republicans", "amazon", "zzzz"):
        assert follower.system.look_up(probe) == leader.look_up(probe), probe


def _tail_segment(directory: Path) -> Path:
    """The active (highest-numbered) WAL segment under a leader directory."""
    segments = sorted(wal_directory_for(directory).glob("wal-*.seg"))
    assert segments, "expected at least one WAL segment"
    return segments[-1]


# --------------------------------------------------------------------------- #
# the tailer
# --------------------------------------------------------------------------- #
class TestWalTail:
    def test_missing_directory_is_quiet_not_a_gap(self, tmp_path):
        batch = WalTail(tmp_path / "nowhere").read_after(0)
        assert batch.records == () and not batch.gap

    def test_reads_only_records_past_the_position(self, tmp_path):
        wal = ChangeLog(tmp_path)
        for index in range(5):
            wal.append("add_token", {"token": f"tok{index}", "source": "t", "count": 1})
        tail = WalTail(tmp_path)
        assert [r.seq for r in tail.read_after(0).records] == [1, 2, 3, 4, 5]
        assert [r.seq for r in tail.read_after(3).records] == [4, 5]
        assert tail.read_after(5).records == ()

    def test_unreachable_history_is_a_gap(self, tmp_path):
        wal = ChangeLog(tmp_path)
        for index in range(3):
            wal.append("add_token", {"token": f"tok{index}", "source": "t", "count": 1})
        # The leader resets past the tail's position: seqs 1..3 are gone
        # and the next segment starts at 11 — unreachable from seq 0.
        wal.reset(next_seq_floor=10)
        batch = WalTail(tmp_path).read_after(0)
        assert batch.gap and batch.records == ()

    def test_torn_tail_serves_the_contiguous_prefix(self, tmp_path):
        wal = ChangeLog(tmp_path)
        for index in range(5):
            wal.append("add_token", {"token": f"tok{index}", "source": "t", "count": 1})
        wal.close()
        segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
        complete = segment.read_bytes()
        segment.write_bytes(complete[:-7])  # crash mid-frame on record 5
        tail = WalTail(tmp_path)
        assert [r.seq for r in tail.read_after(0).records] == [1, 2, 3, 4]
        segment.write_bytes(complete)  # the append completes after all
        assert [r.seq for r in tail.read_after(4).records] == [5]


# --------------------------------------------------------------------------- #
# follower convergence & fault injection
# --------------------------------------------------------------------------- #
class TestFollowerReplication:
    def test_follower_converges_from_chain_plus_tail(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS[:2], source="corpus")
        leader.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        leader.learn_from(CORPUS[2:], source="corpus")  # tail lives only in the WAL
        follower = _follower(tmp_path)
        follower.catch_up()
        assert follower.applied_seq == leader.dictionary.wal.last_seq
        assert follower.stats()["hydrated"]
        _assert_converged(leader, follower)

    def test_leader_crash_mid_append_then_restart(self, tmp_path):
        """Kill-sim: torn tail while a follower tails; leader restarts and repairs."""
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        leader.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        leader.learn_from(LATER[:1], source="stream")
        # The crash: a half-flushed frame lands on the active segment.
        with _tail_segment(tmp_path).open("ab") as handle:
            handle.write(b"deadbeefcafe")  # valid hex prefix, torn frame
        follower = _follower(tmp_path)
        follower.catch_up()  # applies every complete record, ignores the tear
        crashed_seq = follower.applied_seq
        assert crashed_seq == leader.dictionary.wal.last_seq
        # The restarted leader repairs the tail and keeps writing.
        leader.dictionary.wal.close()
        restarted = CrypText.empty(config=CONFIG, seed_lexicon=False)
        report = restarted.recover(tmp_path)
        assert report.loaded and report.torn_bytes > 0
        restarted.learn_from(LATER[1:], source="stream")
        follower.catch_up()
        assert follower.applied_seq == restarted.dictionary.wal.last_seq > crashed_seq
        _assert_converged(restarted, follower)

    def test_follower_killed_mid_catchup_retails_idempotently(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS[:2], source="corpus")
        leader.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        leader.learn_from(CORPUS[2:] + LATER, source="stream")
        # First incarnation dies after hydration + a partial tail; its
        # replacement starts from scratch and must reach the same state.
        victim = _follower(tmp_path)
        victim.hydrate()
        victim.poll()
        replacement = _follower(tmp_path, record_applied_seqs=True)
        replacement.catch_up()
        _assert_converged(leader, replacement)
        # Re-polling is a no-op: records at or below the position never
        # apply twice.
        before = replacement.stats()
        assert replacement.poll() == 0
        after = replacement.stats()
        assert after["applied_records"] == before["applied_records"]
        assert after["applied_seq"] == before["applied_seq"]
        applied = replacement.applied_seqs
        assert len(applied) == after["applied_records"] + after["skipped_records"]

    def test_truncation_under_the_tail_triggers_rehydration(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS[:2], source="corpus")
        leader.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        leader.learn_from(CORPUS[2:], source="corpus")
        follower = _follower(tmp_path)
        follower.catch_up()
        # The leader folds everything into a full snapshot and truncates
        # the journal past the follower's position, then keeps writing.
        leader.learn_from(LATER[:2], source="stream")
        leader.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        leader.dictionary.wal.truncate_through(leader.dictionary.wal.last_seq)
        leader.learn_from(LATER[2:], source="stream")
        follower.catch_up()
        assert follower.stats()["rehydrations"] >= 1
        _assert_converged(leader, follower)

    def test_gap_with_no_usable_chain_stays_stale(self, tmp_path):
        wal = ChangeLog(wal_directory_for(tmp_path))
        wal.append("add_token", {"token": "alpha", "source": "t", "count": 1})
        wal.reset(next_seq_floor=40)  # history gone, no snapshot to bridge it
        follower = _follower(tmp_path)
        assert follower.poll() == 0
        assert follower.stats()["rehydrations"] >= 1
        assert follower.lag_seconds() is None  # never synced successfully

    def test_unknown_operations_advance_the_position(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS[:1], source="corpus")
        leader.dictionary.wal.append("frobnicate", {"knob": 11})
        follower = _follower(tmp_path)
        follower.catch_up()
        stats = follower.stats()
        assert stats["skipped_records"] == 1
        assert follower.applied_seq == leader.dictionary.wal.last_seq
        assert follower.poll() == 0  # the unknown record is not re-read


# --------------------------------------------------------------------------- #
# random interleavings of writes, saves, compactions, and poll ticks
# --------------------------------------------------------------------------- #
WORDS = [f"zorbment{index}q" for index in range(48)]

OPS = st.lists(
    st.sampled_from(["learn", "save_full", "save_delta", "truncate", "poll"]),
    min_size=1,
    max_size=24,
)


class TestInterleavingProperty:
    @settings(max_examples=20, deadline=None)
    @given(ops=OPS)
    def test_follower_converges_under_any_interleaving(self, ops):
        """Any interleaving of leader work and poll ticks ends byte-identical."""
        with tempfile.TemporaryDirectory() as tmp:
            work = Path(tmp)
            leader = _leader(work)
            follower = _follower(work, record_applied_seqs=True)
            word = iter(WORDS)
            for op in ops:
                if op == "learn":
                    leader.learn_from([f"the {next(word)} spreads"], source="stream")
                elif op == "save_full":
                    leader.save_snapshot(work / SNAPSHOT_FILE_NAME)
                elif op == "save_delta":
                    leader.dictionary.save_snapshot(
                        work / SNAPSHOT_FILE_NAME, incremental=True
                    )
                elif op == "truncate":
                    leader.save_snapshot(work / SNAPSHOT_FILE_NAME)
                    wal = leader.dictionary.wal
                    wal.truncate_through(wal.last_seq)
                else:
                    follower.poll()
            follower.catch_up()
            assert (
                follower.system.dictionary.content_fingerprint()
                == leader.dictionary.content_fingerprint()
            )
            assert (
                follower.system.dictionary.token_counts()
                == leader.dictionary.token_counts()
            )
            # No sequence ever applied twice (the log is a set), and the
            # position ends at the leader's.
            assert follower.applied_seq == leader.dictionary.wal.last_seq


# --------------------------------------------------------------------------- #
# staleness bound (injectable clock)
# --------------------------------------------------------------------------- #
class TestStalenessBound:
    def test_freshness_tracks_the_injected_clock(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS[:1], source="corpus")
        clock = FakeClock()
        follower = _follower(tmp_path, clock=clock)
        assert not follower.is_fresh(5.0)  # never synced
        follower.catch_up()
        assert follower.lag_seconds() == 0.0
        assert follower.is_fresh(5.0)
        clock.advance(4.0)
        assert follower.is_fresh(5.0) and not follower.is_fresh(3.0)
        clock.advance(10.0)
        assert not follower.is_fresh(5.0)
        follower.poll()  # a successful (even empty) round resets the lag
        assert follower.is_fresh(5.0)

    def test_failed_rounds_do_not_reset_the_lag(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS[:1], source="corpus")
        clock = FakeClock()
        follower = _follower(tmp_path, clock=clock)
        follower.catch_up()
        # History becomes unreachable with no chain to re-hydrate from.
        leader.dictionary.wal.reset(
            next_seq_floor=leader.dictionary.wal.last_seq + 50
        )
        clock.advance(30.0)
        follower.poll()
        assert follower.lag_seconds() == pytest.approx(30.0)
        assert not follower.is_fresh(5.0)


# --------------------------------------------------------------------------- #
# replica-set routing
# --------------------------------------------------------------------------- #
class TestReplicaSetRouting:
    def _set(self, tmp_path, count=2):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        clocks = [FakeClock() for _ in range(count)]
        followers = [
            _follower(tmp_path, name=f"follower-{index}", clock=clocks[index])
            for index in range(count)
        ]
        for follower in followers:
            follower.catch_up()
        return leader, followers, clocks

    def test_round_robin_across_fresh_followers(self, tmp_path):
        leader, followers, _clocks = self._set(tmp_path)
        replica_set = ReplicaSet(leader, followers, max_staleness_seconds=60.0)
        routed = [replica_set.route() for _ in range(4)]
        assert routed == [
            followers[0].system,
            followers[1].system,
            followers[0].system,
            followers[1].system,
        ]
        status = replica_set.status()
        assert status["routed_to_followers"] == 4
        assert status["routed_to_leader"] == 0

    def test_stale_followers_are_excluded(self, tmp_path):
        leader, followers, clocks = self._set(tmp_path)
        replica_set = ReplicaSet(leader, followers, max_staleness_seconds=5.0)
        clocks[0].advance(30.0)  # follower-0 falls behind the bound
        assert replica_set.route() is followers[1].system
        clocks[1].advance(30.0)  # everyone stale: the leader absorbs reads
        assert replica_set.route() is leader
        assert replica_set.status()["routed_to_leader"] == 1

    def test_status_reports_sequence_lag(self, tmp_path):
        leader, followers, _clocks = self._set(tmp_path)
        leader.learn_from(LATER[:1], source="stream")  # followers now behind
        status = ReplicaSet(leader, followers, max_staleness_seconds=60.0).status()
        assert status["leader_seq"] == leader.dictionary.wal.last_seq
        for member in status["followers"]:
            assert member["replication_lag_seqs"] >= 1

    def test_read_endpoints_answer_like_the_leader(self, tmp_path):
        leader, followers, _clocks = self._set(tmp_path)
        replica_set = ReplicaSet(leader, followers, max_staleness_seconds=60.0)
        assert replica_set.look_up("vaccine") == leader.look_up("vaccine")
        text = "the demokrats hate the vacc1ne"
        assert replica_set.normalize(text).to_dict() == leader.normalize(text).to_dict()


# --------------------------------------------------------------------------- #
# single-writer guard
# --------------------------------------------------------------------------- #
class TestSingleWriterGuard:
    def test_second_writer_fails_loudly(self, tmp_path):
        pytest.importorskip("fcntl")
        with SingleWriterGuard(tmp_path) as guard:
            assert guard.held
            with pytest.raises(WalError, match="active writer"):
                SingleWriterGuard(tmp_path)
        assert not guard.held

    def test_release_frees_the_directory(self, tmp_path):
        pytest.importorskip("fcntl")
        first = SingleWriterGuard(tmp_path)
        first.release()
        first.release()  # idempotent
        second = SingleWriterGuard(tmp_path)
        assert second.held
        second.release()


# --------------------------------------------------------------------------- #
# group-commit fsync batching (satellite: crash can only lose a suffix)
# --------------------------------------------------------------------------- #
class TestFsyncBatching:
    def test_negative_batch_is_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync_batch"):
            ChangeLog(tmp_path, fsync_batch=-1)

    def test_sync_flushes_the_pending_batch(self, tmp_path):
        wal = ChangeLog(tmp_path, fsync_batch=100)
        for index in range(3):
            wal.append("add_token", {"token": f"tok{index}", "source": "t", "count": 1})
        wal.sync()  # must not raise with a live handle and pending appends
        wal.close()
        assert ChangeLog.scan(tmp_path).records == 3

    @settings(max_examples=40, deadline=None)
    @given(records=st.integers(min_value=1, max_value=10), data=st.data())
    def test_crash_between_batched_appends_never_leaves_an_interior_gap(
        self, records, data
    ):
        """Cutting the segment at any byte yields a contiguous seq prefix."""
        with tempfile.TemporaryDirectory() as tmp:
            wal = ChangeLog(tmp, fsync_batch=2)
            for index in range(records):
                wal.append(
                    "add_token", {"token": f"tok{index}", "source": "t", "count": 1}
                )
            wal.close()
            segment = sorted(Path(tmp).glob("wal-*.seg"))[-1]
            payload = segment.read_bytes()
            cut = data.draw(st.integers(min_value=0, max_value=len(payload)))
            decoded, _valid = decode_segment(payload[:cut])
            assert [record.seq for record in decoded] == list(
                range(1, len(decoded) + 1)
            )


# --------------------------------------------------------------------------- #
# superseded-segment GC (satellite: retention window)
# --------------------------------------------------------------------------- #
class TestSupersededGc:
    def _sidelined(self, tmp_path: Path) -> list[Path]:
        wal = ChangeLog(tmp_path)
        for index in range(3):
            wal.append("add_token", {"token": f"tok{index}", "source": "t", "count": 1})
        wal.close()
        assert supersede_wal_segments(tmp_path) >= 1
        return sorted(tmp_path.glob("*.seg.superseded"))

    def test_retention_boundary_is_strict(self, tmp_path):
        import os

        sidelined = self._sidelined(tmp_path)
        now = 1_000_000.0
        retention = 100.0
        # Exactly at the boundary: kept.  One second older: collected.
        os.utime(sidelined[0], (now - retention, now - retention))
        deleted = gc_superseded_segments(tmp_path, retention, now=now)
        assert deleted == 0 and sidelined[0].exists()
        os.utime(sidelined[0], (now - retention - 1, now - retention - 1))
        deleted = gc_superseded_segments(tmp_path, retention, now=now)
        assert deleted == 1 and not sidelined[0].exists()

    def test_negative_retention_is_rejected(self, tmp_path):
        with pytest.raises(WalError, match="retention"):
            gc_superseded_segments(tmp_path, -1.0)

    def test_scheduler_runs_gc_on_demand_and_after_saves(self, tmp_path):
        import os

        leader = _leader(tmp_path)
        leader.learn_from(CORPUS[:2], source="corpus")
        sidelined = self._sidelined(tmp_path / "old")
        # Move the sidelined journal into the leader's WAL directory and
        # age it past the window.
        target = wal_directory_for(tmp_path) / sidelined[0].name
        sidelined[0].rename(target)
        os.utime(target, (1.0, 1.0))
        scheduler = leader.make_maintenance_scheduler(snapshot_dir=tmp_path)
        outcome = scheduler.run_now("gc_superseded")
        assert outcome["segments_deleted"] == 1
        assert not target.exists()
        assert scheduler.status()["superseded_removed"] == 1


# --------------------------------------------------------------------------- #
# the asyncio service front, over real sockets
# --------------------------------------------------------------------------- #
async def _http(host, port, method, path, token=None, payload=None):
    """One HTTP/1.1 exchange against the async front; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    headers = [f"{method} {path} HTTP/1.1", f"Host: {host}", "Connection: close"]
    if token is not None:
        headers.append(f"Authorization: Bearer {token}")
    if body:
        headers.append("Content-Type: application/json")
        headers.append(f"Content-Length: {len(body)}")
    writer.write("\r\n".join(headers).encode("ascii") + b"\r\n\r\n" + body)
    await writer.drain()
    raw = await reader.read(-1)
    writer.close()
    head, _, tail = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(tail.decode("utf-8"))


class TestAsyncServiceFront:
    def _stack(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        followers = [
            _follower(tmp_path, name=f"follower-{index}") for index in range(2)
        ]
        for follower in followers:
            follower.catch_up()
        replica_set = ReplicaSet(leader, followers, max_staleness_seconds=3600.0)
        service = CrypTextService(
            leader,
            replica_set=replica_set,
            rate_limiter=RateLimiter(max_requests=1000, window_seconds=60),
        )
        token = service.issue_token("harness").token
        return service, replica_set, token

    def test_reads_route_to_followers_over_sockets(self, tmp_path):
        service, replica_set, token = self._stack(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=2)

        async def scenario():
            host, port = await front.start()
            try:
                status, body = await _http(
                    host, port, "POST", "/v1/lookup", token,
                    {"queries": ["vaccine", "democrats"]},
                )
                assert status == 200 and len(body["results"]) == 2
                status, body = await _http(
                    host, port, "POST", "/v1/normalize", token,
                    {"texts": ["the demokrats hate the vacc1ne"]},
                )
                assert status == 200
                status, body = await _http(
                    host, port, "GET", "/v1/replication", token
                )
                assert status == 200
                members = body["replication"]["followers"]
                assert [m["name"] for m in members] == ["follower-0", "follower-1"]
                assert body["replication"]["routed_to_followers"] >= 2
            finally:
                await front.stop()

        asyncio.run(scenario())
        assert replica_set.status()["routed_to_followers"] >= 2

    def test_writes_stay_pinned_to_the_leader(self, tmp_path):
        service, replica_set, token = self._stack(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=2)

        async def scenario():
            host, port = await front.start()
            try:
                status, body = await _http(
                    host, port, "POST", "/v1/perturb", token,
                    {"texts": ["the democrats support the vaccine"]},
                )
                assert status == 200
            finally:
                await front.stop()

        before = replica_set.status()["routed_to_followers"]
        asyncio.run(scenario())
        assert replica_set.status()["routed_to_followers"] == before

    def test_protocol_errors_are_clean_http(self, tmp_path):
        service, _replica_set, token = self._stack(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=1)

        async def scenario():
            host, port = await front.start()
            try:
                status, body = await _http(
                    host, port, "POST", "/v1/lookup", None, {"queries": ["x"]}
                )
                assert status == 401
                status, body = await _http(host, port, "GET", "/v1/nope", token)
                assert status == 404 and "no route" in body["error"]
                # A raw non-JSON body must come back 400, not kill the loop.
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /v1/lookup HTTP/1.1\r\nContent-Length: 3\r\n\r\n{{{"
                )
                await writer.drain()
                raw = await reader.read(-1)
                writer.close()
                assert b" 400 " in raw.split(b"\r\n", 1)[0]
            finally:
                await front.stop()

        asyncio.run(scenario())

    def test_replication_endpoint_without_a_set_is_409(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS[:1], source="corpus")
        service = CrypTextService(leader)
        token = service.issue_token("t").token
        response = service.replication_status(token)
        assert response.status == 409


# --------------------------------------------------------------------------- #
# mmap'd sharded snapshots: page sharing across followers
# --------------------------------------------------------------------------- #
def _rss_kb() -> int:
    """Resident set size of this process in KiB (Linux ``/proc``)."""
    with open("/proc/self/status", encoding="ascii") as handle:
        for line in handle:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise OSError("VmRSS not found")


class TestMappedSnapshotSharing:
    """Two followers of one v2 snapshot must share mapped pages, not copy."""

    def _big_leader(self, directory: Path, tokens: int = 800) -> CrypText:
        leader = _leader(directory)
        leader.learn_from(CORPUS, source="corpus")
        # Enough synthetic tokens that the trie payloads dominate the
        # snapshot — the part lazy mapping is supposed to keep off the heap.
        filler = [
            f"perturbatron{index}x{index % 7}{'z' * (index % 5)}"
            for index in range(tokens)
        ]
        leader.learn_from(filler, source="filler")
        return leader

    def test_followers_share_identical_mapped_shards(self, tmp_path):
        leader = self._big_leader(tmp_path)
        leader.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, shards=2)
        first = _follower(tmp_path)
        second = _follower(tmp_path)
        assert first.hydrate() and second.hydrate()
        first_map, second_map = first.mapped_snapshot, second.mapped_snapshot
        assert first_map is not None and second_map is not None
        # The process-level cache hands both hydrations the *same* reader
        # objects — one mmap per shard file, shared physical pages by
        # construction (no "equal contents" hedge: identity).
        assert len(first_map.shards) == 2
        assert all(a is b for a, b in zip(first_map.shards, second_map.shards))
        assert first_map.mapped_bytes == second_map.mapped_bytes > 0
        _assert_converged(leader, first)
        _assert_converged(leader, second)
        assert first.stats()["mapped_bytes"] == first_map.mapped_bytes

    def test_second_mapped_hydration_rss_stays_below_an_eager_load(self, tmp_path):
        import gc

        from repro.core.dictionary import PerturbationDictionary

        # A corpus big enough that the family payloads dominate RSS; below
        # a few thousand tokens fixed interpreter overheads drown the signal.
        leader = self._big_leader(tmp_path, tokens=6000)
        leader.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, shards=2)
        first = _follower(tmp_path)
        assert first.hydrate()
        # Eager baseline in the same process: the strict load parses every
        # shard record and installs each family payload onto the heap.
        gc.collect()
        before_eager = _rss_kb()
        eager = PerturbationDictionary(config=CONFIG)
        assert eager.load_snapshot(tmp_path / SNAPSHOT_FILE_NAME, strict=True).loaded
        gc.collect()
        eager_delta = _rss_kb() - before_eager
        # Second mapped follower: shares the first one's maps, parses only
        # shard headers; its residual growth must clearly undercut the eager
        # load (measured ~2x headroom; 0.8 leaves margin for allocator noise).
        second = _follower(tmp_path)
        gc.collect()
        before_mapped = _rss_kb()
        assert second.hydrate()
        gc.collect()
        mapped_delta = _rss_kb() - before_mapped
        assert second.mapped_snapshot is not None
        assert mapped_delta < eager_delta * 0.8, (
            f"second mapped hydration grew RSS by {mapped_delta} KiB, eager "
            f"load by {eager_delta} KiB — lazy mapping is not sharing pages"
        )
