"""Tests for repro.storage.cache (the Redis-style TTL cache)."""

from __future__ import annotations

import pytest

from repro.errors import CacheError
from repro.storage import TTLCache, cached, make_key


class FakeClock:
    """Controllable clock for deterministic expiry tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBasicOperations:
    def test_set_and_get(self):
        cache = TTLCache()
        cache.set("key", {"value": 1})
        assert cache.get("key") == {"value": 1}

    def test_missing_key_returns_default(self):
        cache = TTLCache()
        assert cache.get("nope") is None
        assert cache.get("nope", default="fallback") == "fallback"

    def test_contains_and_len(self):
        cache = TTLCache()
        cache.set("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1

    def test_invalidate(self):
        cache = TTLCache()
        cache.set("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None

    def test_clear_preserves_stats(self):
        cache = TTLCache()
        cache.set("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_invalid_construction(self):
        with pytest.raises(CacheError):
            TTLCache(max_entries=0)
        with pytest.raises(CacheError):
            TTLCache(default_ttl=0)

    def test_invalid_ttl_on_set(self):
        with pytest.raises(CacheError):
            TTLCache().set("a", 1, ttl=-5)


class TestExpiry:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = TTLCache(default_ttl=10, clock=clock)
        cache.set("a", 1)
        clock.advance(5)
        assert cache.get("a") == 1
        clock.advance(6)
        assert cache.get("a") is None
        assert cache.stats.expirations >= 1

    def test_per_entry_ttl_overrides_default(self):
        clock = FakeClock()
        cache = TTLCache(default_ttl=100, clock=clock)
        cache.set("short", 1, ttl=1)
        cache.set("long", 2)
        clock.advance(2)
        assert cache.get("short") is None
        assert cache.get("long") == 2

    def test_expired_entries_never_returned_even_before_purge(self):
        clock = FakeClock()
        cache = TTLCache(default_ttl=1, clock=clock)
        cache.set("a", 1)
        clock.advance(1)
        assert "a" not in cache

    def test_reinsert_after_expiry(self):
        clock = FakeClock()
        cache = TTLCache(default_ttl=1, clock=clock)
        cache.set("a", 1)
        clock.advance(2)
        cache.set("a", 2)
        assert cache.get("a") == 2


class TestEviction:
    def test_lru_eviction_order(self):
        cache = TTLCache(max_entries=2, default_ttl=100)
        cache.set("a", 1)
        cache.set("b", 2)
        cache.get("a")  # a becomes most recently used
        cache.set("c", 3)  # evicts b
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_capacity_never_exceeded(self):
        cache = TTLCache(max_entries=3, default_ttl=100)
        for index in range(10):
            cache.set(f"key{index}", index)
        assert len(cache) <= 3

    def test_updating_existing_key_does_not_evict(self):
        cache = TTLCache(max_entries=2, default_ttl=100)
        cache.set("a", 1)
        cache.set("b", 2)
        cache.set("a", 3)
        assert cache.get("b") == 2
        assert cache.get("a") == 3
        assert cache.stats.evictions == 0


class TestStats:
    def test_hit_and_miss_counting(self):
        cache = TTLCache()
        cache.set("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.requests == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_zero_when_unused(self):
        assert TTLCache().stats.hit_rate == 0.0

    def test_stats_serialization(self):
        cache = TTLCache()
        cache.set("a", 1)
        cache.get("a")
        payload = cache.stats.to_dict()
        assert payload["hits"] == 1
        assert payload["sets"] == 1
        assert 0 <= payload["hit_rate"] <= 1


class TestGetOrComputeAndDecorator:
    def test_get_or_compute_only_computes_once(self):
        cache = TTLCache()
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_cached_decorator(self):
        cache = TTLCache()
        calls = []

        @cached(cache)
        def slow_lookup(word: str, limit: int = 3) -> str:
            calls.append(word)
            return word.upper()

        assert slow_lookup("vaccine") == "VACCINE"
        assert slow_lookup("vaccine") == "VACCINE"
        assert slow_lookup("vaccine", limit=5) == "VACCINE"
        assert len(calls) == 2  # different kwargs -> different key
        assert slow_lookup.cache is cache

    def test_make_key_handles_unhashable_arguments(self):
        key_a = make_key(["a", "b"], {"x": 1}, flag={"s", "t"})
        key_b = make_key(["a", "b"], {"x": 1}, flag={"t", "s"})
        assert key_a == key_b
        assert hash(key_a) is not None

    def test_make_key_differs_for_different_arguments(self):
        assert make_key("a", 1) != make_key("a", 2)
