"""Tests for repro.text.unicode_fold."""

from __future__ import annotations

from repro.text.unicode_fold import fold_accents, fold_text


class TestFoldAccents:
    def test_common_accents(self):
        assert fold_accents("é") == "e"
        assert fold_accents("ü") == "u"
        assert fold_accents("ñ") == "n"
        assert fold_accents("ā") == "a"

    def test_viper_style_decorations(self):
        assert fold_accents("ḋ") == "d"
        assert fold_accents("ẏ") == "y"

    def test_plain_ascii_unchanged(self):
        for char in "abcXYZ019@-":
            assert fold_accents(char) == char

    def test_empty_string(self):
        assert fold_accents("") == ""


class TestFoldText:
    def test_viper_example_from_paper(self):
        # VIPER's example perturbation of "democrats" uses accented chars.
        assert fold_text("ḋemocrāts") == "democrats"

    def test_mixed_text(self):
        assert fold_text("vâccïne mandāte") == "vaccine mandate"

    def test_non_decomposable_characters_survive(self):
        assert fold_text("dem0cr@ts") == "dem0cr@ts"
