"""Tests for repro.api.service (the bulk CrypText service endpoints)."""

from __future__ import annotations

import pytest

from repro.api import CrypTextService, RateLimiter, TokenAuthenticator
from repro.errors import ServiceError
from repro.storage import TTLCache


@pytest.fixture()
def service(cryptext_small, twitter_platform) -> CrypTextService:
    return CrypTextService(
        cryptext_small,
        authenticator=TokenAuthenticator(secret="unit"),
        rate_limiter=RateLimiter(max_requests=1000, window_seconds=60),
        platform=twitter_platform,
        cache=TTLCache(max_entries=64, default_ttl=60),
    )


@pytest.fixture()
def token(service) -> str:
    return service.issue_token("tester").token


class TestAuthenticationFlow:
    def test_missing_token_is_401(self, service):
        assert service.lookup(None, ["vaccine"]).status == 401

    def test_unknown_token_is_401(self, service):
        assert service.lookup("forged", ["vaccine"]).status == 401

    def test_insufficient_scope_is_403(self, service):
        limited = service.issue_token("limited", scopes={"normalize"}).token
        assert service.lookup(limited, ["vaccine"]).status == 403

    def test_rate_limit_is_429(self, cryptext_small):
        service = CrypTextService(
            cryptext_small,
            rate_limiter=RateLimiter(max_requests=1, window_seconds=60),
        )
        token = service.issue_token("busy").token
        assert service.lookup(token, ["vaccine"]).ok
        assert service.lookup(token, ["vaccine"]).status == 429

    def test_ok_response_envelope(self, service, token):
        response = service.lookup(token, ["vaccine"])
        assert response.ok
        assert response.to_dict()["status"] == 200


class TestLookupEndpoint:
    def test_bulk_lookup(self, service, token):
        response = service.lookup(token, ["republicans", "democrats"])
        assert response.ok
        results = response.body["results"]
        assert set(results) == {"republicans", "democrats"}
        assert "repubLIEcans" in [m["token"] for m in results["republicans"]["matches"]]

    def test_parameters_forwarded(self, service, token):
        loose = service.lookup(token, ["republicans"], max_edit_distance=3)
        tight = service.lookup(token, ["republicans"], max_edit_distance=0)
        assert len(loose.body["results"]["republicans"]["matches"]) >= len(
            tight.body["results"]["republicans"]["matches"]
        )

    def test_empty_batch_is_400(self, service, token):
        assert service.lookup(token, []).status == 400

    def test_oversized_batch_is_400(self, cryptext_small):
        service = CrypTextService(cryptext_small, max_batch_size=2)
        token = service.issue_token("t").token
        assert service.lookup(token, ["a", "b", "c"]).status == 400

    def test_non_string_batch_is_400(self, service, token):
        assert service.lookup(token, ["ok", 42]).status == 400  # type: ignore[list-item]

    def test_responses_cached(self, cryptext_small):
        cache = TTLCache(max_entries=32, default_ttl=60)
        service = CrypTextService(cryptext_small, cache=cache)
        token = service.issue_token("t").token
        service.lookup(token, ["vaccine"])
        before = cache.stats.hits
        service.lookup(token, ["vaccine"])
        assert cache.stats.hits == before + 1


class TestNormalizeEndpoint:
    def test_bulk_normalize(self, service, token):
        response = service.normalize(token, ["the demokrats hate the vacc1ne"])
        assert response.ok
        normalized = response.body["results"][0]["normalized_text"]
        assert "democrats" in normalized
        assert "vaccine" in normalized

    def test_scope_enforced(self, service):
        lookup_only = service.issue_token("lookup-only", scopes={"lookup"}).token
        assert service.normalize(lookup_only, ["text"]).status == 403

    def test_empty_batch_rejected(self, service, token):
        assert service.normalize(token, []).status == 400


class TestPerturbEndpoint:
    def test_bulk_perturb(self, service, token):
        response = service.perturb(token, ["the democrats support the vaccine"], ratio=1.0)
        assert response.ok
        result = response.body["results"][0]
        assert result["requested_replacements"] >= 1

    def test_invalid_ratio_is_400(self, service, token):
        assert service.perturb(token, ["text"], ratio=2.0).status == 400

    def test_ratio_default_from_config(self, service, token):
        response = service.perturb(token, ["the democrats support the vaccine"])
        assert response.ok
        assert response.body["results"][0]["ratio"] == pytest.approx(
            service.cryptext.config.perturbation_ratio
        )


class TestListenAndStatsEndpoints:
    def test_listen(self, service, token):
        response = service.listen(token, ["vaccine"])
        assert response.ok
        assert "vaccine" in response.body["results"]

    def test_listen_without_platform_is_400(self, cryptext_small):
        service = CrypTextService(cryptext_small)
        token = service.issue_token("t").token
        assert service.listen(token, ["vaccine"]).status == 400

    def test_bind_platform_later(self, cryptext_small, twitter_platform):
        service = CrypTextService(cryptext_small)
        token = service.issue_token("t").token
        service.bind_platform(twitter_platform)
        assert service.listen(token, ["vaccine"]).ok

    def test_stats(self, service, token):
        response = service.stats(token)
        assert response.ok
        assert response.body["stats"]["total_tokens"] > 0

    def test_max_batch_size_validation(self, cryptext_small):
        with pytest.raises(ServiceError):
            CrypTextService(cryptext_small, max_batch_size=0)
