"""Tests for repro.core.matcher (trie-compiled Look Up matching).

The single invariant that matters: for any bucket and any query,
``CompiledBucket.match`` returns exactly the ``(entry, distance)`` set the
per-entry ``bounded_levenshtein`` scan produces.  Everything else (Look Up
merge/rank semantics, cache behavior) is guaranteed by construction once
that holds, and double-checked end to end by the golden-corpus tests.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro import CrypText, CrypTextConfig
from repro.core.dictionary import DictionaryEntry, PerturbationDictionary
from repro.core.edit_distance import bounded_levenshtein, damerau_levenshtein_distance
from repro.core.lookup import LookupEngine
from repro.core.matcher import CompiledBucket, TrieFamily, TrieFamilyRegistry

# Raw spellings mix plain letters, leetspeak symbols, separators, and the
# Unicode folds the canonicalizer handles (accents, homoglyph-ish letters).
token_alphabet = string.ascii_letters + "013457@$!|-._" + "éàüñçœß"
tokens = st.text(alphabet=token_alphabet, min_size=0, max_size=14)
queries = st.text(alphabet=token_alphabet, min_size=0, max_size=14)
bounds = st.integers(min_value=0, max_value=4)


def make_entry(
    token: str, canonical: str | None = None, is_word: bool = False
) -> DictionaryEntry:
    return DictionaryEntry(
        token=token,
        canonical=canonical if canonical is not None else token.lower(),
        keys={},
        count=1,
        is_word=is_word,
        sources=(),
    )


def linear_scan(
    query: str, entries: list[DictionaryEntry], bound: int, canonical: bool = False
) -> dict[int, int]:
    """The reference semantics: one bounded DP per entry."""
    distances = {}
    for index, entry in enumerate(entries):
        target = entry.canonical if canonical else entry.token_lower
        distance = bounded_levenshtein(query, target, bound)
        if distance is not None:
            distances[index] = distance
    return distances


def osa_scan(
    query: str, entries: list[DictionaryEntry], bound: int, canonical: bool = False
) -> dict[int, int]:
    """Brute-force OSA reference: one full (unbounded) table per entry.

    Deliberately uses the unbounded ``damerau_levenshtein_distance`` rather
    than ``bounded_osa`` so the compiled Damerau traversal is checked against
    an implementation that shares none of its banding/clipping machinery.
    """
    distances = {}
    for index, entry in enumerate(entries):
        target = entry.canonical if canonical else entry.token_lower
        distance = damerau_levenshtein_distance(query, target)
        if distance <= bound:
            distances[index] = distance
    return distances


class TestMatchEqualsLinearScan:
    @settings(max_examples=300, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=30), queries, bounds)
    def test_raw_mode_identical_to_per_entry_scan(self, bucket_tokens, query, bound):
        entries = [make_entry(token) for token in bucket_tokens]
        compiled = CompiledBucket(entries)
        assert compiled.match(query.lower(), bound) == linear_scan(
            query.lower(), entries, bound
        )

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.tuples(tokens, tokens), min_size=0, max_size=20), queries, bounds
    )
    def test_canonical_mode_identical_to_per_entry_scan(self, pairs, query, bound):
        # Canonical forms are independent strings attached to the entries;
        # the matcher must compare whichever representation it is asked to.
        entries = [make_entry(token, canonical=canon) for token, canon in pairs]
        compiled = CompiledBucket(entries)
        assert compiled.match(query, bound, canonical=True) == linear_scan(
            query, entries, bound, canonical=True
        )

    @settings(max_examples=100, deadline=None)
    @given(st.lists(tokens, min_size=1, max_size=20), bounds)
    def test_every_entry_matches_itself(self, bucket_tokens, bound):
        entries = [make_entry(token) for token in bucket_tokens]
        compiled = CompiledBucket(entries)
        for index, entry in enumerate(entries):
            assert compiled.match(entry.token_lower, bound)[index] == 0


class TestDamerauMatchEqualsBruteForceOSA:
    """The transposition mode must equal a per-entry brute-force OSA filter."""

    @settings(max_examples=300, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=30), queries, bounds)
    def test_raw_mode_identical_to_osa_scan(self, bucket_tokens, query, bound):
        entries = [make_entry(token) for token in bucket_tokens]
        compiled = CompiledBucket(entries)
        assert compiled.match(query.lower(), bound, transpositions=True) == osa_scan(
            query.lower(), entries, bound
        )

    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(st.tuples(tokens, tokens), min_size=0, max_size=20), queries, bounds
    )
    def test_canonical_mode_identical_to_osa_scan(self, pairs, query, bound):
        entries = [make_entry(token, canonical=canon) for token, canon in pairs]
        compiled = CompiledBucket(entries)
        assert compiled.match(
            query, bound, canonical=True, transpositions=True
        ) == osa_scan(query, entries, bound, canonical=True)

    def test_transposition_scored_as_one_edit(self):
        entries = [make_entry(t) for t in ["the", "then", "than", "hat"]]
        compiled = CompiledBucket(entries)
        # "teh" is one swap from "the": invisible to the plain automaton at
        # d=1, a single edit to the Damerau one.
        assert compiled.match("teh", 1) == {}
        assert compiled.match("teh", 1, transpositions=True) == {0: 1}

    def test_transposition_pair_spanning_shared_prefix(self):
        # The swap reaches across the trie edge between a shared prefix and
        # its children — the parent-row lookback must come from the right
        # ancestor for every entry under the prefix.
        entries = [make_entry(t) for t in ["abcd", "abdc", "acbd", "bacd"]]
        compiled = CompiledBucket(entries)
        assert compiled.match("abcd", 1, transpositions=True) == {
            0: 0, 1: 1, 2: 1, 3: 1
        }

    def test_match_tokens_passes_transpositions_through(self):
        entries = [make_entry(t) for t in ["mandate", "madnate"]]
        compiled = CompiledBucket(entries)
        assert compiled.match_tokens("mandate", 1, transpositions=True) == (
            ("mandate", 0), ("madnate", 1)
        )
        assert compiled.match_tokens("mandate", 1) == (("mandate", 0),)


class TestKernelSweep:
    """Every selectable kernel must reproduce the linear-scan references.

    ``tests/test_match_kernel.py`` checks the kernels against the *bounded*
    DP primitives they are built from; here the references are this file's
    independent scans (unbounded OSA for transpositions), so a shared
    clipping bug in the bounded machinery cannot hide.
    """

    kernels = pytest.mark.parametrize("kernel", ["auto", "myers", "banded", "symspell"])

    @kernels
    @settings(max_examples=120, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=25), queries, bounds)
    def test_levenshtein_mode(self, kernel, bucket_tokens, query, bound):
        entries = [make_entry(token) for token in bucket_tokens]
        compiled = CompiledBucket(entries)
        assert compiled.match(query.lower(), bound, kernel=kernel) == linear_scan(
            query.lower(), entries, bound
        )

    @kernels
    @settings(max_examples=120, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=25), queries, bounds)
    def test_osa_mode(self, kernel, bucket_tokens, query, bound):
        # Myers degrades to banded under transpositions; the point is that
        # the *request* never changes the result, only the code path.
        entries = [make_entry(token) for token in bucket_tokens]
        compiled = CompiledBucket(entries)
        assert compiled.match(
            query.lower(), bound, transpositions=True, kernel=kernel
        ) == osa_scan(query.lower(), entries, bound)


class TestEnglishOnlyMode:
    """``english_only`` must equal matching everything then filtering."""

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(st.tuples(tokens, st.booleans()), min_size=0, max_size=30),
        queries,
        bounds,
        st.booleans(),
    )
    def test_equals_filtered_full_match(self, flagged, query, bound, transpositions):
        entries = [make_entry(token, is_word=is_word) for token, is_word in flagged]
        compiled = CompiledBucket(entries)
        full = compiled.match(query.lower(), bound, transpositions=transpositions)
        expected = {
            index: distance
            for index, distance in full.items()
            if entries[index].is_word
        }
        assert (
            compiled.match(
                query.lower(), bound, transpositions=transpositions, english_only=True
            )
            == expected
        )

    def test_word_sparse_bucket(self):
        # The normalizer's shape: a few lexicon words among many variants.
        entries = [make_entry("vaccine", is_word=True)] + [
            make_entry(f"vacc{digit}ne") for digit in range(10)
        ]
        compiled = CompiledBucket(entries)
        assert compiled.match("vaccine", 1, english_only=True) == {0: 0}
        assert len(compiled.match("vaccine", 1)) == 11

    def test_no_english_entries(self):
        compiled = CompiledBucket([make_entry("vacc1ne")])
        assert compiled.match("vaccine", 3, english_only=True) == {}


class TestEdgeCases:
    def test_empty_bucket(self):
        assert CompiledBucket(()).match("anything", 3) == {}

    def test_empty_query_matches_short_tokens_only(self):
        entries = [make_entry(t) for t in ["", "a", "ab", "abc", "abcd"]]
        compiled = CompiledBucket(entries)
        assert compiled.match("", 2) == {0: 0, 1: 1, 2: 2}

    def test_empty_and_one_char_tokens(self):
        entries = [make_entry(t) for t in ["", "a", "b"]]
        compiled = CompiledBucket(entries)
        assert compiled.match("a", 1) == {0: 1, 1: 0, 2: 1}
        assert compiled.match("a", 0) == {1: 0}

    def test_duplicate_lowered_spellings_share_a_terminal(self):
        entries = [make_entry(t) for t in ["Vaccine", "vaccine", "VACCINE"]]
        compiled = CompiledBucket(entries)
        assert compiled.match("vaccine", 3) == {0: 0, 1: 0, 2: 0}

    def test_negative_bound_matches_nothing(self):
        compiled = CompiledBucket([make_entry("word")])
        assert compiled.match("word", -1) == {}

    def test_length_partition_prunes_out_of_band_entries(self):
        entries = [make_entry(t) for t in ["ab", "abcdefghij"]]
        compiled = CompiledBucket(entries)
        assert compiled.match("abcde", 2) == {}
        assert compiled.match("abcd", 2) == {0: 2}

    def test_sequence_protocol_is_a_drop_in_bucket(self):
        entries = [make_entry("one"), make_entry("two")]
        compiled = CompiledBucket(entries)
        assert len(compiled) == 2
        assert list(compiled) == entries
        assert compiled[1] is entries[1]

    def test_match_tokens_preserves_bucket_order(self):
        entries = [make_entry(t) for t in ["cab", "cat", "car", "cart"]]
        compiled = CompiledBucket(entries)
        assert compiled.match_tokens("cat", 1) == (
            ("cab", 1), ("cat", 0), ("car", 1), ("cart", 1)
        )


class TestCompiledLookupEquality:
    """Flag on and flag off must produce identical LookupResults."""

    CORPUS = [
        "the dirrty republicans",
        "thee dirty repubLIEcans",
        "the dirty republic@@ns",
        "the demokrats hate the vacc1ne",
        "the dem0cr@ts and the repubLIEcans argue online",
        "stop the vac-cine mandate now",
    ]
    QUERIES = ["republicans", "democrats", "vaccine", "dirty", "the", "unseenword"]

    @pytest.mark.parametrize("case_sensitive", [True, False])
    @pytest.mark.parametrize("canonical_distance", [True, False])
    def test_identical_results_both_paths(self, case_sensitive, canonical_distance):
        compiled = CrypText.from_corpus(
            self.CORPUS, config=CrypTextConfig(compiled_buckets=True, cache_enabled=False)
        )
        linear = CrypText.from_corpus(
            self.CORPUS, config=CrypTextConfig(compiled_buckets=False, cache_enabled=False)
        )
        for query in self.QUERIES:
            for distance in (0, 1, 3):
                fast = compiled.lookup_engine.look_up(
                    query,
                    max_edit_distance=distance,
                    case_sensitive=case_sensitive,
                    canonical_distance=canonical_distance,
                )
                slow = linear.lookup_engine.look_up(
                    query,
                    max_edit_distance=distance,
                    case_sensitive=case_sensitive,
                    canonical_distance=canonical_distance,
                )
                assert fast == slow


class TestInvalidation:
    def test_add_token_is_visible_to_next_look_up(self):
        config = CrypTextConfig(compiled_buckets=True, cache_enabled=False)
        dictionary = PerturbationDictionary.from_corpus(
            ["the dirty republicans"], config=config
        )
        engine = LookupEngine(dictionary, config=config)
        before = engine.look_up("republicans")
        assert "republ1cans" not in before.tokens
        # A write that lands in an already-compiled bucket must drop the
        # cached trie so the very next query sees the new spelling.
        assert dictionary.add_token("republ1cans", source="stream")
        after = engine.look_up("republicans")
        assert "republ1cans" in after.tokens

    def test_add_token_is_visible_through_batch_engine(self):
        config = CrypTextConfig(compiled_buckets=True)
        system = CrypText.from_corpus(
            ["the dirty republicans"], config=config, seed_lexicon=False,
            train_scorer=False,
        )
        engine = system.batch
        (before,) = engine.look_up_batch(["republicans"])
        assert "repubLIEcans" not in before.tokens
        system.learn_from(["the repubLIEcans are at it again"])
        (after,) = engine.look_up_batch(["republicans"])
        assert "repubLIEcans" in after.tokens

    def test_compiled_cache_skips_store_when_write_lands_mid_compile(self):
        dictionary = PerturbationDictionary.from_corpus(["the dirty republicans"])
        key = dictionary.encoder(1).encode("republicans")
        first = dictionary.compiled_bucket(key)
        # A write anywhere in the dictionary moves the version; the pair
        # it touched must recompile, and the recompile must be cached again.
        dictionary.add_token("republ1cans")
        second = dictionary.compiled_bucket(key)
        assert second is not first
        assert dictionary.compiled_bucket(key) is second

    def test_disabled_flag_uses_linear_path(self):
        config = CrypTextConfig(compiled_buckets=False, cache_enabled=False)
        dictionary = PerturbationDictionary.from_corpus(
            ["the dirty republicans"], config=config
        )
        engine = LookupEngine(dictionary, config=config)
        assert "republicans" in engine.look_up("republicans").tokens
        assert dictionary._compiled == {}


class TestTrieFamilies:
    """Level-shared trie families and their snapshot serialization."""

    @settings(max_examples=100, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=25), queries, bounds)
    def test_payload_round_trip_matches_identically(self, bucket_tokens, query, bound):
        entries = [
            make_entry(token, is_word=index % 2 == 0)
            for index, token in enumerate(bucket_tokens)
        ]
        original = CompiledBucket(entries)
        # Materialize every variant, then rebuild the family from its payload.
        for canonical in (False, True):
            for english_only in (False, True):
                original.match(
                    query.lower(), bound, canonical=canonical, english_only=english_only
                )
        rebuilt = TrieFamily.from_payload(original.family.to_payload())
        hydrated = CompiledBucket(entries, family=rebuilt)
        assert rebuilt.tries_built == 0  # nothing recompiled
        for canonical in (False, True):
            for english_only in (False, True):
                for transpositions in (False, True):
                    assert hydrated.match(
                        query.lower(),
                        bound,
                        canonical=canonical,
                        english_only=english_only,
                        transpositions=transpositions,
                    ) == original.match(
                        query.lower(),
                        bound,
                        canonical=canonical,
                        english_only=english_only,
                        transpositions=transpositions,
                    )

    def test_registry_shares_one_family_across_views(self):
        registry = TrieFamilyRegistry()
        entries = [make_entry(token) for token in ("cat", "cart", "card")]
        first = CompiledBucket(entries, family=registry.family_for(entries))
        second = CompiledBucket(entries, family=registry.family_for(entries))
        assert first.family is second.family
        first.match("cat", 1)
        assert second.family.tries_built == 1  # compiled once, shared
        stats = registry.stats()
        assert stats["views"] == 2
        assert stats["families_created"] == 1
        assert stats["families_shared"] == 1

    def test_registry_is_weak(self):
        import gc

        registry = TrieFamilyRegistry()
        entries = [make_entry("cat")]
        bucket = CompiledBucket(entries, family=registry.family_for(entries))
        assert registry.stats()["live_families"] == 1
        del bucket
        gc.collect()
        assert registry.stats()["live_families"] == 0

    def test_dictionary_levels_share_families(self):
        dictionary = PerturbationDictionary.from_corpus(
            ["the vaccine mandate divides the neighborhood"]
        )
        for level in dictionary.phonetic_levels:
            for entry in dictionary.iter_entries():
                key = entry.key_at(level)
                if key is not None:
                    dictionary.compiled_bucket(key, phonetic_level=level)
        stats = dictionary.trie_families.stats()
        # Three levels viewed every bucket; singleton buckets never split,
        # so strictly fewer families exist than bucket views.
        assert stats["families_created"] < stats["views"]
        assert stats["families_shared"] > 0

    def test_adopt_prefers_existing_live_family(self):
        registry = TrieFamilyRegistry()
        entries = [make_entry("cat")]
        live = registry.family_for(entries)
        incoming = TrieFamily(("cat",))
        assert registry.adopt(incoming) is live
        other = TrieFamily(("dog",))
        assert registry.adopt(other) is other
