"""Unit and integration tests for the batch throughput layer (repro.batch).

Covers the sharded phonetic index, the batch engine's dedup/memoization and
streaming semantics, the facade wiring (including shard-scoped cache
invalidation in ``learn_from``), the ``/v1/batch/*`` service endpoints, the
CLI ``batch`` command, and the batch paths of the social listener/crawler.
"""

from __future__ import annotations

import json

import pytest

from repro import CrypText
from repro.api import CrypTextService
from repro.batch import BatchEngine, ShardedPhoneticIndex, shard_of
from repro.cli import main as cli_main
from repro.errors import CrypTextError
from repro.social import SocialListener, SocialPlatform, StreamCrawler
from repro.storage import TTLCache


CORPUS = [
    "the dirrty republicans",
    "thee dirty repubLIEcans",
    "the dirty republic@@ns",
    "the democrats support the vaccine mandate",
    "the demokrats hate the vacc1ne",
    "the democRATs push their agenda",
    "the dem0cr@ts and the repubLIEcans argue online",
    "i ordered from amazon yesterday",
    "the amaz0n package never arrived",
]

QUERIES = ["democrats", "republicans", "amazon", "vaccine", "democrats", "vaccine"]
TEXTS = [
    "the demokrats hate the vacc1ne",
    "i ordered from amaz0n",
    "the demokrats hate the vacc1ne",
    "nothing perturbed here",
]


@pytest.fixture()
def system() -> CrypText:
    return CrypText.from_corpus(CORPUS)


@pytest.fixture()
def engine(system: CrypText) -> BatchEngine:
    return system.batch


# --------------------------------------------------------------------------- #
# sharded index
# --------------------------------------------------------------------------- #
class TestShardedIndex:
    def test_shard_of_is_stable_and_in_range(self):
        keys = ["DE52632", "RE1425", "AM250", "VA250", "TH000"]
        for key in keys:
            assert 0 <= shard_of(key, 4) < 4
            assert shard_of(key, 4) == shard_of(key, 4)
        assert all(shard_of(key, 1) == 0 for key in keys)

    def test_rejects_bad_shard_count(self, system):
        with pytest.raises(CrypTextError):
            ShardedPhoneticIndex(system.dictionary, num_shards=0)

    def test_bucket_matches_dictionary(self, system):
        index = ShardedPhoneticIndex(system.dictionary, num_shards=4)
        for query in ("democrats", "amazon", "vaccine"):
            key = system.dictionary.encoder(1).encode(query)
            assert list(index.bucket(key, 1)) == system.dictionary.tokens_for_key(
                key, phonetic_level=1
            )

    def test_english_bucket_filters_words(self, system):
        index = ShardedPhoneticIndex(system.dictionary, num_shards=2)
        key = system.dictionary.encoder(1).encode("democrats")
        english = index.english_bucket(key, 1)
        assert english
        assert all(entry.is_word for entry in english)

    def test_every_entry_lands_in_exactly_one_shard(self, system):
        index = ShardedPhoneticIndex(system.dictionary, num_shards=4)
        stats = index.shard_stats()
        total = sum(stat.num_entries for stat in stats)
        expected = sum(
            1
            for document in system.dictionary.collection.find(None)
            if "k1" in document["keys"]
        )
        assert total == expected

    def test_refresh_keys_picks_up_new_tokens(self, system):
        index = ShardedPhoneticIndex(system.dictionary, num_shards=4)
        key = system.dictionary.encoder(1).encode("democrats")
        before = index.bucket(key, 1)
        changed: set[tuple[int, str]] = set()
        system.dictionary.add_token("demmocrats", changed_keys=changed)
        touched = index.refresh_keys(changed)
        assert shard_of(key, 4) in touched
        after = index.bucket(key, 1)
        assert len(after) == len(before) + 1
        assert "demmocrats" in {entry.token for entry in after}

    def test_out_of_band_growth_triggers_rebuild(self, system):
        index = ShardedPhoneticIndex(system.dictionary, num_shards=2)
        key = system.dictionary.encoder(1).encode("amazon")
        index.bucket(key, 1)  # force a build
        system.dictionary.add_token("amazzon")  # no refresh_keys call
        assert "amazzon" in {entry.token for entry in index.bucket(key, 1)}

    def test_shard_compiled_cache_evicts_lru_not_fifo(self, system):
        index = ShardedPhoneticIndex(system.dictionary, num_shards=1)
        shard = index._shards[0]
        shard.compiled_max = 2
        encoder = system.dictionary.encoder(1)
        k_hot, k_cold, k_new = (
            encoder.encode(word) for word in ("democrats", "amazon", "vaccine")
        )
        hot = index.compiled_bucket(k_hot, 1)
        index.compiled_bucket(k_cold, 1)
        # The hit refreshes recency, so overflow evicts the cold bucket.
        assert index.compiled_bucket(k_hot, 1) is hot
        index.compiled_bucket(k_new, 1)
        assert index.compiled_bucket(k_hot, 1) is hot
        assert set(shard.compiled) == {(1, k_hot), (1, k_new)}


# --------------------------------------------------------------------------- #
# batch engine
# --------------------------------------------------------------------------- #
class TestBatchEngine:
    def test_look_up_batch_identical_to_sequential(self, system, engine):
        batch = engine.look_up_batch(QUERIES)
        sequential = [system.look_up(query) for query in QUERIES]
        assert batch == sequential

    def test_look_up_batch_preserves_order_and_duplicates(self, engine):
        results = engine.look_up_batch(QUERIES)
        assert [result.query for result in results] == QUERIES
        assert results[0] == results[4]  # duplicate queries: identical results

    def test_look_up_batch_handles_unencodable_queries(self, engine):
        results = engine.look_up_batch(["democrats", "...", "###"])
        assert results[1].soundex_key is None and not results[1].matches
        assert results[2].soundex_key is None

    def test_look_up_batch_empty(self, engine):
        assert engine.look_up_batch([]) == []

    def test_look_up_batch_respects_overrides(self, system, engine):
        batch = engine.look_up_batch(["democrats"], max_edit_distance=1, case_sensitive=False)
        single = system.lookup_engine.look_up(
            "democrats", max_edit_distance=1, case_sensitive=False
        )
        assert batch[0] == single

    def test_duplicates_are_resolved_once(self, system):
        engine = system.batch
        cache = system.lookup_engine.cache
        sets_before = cache.stats.sets
        engine.look_up_batch(["vaccine"] * 50)
        assert cache.stats.sets == sets_before + 1

    def test_look_up_many_is_dict_shaped(self, system, engine):
        many = engine.look_up_many(["democrats", "amazon"])
        assert set(many) == {"democrats", "amazon"}
        assert many["amazon"] == system.look_up("amazon")

    def test_normalize_batch_identical_to_sequential(self, system, engine):
        batch = engine.normalize_batch(TEXTS)
        sequential = [system.normalize(text) for text in TEXTS]
        assert batch == sequential

    def test_normalize_batch_memoizes_candidates(self, engine):
        engine.normalize_batch(["the demokrats lie", "the demokrats cheat"])
        # Second document's "demokrats" candidate retrieval must hit the memo.
        assert engine.memo.stats.hits >= 1

    def test_perturb_batch_matches_sequential_with_same_rng(self, system):
        a = CrypText.from_corpus(CORPUS)
        outcome_batch = a.perturb_batch(TEXTS, ratio=0.5)
        b = CrypText.from_corpus(CORPUS)
        outcome_seq = [b.perturb(text, ratio=0.5) for text in TEXTS]
        assert [o.perturbed_text for o in outcome_batch] == [
            o.perturbed_text for o in outcome_seq
        ]

    def test_invalid_stream_knobs_rejected(self, system):
        with pytest.raises(CrypTextError):
            BatchEngine(system.dictionary, chunk_size=0)
        with pytest.raises(CrypTextError):
            BatchEngine(system.dictionary, max_in_flight=0)

    def test_stats_exposes_shards_and_caches(self, engine):
        engine.look_up_batch(["democrats"])
        stats = engine.stats()
        assert stats["index"]["num_shards"] == 4
        assert "hits" in stats["memo"]


class TestStreaming:
    def test_stream_look_up_matches_batch(self, engine):
        queries = QUERIES * 7
        streamed = list(engine.stream_look_up(iter(queries), chunk_size=4, max_in_flight=2))
        assert streamed == engine.look_up_batch(queries)

    def test_stream_normalize_matches_batch(self, engine):
        texts = TEXTS * 5
        streamed = list(engine.stream_normalize(iter(texts), chunk_size=3, max_in_flight=2))
        assert streamed == engine.normalize_batch(texts)

    def test_stream_applies_backpressure(self, engine):
        pulled = 0

        def producer():
            nonlocal pulled
            for _ in range(1000):
                pulled += 1
                yield "democrats"

        chunk_size, max_in_flight = 5, 2
        stream = engine.stream_look_up(
            producer(), chunk_size=chunk_size, max_in_flight=max_in_flight
        )
        next(stream)
        # The producer may only ever be max_in_flight full chunks plus the
        # chunk currently being assembled ahead of the consumer.
        assert pulled <= chunk_size * (max_in_flight + 2)
        stream.close()

    def test_stream_handles_empty_iterable(self, engine):
        assert list(engine.stream_look_up(iter(()))) == []


class TestEnrichment:
    def test_enrich_reports_scope(self, engine):
        engine.look_up_batch(["democrats"])  # materialize the index
        report = engine.enrich(["the demmocrats lie"], source="test")
        assert report.added == 3
        assert report.shards_touched
        assert report.to_dict()["num_changed_sounds"] == len(report.changed_sounds)

    def test_enrich_makes_new_perturbations_visible(self, engine):
        engine.look_up_batch(["democrats"])  # warm cache + index
        engine.enrich(["the demmocrats lie"])
        result = engine.look_up_batch(["democrats"])[0]
        assert "demmocrats" in result.tokens

    def test_enrich_refreshes_normalization_candidates(self):
        # Corpus knows the perturbation but not the clean English word, so
        # normalization initially has no candidate; enrichment must both add
        # the word and invalidate the memoized (empty) candidate list.
        system = CrypText.from_corpus(
            ["they fear the vacc1ne shot"], seed_lexicon=False
        )
        engine = system.batch
        assert engine.normalize_batch(["vacc1ne"])[0].normalized_text == "vacc1ne"
        engine.enrich(["the vaccine works"])
        assert engine.normalize_batch(["vacc1ne"])[0].normalized_text == "vaccine"


# --------------------------------------------------------------------------- #
# facade wiring + shard-scoped invalidation (the learn_from bug fix)
# --------------------------------------------------------------------------- #
class TestFacade:
    def test_facade_batch_methods_delegate(self, system):
        assert system.look_up_batch(QUERIES) == system.batch.look_up_batch(QUERIES)
        assert system.normalize_batch(TEXTS) == system.batch.normalize_batch(TEXTS)

    def test_make_batch_engine_rebinds(self, system):
        engine = system.make_batch_engine(num_shards=2, chunk_size=7)
        assert system.batch is engine
        assert engine.num_shards == 2 and engine.chunk_size == 7

    def test_learn_from_invalidation_is_shard_scoped(self, system):
        cache = system.cache
        system.look_up("democrats")
        system.look_up("amazon")
        democrats_key = system.lookup_engine.cache_key("democrats", 1, 3, True, False)
        amazon_key = system.lookup_engine.cache_key("amazon", 1, 3, True, False)
        assert democrats_key in cache.keys() and amazon_key in cache.keys()

        added = system.learn_from(["the demmocrats lie"])
        assert added == 3
        # The unrelated cached query survives the enrichment...
        assert amazon_key in cache.keys()
        # ...while the touched bucket's entry was dropped and re-resolves
        # with the new perturbation.
        assert democrats_key not in cache.keys()
        assert "demmocrats" in system.look_up("democrats").tokens

    def test_learn_from_keeps_batch_engine_in_sync(self, system):
        engine = system.batch
        engine.look_up_batch(["democrats"])
        system.learn_from(["the demmocrats lie"])
        assert "demmocrats" in engine.look_up_batch(["democrats"])[0].tokens

    def test_learn_from_without_batch_engine_still_invalidates(self, system):
        system.look_up("democrats")
        system.learn_from(["the demmocrats lie"])
        assert "demmocrats" in system.look_up("democrats").tokens


# --------------------------------------------------------------------------- #
# service endpoints
# --------------------------------------------------------------------------- #
class TestServiceBatchEndpoints:
    @pytest.fixture()
    def service(self, system):
        return CrypTextService(system, max_batch_size=4, max_bulk_batch_size=8)

    @pytest.fixture()
    def token(self, service):
        return service.issue_token("tester").token

    def test_batch_lookup_is_order_preserving(self, service, token, system):
        response = service.batch_lookup(token, QUERIES)
        assert response.status == 200
        results = response.body["results"]
        assert [result["query"] for result in results] == QUERIES
        assert response.body["count"] == len(QUERIES)
        assert results[0] == system.look_up("democrats").to_dict()

    def test_batch_normalize_is_order_preserving(self, service, token, system):
        response = service.batch_normalize(token, TEXTS)
        assert response.status == 200
        assert [r["original_text"] for r in response.body["results"]] == TEXTS
        assert response.body["results"][0] == system.normalize(TEXTS[0]).to_dict()

    def test_batch_endpoints_enforce_size_limit(self, service, token):
        response = service.batch_lookup(token, ["word"] * 9)
        assert response.status == 400
        response = service.batch_normalize(token, ["text"] * 9)
        assert response.status == 400

    def test_batch_endpoints_allow_more_than_classic_limit(self, service, token):
        # classic limit is 4, bulk limit is 8
        assert service.lookup(token, ["word"] * 6).status == 400
        assert service.batch_lookup(token, ["word"] * 6).status == 200

    def test_batch_endpoints_require_auth(self, service):
        assert service.batch_lookup(None, ["word"]).status == 401
        assert service.batch_normalize("bogus", ["text"]).status == 401

    def test_bulk_limit_must_dominate_classic_limit(self, system):
        with pytest.raises(Exception):
            CrypTextService(system, max_batch_size=64, max_bulk_batch_size=8)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCliBatch:
    def test_batch_normalize_jsonl(self, tmp_path, capsys):
        path = tmp_path / "docs.jsonl"
        path.write_text(
            json.dumps({"text": "the demokrats hate the vacc1ne"})
            + "\n"
            + json.dumps("i ordered from amaz0n")
            + "\n"
        )
        out_path = tmp_path / "out.jsonl"
        code = cli_main(
            [
                "batch", "normalize", "--input", str(path), "--output", str(out_path),
                "--posts", "120", "--seed", "3", "--shards", "2", "--chunk-size", "2",
            ]
        )
        assert code == 0
        records = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert len(records) == 2
        assert records[0]["normalized"] == "the democrats hate the vaccine"

    def test_batch_lookup_jsonl_to_stdout(self, tmp_path, capsys):
        path = tmp_path / "queries.jsonl"
        path.write_text(json.dumps({"query": "democrats"}) + "\n")
        code = cli_main(
            ["batch", "lookup", "--input", str(path), "--posts", "120", "--seed", "3"]
        )
        captured = capsys.readouterr()
        assert code == 0
        record = json.loads(captured.out.splitlines()[0])
        assert record["query"] == "democrats"
        assert record["perturbations"]

    def test_batch_rejects_malformed_jsonl(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"wrong_field": 1}\n')
        code = cli_main(
            ["batch", "lookup", "--input", str(path), "--posts", "120", "--seed", "3"]
        )
        assert code == 2  # CrypTextError -> exit code 2


# --------------------------------------------------------------------------- #
# social layer
# --------------------------------------------------------------------------- #
class TestSocialBatchPaths:
    def test_listener_batch_expansion_matches_sequential(self, system):
        platform = SocialPlatform("twitter")
        for text in CORPUS:
            platform.ingest_raw(text, created_at="2023-01-16")
        batch_listener = SocialListener(
            platform, system.lookup_engine, batch_engine=system.batch
        )
        plain_listener = SocialListener(platform, system.lookup_engine)
        keywords = ["democrats", "vaccine", "democrats"]
        assert batch_listener.expand_keywords(keywords) == plain_listener.expand_keywords(
            keywords
        )
        batch_usage = batch_listener.monitor_keywords(["democrats", "vaccine"])
        plain_usage = plain_listener.monitor_keywords(["democrats", "vaccine"])
        assert batch_usage == plain_usage

    def test_facade_listener_uses_batch_engine(self, system):
        platform = SocialPlatform("twitter")
        listener = system.social_listener(platform)
        assert listener.batch_engine is system.batch

    def test_crawler_with_batch_engine_keeps_lookups_fresh(self, system):
        platform = SocialPlatform("twitter")
        for text in ("the demmocrats lie", "the amazzon box"):
            platform.ingest_raw(text, created_at="2023-01-16")
        engine = system.batch
        engine.look_up_batch(["democrats", "amazon"])  # warm
        crawler = StreamCrawler(
            platform, system.dictionary, batch_size=10, batch_engine=engine
        )
        report = crawler.crawl_once()
        assert report is not None
        assert report.shards_touched
        tokens = engine.look_up_batch(["democrats"])[0].tokens
        assert "demmocrats" in tokens

    def test_crawler_rejects_foreign_engine(self, system):
        other = CrypText.from_corpus(CORPUS)
        platform = SocialPlatform("twitter")
        with pytest.raises(Exception):
            StreamCrawler(
                platform, system.dictionary, batch_engine=other.batch
            )


# --------------------------------------------------------------------------- #
# tagged cache invalidation primitives
# --------------------------------------------------------------------------- #
class TestTaggedCache:
    def test_invalidate_tag_drops_only_tagged_entries(self):
        cache = TTLCache(max_entries=16, default_ttl=60.0)
        cache.set("a", 1, tags=[("sound", 1, "AA")])
        cache.set("b", 2, tags=[("sound", 1, "BB")])
        cache.set("c", 3)
        assert cache.invalidate_tag(("sound", 1, "AA")) == 1
        assert cache.get("a") is None
        assert cache.get("b") == 2 and cache.get("c") == 3

    def test_invalidate_untagged(self):
        cache = TTLCache(max_entries=16, default_ttl=60.0)
        cache.set("a", 1, tags=["t"])
        cache.set("b", 2)
        assert cache.invalidate_untagged() == 1
        assert cache.get("a") == 1 and cache.get("b") is None

    def test_eviction_cleans_tag_index(self):
        cache = TTLCache(max_entries=2, default_ttl=60.0)
        cache.set("a", 1, tags=["t"])
        cache.set("b", 2, tags=["t"])
        cache.set("c", 3, tags=["t"])  # evicts "a"
        assert cache.invalidate_tag("t") == 2
        assert len(cache) == 0

    def test_expiry_cleans_tag_index(self):
        now = [0.0]
        cache = TTLCache(max_entries=8, default_ttl=10.0, clock=lambda: now[0])
        cache.set("a", 1, tags=["t"])
        now[0] = 11.0
        assert cache.get("a") is None
        assert cache.invalidate_tag("t") == 0
