"""The lint pass, tested against fixture files with known violations.

Each fixture under ``tests/fixtures/lint/`` marks every expected finding
with a trailing ``# EXPECT: <rule>`` comment; the harness asserts the
linter reports *exactly* that set of (rule, line) pairs — so every marker
is a hit assertion and every unmarked line is a non-hit assertion.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

from repro.analysis.lint import Finding, lint_paths, main, package_root
from repro.analysis.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

_EXPECT_RE = re.compile(r"#\s*EXPECT:\s*([a-z-]+)")


def expected_markers(path: Path) -> set[tuple[str, int]]:
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match is not None:
            expected.add((match.group(1), lineno))
    return expected


def lint_fixture(path: Path, rules=None) -> list[Finding]:
    return lint_paths([path], rules, root=FIXTURES)


class TestFixtures:
    @pytest.mark.parametrize(
        "fixture", sorted(FIXTURES.glob("*.py")), ids=lambda p: p.stem
    )
    def test_hits_and_non_hits_match_markers(self, fixture):
        expected = expected_markers(fixture)
        found = {(f.rule, f.line) for f in lint_fixture(fixture)}
        missing = expected - found
        unexpected = found - expected
        assert not missing, f"expected findings never reported: {sorted(missing)}"
        assert not unexpected, f"unmarked findings reported: {sorted(unexpected)}"

    def test_every_rule_has_a_hit_fixture(self):
        covered = set()
        for fixture in FIXTURES.glob("*.py"):
            covered.update(rule for rule, _line in expected_markers(fixture))
        assert covered == {rule.name for rule in ALL_RULES}

    def test_clean_fixture_is_clean(self):
        assert lint_fixture(FIXTURES / "clean.py") == []


class TestRepoIsClean:
    def test_package_lints_clean(self):
        """The acceptance gate: zero findings over the installed package."""
        findings = lint_paths()
        assert findings == [], "\n".join(f.describe() for f in findings)

    def test_package_root_is_the_repro_package(self):
        assert package_root().name == "repro"


class TestDriver:
    def test_rule_subset_runs_only_those_rules(self):
        findings = lint_fixture(
            FIXTURES / "mutable_default_violation.py", ["mutable-default"]
        )
        assert findings and all(f.rule == "mutable-default" for f in findings)

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            lint_fixture(FIXTURES / "clean.py", ["no-such-rule"])

    def test_findings_sorted_and_described(self):
        findings = lint_fixture(FIXTURES / "dead_import_violation.py")
        assert findings == sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        text = findings[0].describe()
        assert "dead_import_violation.py" in text and "[dead-import]" in text

    def test_pragma_on_offending_line_suppresses(self, tmp_path):
        source = (
            "def f(items=[]):  # lint: allow=mutable-default (testing)\n"
            "    return items\n"
        )
        path = tmp_path / "pragma_line.py"
        path.write_text(source)
        assert lint_paths([path], root=tmp_path) == []

    def test_pragma_on_def_line_suppresses_whole_function(self, tmp_path):
        source = (
            "def f(work):  # lint: allow=swallowed-exception (testing)\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        path = tmp_path / "pragma_def.py"
        path.write_text(source)
        assert lint_paths([path], root=tmp_path) == []
        # Without the pragma the same body is flagged.
        bare = tmp_path / "no_pragma.py"
        bare.write_text(source.replace("  # lint: allow=swallowed-exception (testing)", ""))
        assert [f.rule for f in lint_paths([bare], root=tmp_path)] == [
            "swallowed-exception"
        ]


class TestMainEntry:
    def test_exit_one_on_findings(self, capsys):
        assert main([str(FIXTURES / "mutable_default_violation.py")]) == 1
        out = capsys.readouterr().out
        assert "[mutable-default]" in out

    def test_exit_zero_on_clean(self, capsys):
        assert main([str(FIXTURES / "clean.py")]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_output_parses(self, capsys):
        assert main(["--json", str(FIXTURES / "dead_import_violation.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {entry["rule"] for entry in payload} == {"dead-import"}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.name in out

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["--rules", "bogus", str(FIXTURES / "clean.py")]) == 2
        assert "bogus" in capsys.readouterr().err


class TestCheckSubcommand:
    def test_check_reports_findings_and_exit_code(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["check", str(FIXTURES / "mutable_default_violation.py")]) == 1
        assert "[mutable-default]" in capsys.readouterr().out

    def test_check_clean_with_hierarchy(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["check", "--show-hierarchy", str(FIXTURES / "clean.py")]) == 0
        out = capsys.readouterr().out
        assert "lock hierarchy" in out and "dictionary.write" in out

    def test_check_json(self, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["--json", "check", str(FIXTURES / "clean.py")]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 0
