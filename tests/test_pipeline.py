"""Tests for repro.core.pipeline (the CrypText facade)."""

from __future__ import annotations

import pytest

from repro import CrypText, CrypTextConfig
from repro.social import SocialPlatform
from repro.social.listening import SocialListener


class TestFactories:
    def test_from_corpus_builds_all_components(self, small_corpus):
        system = CrypText.from_corpus(small_corpus)
        assert len(system.dictionary) > 0
        assert system.scorer is not None and system.scorer.is_trained
        assert system.cache is not None

    def test_from_corpus_without_scorer(self, small_corpus):
        system = CrypText.from_corpus(small_corpus, train_scorer=False)
        assert system.scorer is None

    def test_from_corpus_without_lexicon_seed(self, small_corpus):
        seeded = CrypText.from_corpus(small_corpus, seed_lexicon=True)
        bare = CrypText.from_corpus(small_corpus, seed_lexicon=False)
        assert len(seeded.dictionary) > len(bare.dictionary)

    def test_empty_factory_is_lexicon_only(self):
        system = CrypText.empty()
        stats = system.stats()
        assert stats.total_tokens == stats.lexicon_tokens
        assert stats.perturbation_tokens == 0

    def test_cache_disabled_config(self, small_corpus):
        system = CrypText.from_corpus(
            small_corpus, config=CrypTextConfig(cache_enabled=False)
        )
        assert system.cache is None


class TestFourFunctions:
    def test_look_up(self, cryptext_small):
        assert "repubLIEcans" in cryptext_small.look_up("republicans").tokens

    def test_normalize(self, cryptext_small):
        assert (
            "suicide"
            in cryptext_small.normalize("thinking about suic1de again").normalized_text
        )

    def test_perturb(self, cryptext_small):
        outcome = cryptext_small.perturb("the democrats support the vaccine", ratio=1.0)
        assert outcome.requested_replacements >= 1

    def test_social_listener_constructed(self, cryptext_small):
        platform = SocialPlatform("twitter")
        listener = cryptext_small.social_listener(platform)
        assert isinstance(listener, SocialListener)
        assert listener.lookup is cryptext_small.lookup_engine


class TestLearning:
    def test_learn_from_adds_tokens(self, small_corpus):
        system = CrypText.from_corpus(small_corpus)
        before = system.stats().total_tokens
        added = system.learn_from(["a brand new toxword appears: vacc!ne"], source="stream")
        assert added > 0
        assert system.stats().total_tokens > before

    def test_learn_from_invalidates_cache(self, small_corpus):
        system = CrypText.from_corpus(small_corpus)
        system.look_up("vaccine")
        assert system.cache is not None and len(system.cache) > 0
        system.learn_from(["the vaxxcine debate"], source="stream")
        assert len(system.cache) == 0

    def test_new_perturbation_found_after_learning(self, small_corpus):
        system = CrypText.from_corpus(small_corpus)
        before = system.look_up("mandate").perturbation_tokens()
        system.learn_from(["they fight the mand4te every day"])
        after = system.look_up("mandate").perturbation_tokens()
        assert "mand4te" not in before
        assert "mand4te" in after


class TestStats:
    def test_stats_shape(self, cryptext_small):
        stats = cryptext_small.stats()
        assert stats.total_tokens > 0
        assert set(stats.unique_keys) == {0, 1, 2}
        # tokens outnumber phonetic sounds (paper: 2M tokens vs 400K sounds)
        assert stats.total_tokens >= stats.unique_keys[1]

    def test_stats_to_dict(self, cryptext_small):
        payload = cryptext_small.stats().to_dict()
        assert set(payload["unique_keys"]) == {"0", "1", "2"}
