"""Property-based tests for the batch engine and the perturb/normalize loop.

Two families of properties, checked with Hypothesis over random corpora:

* **round-trip** — for texts built from a pool of phonetically-distinct
  English words whose observed perturbations all satisfy the SMS property at
  the paper defaults (k=1, d=3), ``perturb`` followed by ``normalize``
  recovers the original text (and hence the original token set);
* **batch ≡ sequential** — ``look_up_batch`` / ``normalize_batch`` are
  order-preserving and identical to N sequential single calls, for any mix
  of known, perturbed, duplicate and unencodable inputs, and the streaming
  variants agree with the batch ones under any chunking.

The word pool is constructed so the properties are *exact*: every pool word
is a lexicon word, pool words have pairwise-distinct Soundex keys at k=1
(so each sound bucket holds exactly one English candidate and normalization
cannot pick a different word), and every generated perturbation shares its
word's key within edit distance 3 (so Look Up always finds it).  The test
itself verifies those invariants before relying on them.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import CrypText
from repro.core.edit_distance import bounded_levenshtein
from repro.core.perturber import Perturber
from repro.core.soundex import CustomSoundex
from repro.text.tokenizer import Tokenizer
from repro.text.wordlist import default_lexicon

#: Lexicon words with pairwise-distinct customized-Soundex keys at k=1.
WORD_POOL = (
    "democrats", "republicans", "vaccine", "muslim", "amazon", "depression",
    "suicide", "movie", "mandate", "agenda", "freedom", "hospital",
    "science", "government", "protest", "election",
)

_ENCODER = CustomSoundex(phonetic_level=1)
_LEXICON = default_lexicon()
_TOKENIZER = Tokenizer(lowercase=False)


def _is_single_word_token(variant: str) -> bool:
    """Whether the tokenizer keeps ``variant`` intact as one word token.

    A variant like ``@mazon`` reads as a platform mention and would neither
    enter the dictionary nor be offered for normalization, so it cannot take
    part in the round-trip properties.
    """
    tokens = _TOKENIZER.word_tokens(variant)
    return len(tokens) == 1 and tokens[0].text == variant

#: Leet substitutions folded by the customized Soundex (charmap subset).
_VISUAL_SUBS = {"a": "@", "e": "3", "i": "1", "o": "0", "s": "$"}


def _raw_variants(word: str) -> list[str]:
    variants = []
    for letter, substitute in _VISUAL_SUBS.items():
        if letter in word:
            variants.append(word.replace(letter, substitute, 1))
    for position in (1, len(word) // 2):
        variants.append(word[:position] + word[position] * 2 + word[position:])
    for vowel in "aeiou":
        index = word.find(vowel, 1)
        if index != -1:
            variants.append(word[:index] + vowel * 3 + word[index + 1 :])
            break
    return list(dict.fromkeys(variants))


def sms_perturbations(word: str) -> list[str]:
    """Variants of ``word`` satisfying the SMS property at k=1, d=3."""
    key = _ENCODER.encode(word)
    return [
        variant
        for variant in _raw_variants(word)
        if variant != word
        and _ENCODER.encode_or_none(variant) == key
        and bounded_levenshtein(word, variant, 3) is not None
        and not _LEXICON.is_word(variant)
        and _is_single_word_token(variant)
    ]


PERTURBATIONS = {word: sms_perturbations(word) for word in WORD_POOL}


def test_word_pool_invariants():
    """The guarantees every property below relies on."""
    keys = [_ENCODER.encode(word) for word in WORD_POOL]
    assert len(set(keys)) == len(WORD_POOL), "pool keys must be pairwise distinct"
    for word in WORD_POOL:
        assert _LEXICON.is_word(word)
        assert len(PERTURBATIONS[word]) >= 2


@pytest.fixture(scope="module")
def system() -> CrypText:
    corpus = []
    for word in WORD_POOL:
        corpus.append(f"people discuss {word} online")
        for variant in PERTURBATIONS[word]:
            corpus.append(f"people discuss {variant} online")
    return CrypText.from_corpus(corpus, seed_lexicon=False)


# --------------------------------------------------------------------------- #
# round-trip: perturb -> normalize
# --------------------------------------------------------------------------- #
@settings(max_examples=40, deadline=None)
@given(
    words=st.lists(st.sampled_from(WORD_POOL), min_size=1, max_size=8),
    ratio=st.sampled_from([0.15, 0.25, 0.5, 1.0]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_perturb_normalize_round_trip(system, words, ratio, seed):
    text = " ".join(words)
    perturber = Perturber(
        system.lookup_engine, config=system.config, rng=random.Random(seed)
    )
    outcome = perturber.perturb(text, ratio=ratio, fill_target=True)
    normalized = system.normalize(outcome.perturbed_text)
    assert normalized.normalized_text == text
    # Token-set recovery, stated explicitly:
    assert normalized.normalized_text.split() == text.split()


@settings(max_examples=40, deadline=None)
@given(
    choices=st.lists(
        st.tuples(st.sampled_from(WORD_POOL), st.integers(min_value=0, max_value=7)),
        min_size=1,
        max_size=8,
    )
)
def test_normalize_recovers_manual_perturbations(system, choices):
    """Any hand-mixed perturbed text normalizes back to its clean form."""
    clean_tokens, noisy_tokens = [], []
    for word, pick in choices:
        variants = PERTURBATIONS[word]
        clean_tokens.append(word)
        # pick == 0 keeps the clean word; otherwise pick a variant.
        if pick == 0:
            noisy_tokens.append(word)
        else:
            noisy_tokens.append(variants[(pick - 1) % len(variants)])
    result = system.normalize(" ".join(noisy_tokens))
    assert result.normalized_text == " ".join(clean_tokens)


# --------------------------------------------------------------------------- #
# batch == N sequential calls, order preserved
# --------------------------------------------------------------------------- #
_QUERY_STRATEGY = st.lists(
    st.one_of(
        st.sampled_from(WORD_POOL),
        st.sampled_from([v for vs in PERTURBATIONS.values() for v in vs]),
        st.sampled_from(["unseenword", "zzzzzz", "...", "###"]),
    ),
    min_size=0,
    max_size=24,
)


@settings(max_examples=30, deadline=None)
@given(queries=_QUERY_STRATEGY, case_sensitive=st.booleans())
def test_look_up_batch_equals_sequential(system, queries, case_sensitive):
    batch = system.batch.look_up_batch(queries, case_sensitive=case_sensitive)
    sequential = [
        system.lookup_engine.look_up(query, case_sensitive=case_sensitive)
        for query in queries
    ]
    assert batch == sequential
    assert [result.query for result in batch] == list(queries)


@settings(max_examples=20, deadline=None)
@given(
    texts=st.lists(
        st.lists(
            st.sampled_from(
                list(WORD_POOL) + [v for vs in PERTURBATIONS.values() for v in vs]
            ),
            min_size=1,
            max_size=6,
        ).map(" ".join),
        min_size=0,
        max_size=10,
    )
)
def test_normalize_batch_equals_sequential(system, texts):
    batch = system.batch.normalize_batch(texts)
    sequential = [system.normalize(text) for text in texts]
    assert batch == sequential
    assert [result.original_text for result in batch] == list(texts)


@settings(max_examples=20, deadline=None)
@given(
    queries=_QUERY_STRATEGY,
    chunk_size=st.integers(min_value=1, max_value=7),
    max_in_flight=st.integers(min_value=1, max_value=3),
)
def test_stream_equals_batch_under_any_chunking(system, queries, chunk_size, max_in_flight):
    streamed = list(
        system.batch.stream_look_up(
            iter(queries), chunk_size=chunk_size, max_in_flight=max_in_flight
        )
    )
    assert streamed == system.batch.look_up_batch(queries)
