"""Tests for repro.core.categories (perturbation taxonomy)."""

from __future__ import annotations

import pytest

from repro.core.categories import (
    HUMAN_DISTINCTIVE_CATEGORIES,
    PerturbationCategory,
    categorize_perturbation,
    category_counts,
)


class TestPaperStrategyExamples:
    @pytest.mark.parametrize(
        ("original", "perturbed", "expected"),
        [
            ("democrats", "democRATs", PerturbationCategory.EMPHASIS_CAPITALIZATION),
            ("muslim", "mus-lim", PerturbationCategory.SEPARATOR_INSERTION),
            ("vaccine", "vac-cine", PerturbationCategory.SEPARATOR_INSERTION),
            ("chinese", "chi-nese", PerturbationCategory.SEPARATOR_INSERTION),
            ("suicide", "suic1de", PerturbationCategory.LEET_SUBSTITUTION),
            ("democrats", "dem0cr@ts", PerturbationCategory.LEET_SUBSTITUTION),
            ("porn", "porrrrn", PerturbationCategory.CHARACTER_REPETITION),
            ("dirty", "dirrrty", PerturbationCategory.CHARACTER_REPETITION),
            ("depression", "depresxion", PerturbationCategory.PHONETIC_RESPELLING),
            ("democrats", "demcrats", PerturbationCategory.CHARACTER_DELETION),
            ("democrats", "demoacrats", PerturbationCategory.CHARACTER_INSERTION),
            ("democrats", "demorcats", PerturbationCategory.ADJACENT_SWAP),
            ("democrats", "ḋemocrats", PerturbationCategory.ACCENT_SUBSTITUTION),
        ],
    )
    def test_category(self, original, perturbed, expected):
        assert categorize_perturbation(original, perturbed) == expected

    def test_identical_pair(self):
        assert (
            categorize_perturbation("vaccine", "vaccine")
            == PerturbationCategory.IDENTICAL
        )

    def test_heavily_mixed_perturbation(self):
        assert (
            categorize_perturbation("republicans", "republic@@ns")
            == PerturbationCategory.MIXED
        )


class TestEmphasisDetection:
    def test_all_caps_is_not_emphasis(self):
        # Plain shouting is ordinary styling, not embedded-word emphasis.
        result = categorize_perturbation("democrats", "DEMOCRATS")
        assert result != PerturbationCategory.EMPHASIS_CAPITALIZATION

    def test_capitalized_first_letter_is_not_emphasis(self):
        result = categorize_perturbation("democrats", "Democrats")
        assert result != PerturbationCategory.EMPHASIS_CAPITALIZATION

    def test_embedded_uppercase_is_emphasis(self):
        assert (
            categorize_perturbation("republicans", "repubLIcans")
            == PerturbationCategory.EMPHASIS_CAPITALIZATION
        )


class TestHumanDistinctiveSet:
    def test_human_set_contents(self):
        assert PerturbationCategory.EMPHASIS_CAPITALIZATION in HUMAN_DISTINCTIVE_CATEGORIES
        assert PerturbationCategory.SEPARATOR_INSERTION in HUMAN_DISTINCTIVE_CATEGORIES
        assert PerturbationCategory.CHARACTER_DELETION not in HUMAN_DISTINCTIVE_CATEGORIES
        assert PerturbationCategory.ADJACENT_SWAP not in HUMAN_DISTINCTIVE_CATEGORIES

    def test_category_values_are_strings(self):
        for category in PerturbationCategory:
            assert isinstance(category.value, str)
            assert str(category) == category.value


class TestCategoryCounts:
    def test_counts_aggregate(self):
        pairs = [
            ("democrats", "democRATs"),
            ("republicans", "repubLIcans"),
            ("muslim", "mus-lim"),
            ("vaccine", "vaccine"),
        ]
        counts = category_counts(pairs)
        assert counts[PerturbationCategory.EMPHASIS_CAPITALIZATION] == 2
        assert counts[PerturbationCategory.SEPARATOR_INSERTION] == 1
        assert counts[PerturbationCategory.IDENTICAL] == 1

    def test_counts_empty_input(self):
        assert category_counts([]) == {}
