"""Tests for repro.viz (word cloud, timelines, benchmark page exports)."""

from __future__ import annotations

import json
import math

import pytest

from repro.classifiers import RobustnessPoint
from repro.errors import VisualizationError
from repro.social import SocialListener
from repro.viz import (
    build_benchmark_page,
    build_multi_keyword_chart,
    build_timeline_chart,
    build_word_cloud,
)


class TestWordCloud:
    def test_items_cover_every_match(self, cryptext_small):
        result = cryptext_small.look_up("republicans")
        items = build_word_cloud(result)
        assert {item.token for item in items} == set(result.tokens)

    def test_sizes_scale_with_frequency(self, cryptext_small):
        items = build_word_cloud(cryptext_small.look_up("the"))
        by_weight = sorted(items, key=lambda item: item.weight)
        assert by_weight[0].size <= by_weight[-1].size

    def test_sizes_within_bounds(self, cryptext_small):
        items = build_word_cloud(
            cryptext_small.look_up("republicans"), min_size=10, max_size=40
        )
        assert all(10 <= item.size <= 40 for item in items)

    def test_positions_on_unit_sphere(self, cryptext_small):
        items = build_word_cloud(cryptext_small.look_up("republicans"))
        for item in items:
            radius = math.sqrt(item.x**2 + item.y**2 + item.z**2)
            assert radius == pytest.approx(1.0, abs=0.01)

    def test_original_flag_present(self, cryptext_small):
        items = build_word_cloud(cryptext_small.look_up("republicans"))
        assert any(item.is_original for item in items)

    def test_max_items_cap(self, cryptext_synthetic):
        items = build_word_cloud(cryptext_synthetic.look_up("vaccine"), max_items=3)
        assert len(items) <= 3

    def test_empty_result_rejected(self, cryptext_small):
        with pytest.raises(VisualizationError):
            build_word_cloud(cryptext_small.look_up("???"))

    def test_invalid_bounds_rejected(self, cryptext_small):
        with pytest.raises(VisualizationError):
            build_word_cloud(cryptext_small.look_up("republicans"), min_size=0)
        with pytest.raises(VisualizationError):
            build_word_cloud(cryptext_small.look_up("republicans"), min_size=20, max_size=10)

    def test_items_json_serializable(self, cryptext_small):
        items = build_word_cloud(cryptext_small.look_up("republicans"))
        assert json.dumps([item.to_dict() for item in items])


@pytest.fixture(scope="module")
def vaccine_usage(cryptext_synthetic, twitter_platform):
    listener = SocialListener(twitter_platform, cryptext_synthetic.lookup_engine)
    return listener.monitor_keyword("vaccine")


@pytest.fixture(scope="module")
def multi_usage(cryptext_synthetic, twitter_platform):
    listener = SocialListener(twitter_platform, cryptext_synthetic.lookup_engine)
    return listener.monitor_keywords(["vaccine", "democrats"])


class TestTimelineChart:
    def test_chart_structure(self, vaccine_usage):
        chart = build_timeline_chart(vaccine_usage)
        assert chart["labels"]
        assert len(chart["datasets"]) == 3
        for dataset in chart["datasets"]:
            assert len(dataset["data"]) == len(chart["labels"])

    def test_frequency_series_matches_usage(self, vaccine_usage):
        chart = build_timeline_chart(vaccine_usage)
        frequency = next(d for d in chart["datasets"] if d["kind"] == "frequency")
        assert sum(frequency["data"]) == vaccine_usage.total_posts

    def test_chart_json_serializable(self, vaccine_usage):
        assert json.dumps(build_timeline_chart(vaccine_usage))

    def test_empty_usage_gives_empty_chart(self, cryptext_small, twitter_platform):
        listener = SocialListener(twitter_platform, cryptext_small.lookup_engine)
        chart = build_timeline_chart(listener.monitor_keyword("zebra"))
        assert chart["labels"] == []
        assert chart["datasets"] == []

    def test_multi_keyword_chart(self, multi_usage):
        chart = build_multi_keyword_chart(multi_usage, kind="frequency")
        assert {dataset["label"] for dataset in chart["datasets"]} == {"vaccine", "democrats"}
        for dataset in chart["datasets"]:
            assert len(dataset["data"]) == len(chart["labels"])

    def test_multi_keyword_chart_sentiment_kind(self, multi_usage):
        chart = build_multi_keyword_chart(multi_usage, kind="negative_share")
        for dataset in chart["datasets"]:
            assert all(0.0 <= value <= 1.0 for value in dataset["data"])

    def test_multi_keyword_chart_validation(self, multi_usage):
        with pytest.raises(VisualizationError):
            build_multi_keyword_chart(multi_usage, kind="volume")
        with pytest.raises(VisualizationError):
            build_multi_keyword_chart({})


class TestBenchmarkPage:
    def _points(self, service: str, accuracies: dict[float, float]) -> list[RobustnessPoint]:
        return [
            RobustnessPoint(service=service, ratio=ratio, accuracy=accuracy, num_samples=100)
            for ratio, accuracy in accuracies.items()
        ]

    def test_page_structure(self):
        page = build_benchmark_page(
            {
                "perspective_toxicity": self._points(
                    "perspective_toxicity", {0.0: 0.9, 0.25: 0.8, 0.5: 0.7}
                ),
                "cloud_sentiment": self._points(
                    "cloud_sentiment", {0.0: 0.85, 0.25: 0.8, 0.5: 0.75}
                ),
            }
        )
        assert len(page["rows"]) == 6
        assert set(page["series"]) == {"perspective_toxicity", "cloud_sentiment"}
        assert page["series"]["perspective_toxicity"]["ratios"] == [0.0, 0.25, 0.5]

    def test_accuracy_drop_computed_from_clean_point(self):
        page = build_benchmark_page(
            {"api": self._points("api", {0.0: 0.9, 0.25: 0.8})}
        )
        drop_by_ratio = {row["ratio"]: row["accuracy_drop"] for row in page["rows"]}
        assert drop_by_ratio[0.0] == pytest.approx(0.0)
        assert drop_by_ratio[0.25] == pytest.approx(0.1)

    def test_source_label_recorded(self):
        page = build_benchmark_page(
            {"api": self._points("api", {0.0: 0.9})}, perturbation_source="textbugger"
        )
        assert all(row["perturbation_source"] == "textbugger" for row in page["rows"])
        assert "TEXTBUGGER" in page["title"]

    def test_empty_inputs_rejected(self):
        with pytest.raises(VisualizationError):
            build_benchmark_page({})
        with pytest.raises(VisualizationError):
            build_benchmark_page({"api": []})

    def test_page_json_serializable(self):
        page = build_benchmark_page({"api": self._points("api", {0.0: 0.9, 0.5: 0.6})})
        assert json.dumps(page)
