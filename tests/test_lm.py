"""Tests for repro.lm (vocabulary, n-gram LM, coherency scorer)."""

from __future__ import annotations

import math

import pytest

from repro.errors import LanguageModelError
from repro.lm import (
    CoherencyScorer,
    NgramLanguageModel,
    SENTENCE_END,
    SENTENCE_START,
    UNK_TOKEN,
    Vocabulary,
)

CORPUS = [
    "the democrats support the vaccine mandate".split(),
    "the republicans oppose the vaccine mandate".split(),
    "the democrats debate the republicans".split(),
    "people discuss the vaccine every day".split(),
    "the senate passed the bill".split(),
]


class TestVocabulary:
    def test_fit_and_membership(self):
        vocabulary = Vocabulary().fit(CORPUS)
        assert "democrats" in vocabulary
        assert "zebra" not in vocabulary

    def test_case_folding(self):
        vocabulary = Vocabulary().fit([["Democrats", "WIN"]])
        assert "democrats" in vocabulary
        assert "win" in vocabulary

    def test_special_tokens_present(self):
        vocabulary = Vocabulary().fit(CORPUS)
        for token in (UNK_TOKEN, SENTENCE_START, SENTENCE_END):
            assert token in vocabulary

    def test_unknown_maps_to_unk_id(self):
        vocabulary = Vocabulary().fit(CORPUS)
        assert vocabulary.id_of("zebra") == vocabulary.id_of(UNK_TOKEN)

    def test_encode_and_token_of_round_trip(self):
        vocabulary = Vocabulary().fit(CORPUS)
        ids = vocabulary.encode(["the", "democrats"])
        assert [vocabulary.token_of(token_id) for token_id in ids] == ["the", "democrats"]

    def test_min_count_prunes_rare_words(self):
        vocabulary = Vocabulary(min_count=2).fit(CORPUS)
        assert "the" in vocabulary
        assert "senate" not in vocabulary  # appears once

    def test_counts(self):
        vocabulary = Vocabulary().fit(CORPUS)
        assert vocabulary.count_of("the") >= 5
        assert vocabulary.count_of("zebra") == 0

    def test_invalid_min_count(self):
        with pytest.raises(LanguageModelError):
            Vocabulary(min_count=0)

    def test_token_of_invalid_id(self):
        vocabulary = Vocabulary().fit(CORPUS)
        with pytest.raises(LanguageModelError):
            vocabulary.token_of(10_000)


class TestNgramLanguageModel:
    def test_probabilities_form_reasonable_distribution(self):
        model = NgramLanguageModel(order=2).fit(CORPUS)
        vocabulary = model.vocabulary
        total = sum(
            model.probability(token, ["the"])
            for token in vocabulary.tokens
            if token != SENTENCE_START
        )
        assert total == pytest.approx(1.0, abs=0.05)

    def test_seen_bigram_more_likely_than_unseen(self):
        model = NgramLanguageModel(order=2).fit(CORPUS)
        assert model.probability("vaccine", ["the"]) > model.probability("zebra", ["the"])

    def test_context_changes_probability(self):
        model = NgramLanguageModel(order=3).fit(CORPUS)
        in_context = model.probability("mandate", ["the", "vaccine"])
        out_of_context = model.probability("mandate", ["the", "senate"])
        assert in_context > out_of_context

    def test_log_probability_is_log_of_probability(self):
        model = NgramLanguageModel(order=2).fit(CORPUS)
        probability = model.probability("democrats", ["the"])
        assert model.log_probability("democrats", ["the"]) == pytest.approx(
            math.log(probability)
        )

    def test_sentence_log_probability_orders_sentences(self):
        model = NgramLanguageModel(order=3).fit(CORPUS)
        likely = model.sentence_log_probability("the democrats support the vaccine".split())
        unlikely = model.sentence_log_probability("vaccine the the support zebra".split())
        assert likely > unlikely

    def test_perplexity_positive_and_finite(self):
        model = NgramLanguageModel(order=2).fit(CORPUS)
        perplexity = model.perplexity("the democrats debate".split())
        assert perplexity > 1.0
        assert math.isfinite(perplexity)

    def test_perplexity_empty_sequence_rejected(self):
        model = NgramLanguageModel(order=2).fit(CORPUS)
        with pytest.raises(LanguageModelError):
            model.perplexity([])

    def test_untrained_model_rejects_queries(self):
        with pytest.raises(LanguageModelError):
            NgramLanguageModel().probability("the")

    def test_unigram_model_ignores_context(self):
        model = NgramLanguageModel(order=1).fit(CORPUS)
        assert model.probability("vaccine", ["the"]) == pytest.approx(
            model.probability("vaccine", [])
        )

    def test_invalid_hyperparameters(self):
        with pytest.raises(LanguageModelError):
            NgramLanguageModel(order=0)
        with pytest.raises(LanguageModelError):
            NgramLanguageModel(alpha=0)
        with pytest.raises(LanguageModelError):
            NgramLanguageModel(order=2, interpolation_weights=[1.0])
        with pytest.raises(LanguageModelError):
            NgramLanguageModel(order=2, interpolation_weights=[0.0, 0.0])

    def test_custom_interpolation_weights_normalized(self):
        model = NgramLanguageModel(order=2, interpolation_weights=[2.0, 6.0])
        assert sum(model.weights) == pytest.approx(1.0)

    def test_score_in_context_uses_right_context(self):
        model = NgramLanguageModel(order=3).fit(CORPUS)
        with_right = model.score_in_context("vaccine", ["the"], ["mandate"])
        without_right = model.score_in_context("zebra", ["the"], ["mandate"])
        assert with_right > without_right


class TestCoherencyScorer:
    def test_ranks_contextual_word_first(self):
        scorer = CoherencyScorer(order=3).fit(CORPUS)
        ranked = scorer.rank_candidates(
            ["vaccine", "senate", "zebra"], ["the"], ["mandate"]
        )
        assert ranked[0][0] == "vaccine"

    def test_scores_sorted_descending(self):
        scorer = CoherencyScorer(order=3).fit(CORPUS)
        ranked = scorer.rank_candidates(["vaccine", "senate", "bill"], ["the"], [])
        scores = [score for _word, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_right_context_contributes(self):
        scorer = CoherencyScorer(order=3, backward_weight=0.5).fit(CORPUS)
        with_right = scorer.score("vaccine", ["the"], ["mandate"])
        without_right = scorer.score("vaccine", ["the"], ["zebra"])
        assert with_right > without_right

    def test_backward_weight_validation(self):
        with pytest.raises(LanguageModelError):
            CoherencyScorer(backward_weight=1.5)

    def test_untrained_scorer_rejects_queries(self):
        with pytest.raises(LanguageModelError):
            CoherencyScorer().score("vaccine", ["the"])

    def test_is_trained_flag(self):
        scorer = CoherencyScorer()
        assert not scorer.is_trained
        scorer.fit(CORPUS)
        assert scorer.is_trained

    def test_sentence_log_probability_available(self):
        scorer = CoherencyScorer().fit(CORPUS)
        assert math.isfinite(scorer.sentence_log_probability("the democrats debate".split()))
