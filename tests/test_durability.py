"""Tests for delta snapshots, crash recovery, and the maintenance scheduler.

The contract under test: a process killed at *any* point after a write was
acknowledged — mid-ingest, mid-append (torn tail), between delta saves —
recovers to a dictionary observably identical to an uninterrupted run; a
broken delta chain degrades to base + full WAL replay instead of wrong
answers; and the scheduler drives saves/compaction/truncation from both the
cooperative (crawler/stream) and background paths.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import CrypText, CrypTextConfig
from repro.core.dictionary import PerturbationDictionary
from repro.core.lookup import LookupEngine
from repro.errors import SnapshotError
from repro.storage import SNAPSHOT_FILE_NAME, read_snapshot
from repro.wal import (
    ChangeLog,
    MaintenancePolicy,
    MaintenanceScheduler,
    compact_chain,
    list_delta_paths,
    read_delta,
    resolve_snapshot_chain,
    wal_directory_for,
)

CONFIG = CrypTextConfig(cache_enabled=False)

CORPUS = [
    "the demokrats hate the vacc1ne",
    "the dirrty republicans lie",
    "teh vaccine works",
    "the democRATs and the repubLIEcans argue online",
]

LATER = [
    "fresh amaz0n chatter tonight",
    "mus-lim families moved into the neighborhood",
]

PROBES = ("vaccine", "democrats", "republicans", "amazon", "muslim", "the", "zzzz")


def _journaled_dictionary(tmp_path: Path) -> PerturbationDictionary:
    dictionary = PerturbationDictionary(config=CONFIG)
    dictionary.attach_wal(ChangeLog(wal_directory_for(tmp_path)))
    return dictionary


def _assert_equivalent(left: PerturbationDictionary, right: PerturbationDictionary):
    assert left.content_fingerprint() == right.content_fingerprint()
    assert left.token_counts() == right.token_counts()
    left_engine = LookupEngine(left, config=CONFIG)
    right_engine = LookupEngine(right, config=CONFIG)
    for probe in PROBES:
        for distance in (1, 3):
            assert left_engine.look_up(probe, max_edit_distance=distance) == (
                right_engine.look_up(probe, max_edit_distance=distance)
            ), probe


class TestDeltaSnapshots:
    def test_incremental_without_base_falls_back_to_full(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        report = dictionary.save_snapshot(
            tmp_path / SNAPSHOT_FILE_NAME, incremental=True
        )
        assert not report.incremental
        assert list_delta_paths(tmp_path) == []

    def test_delta_covers_only_dirty_buckets(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        full = dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        dictionary.add_text(LATER[0], source="later")
        delta_report = dictionary.save_snapshot(
            tmp_path / SNAPSHOT_FILE_NAME, incremental=True
        )
        assert delta_report.incremental and delta_report.delta_index == 1
        assert 0 < delta_report.documents < full.documents
        assert 0 < delta_report.buckets < full.buckets
        delta = read_delta(Path(delta_report.path))
        assert delta.parent_fingerprint == read_snapshot(
            tmp_path / SNAPSHOT_FILE_NAME
        ).fingerprint
        assert delta.fingerprint == dictionary.content_fingerprint()

    def test_nothing_dirty_writes_no_file(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        report = dictionary.save_snapshot(
            tmp_path / SNAPSHOT_FILE_NAME, incremental=True
        )
        assert report.incremental and report.delta_index is None
        assert report.documents == 0
        assert list_delta_paths(tmp_path) == []

    def test_chain_resolution_matches_full_save(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        for text in LATER:
            dictionary.add_text(text, source="later")
            dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        chain = resolve_snapshot_chain(tmp_path)
        assert chain.deltas_applied == 2
        reference = dictionary.build_snapshot()
        assert chain.snapshot.fingerprint == reference.fingerprint
        assert {d["token"] for d in chain.snapshot.documents} == {
            d["token"] for d in reference.documents
        }
        assert {
            (level, key) for level, key, _ in chain.snapshot.buckets
        } == {(level, key) for level, key, _ in reference.buckets}

    def test_full_save_supersedes_deltas(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        dictionary.add_text(LATER[0], source="later")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        assert len(list_delta_paths(tmp_path)) == 1
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        assert list_delta_paths(tmp_path) == []

    def test_compact_chain_folds_deltas(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        dictionary.add_text(LATER[0], source="later")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        chain = compact_chain(tmp_path)
        assert list_delta_paths(tmp_path) == []
        compacted = read_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        assert compacted.fingerprint == chain.snapshot.fingerprint
        hydrated = PerturbationDictionary(config=CONFIG)
        assert hydrated.load_snapshot(tmp_path / SNAPSHOT_FILE_NAME).loaded
        _assert_equivalent(dictionary, hydrated)

    def test_delta_numbering_gap_is_refused(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        for text in LATER:
            dictionary.add_text(text, source="later")
            dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        list_delta_paths(tmp_path)[0].unlink()
        with pytest.raises(SnapshotError):
            resolve_snapshot_chain(tmp_path)


class TestCrashRecovery:
    def _ingest_with_midpoint_save(self, tmp_path: Path) -> PerturbationDictionary:
        """The crash victim: base saved mid-ingest, later writes only in the WAL."""
        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        for text in LATER:
            dictionary.add_text(text, source="later")
        return dictionary

    def _uninterrupted_reference(self) -> PerturbationDictionary:
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        for text in LATER:
            dictionary.add_text(text, source="later")
        return dictionary

    def test_kill_after_acknowledged_writes_loses_nothing(self, tmp_path):
        victim = self._ingest_with_midpoint_save(tmp_path)
        # Simulated kill -9: the process state is simply dropped; only the
        # files survive.
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert report.loaded and report.replayed_records > 0
        assert report.degraded == ()
        _assert_equivalent(victim, recovered)
        _assert_equivalent(self._uninterrupted_reference(), recovered)
        # Replay reassigned the exact document ids, so bucket order — and
        # therefore every downstream ranking — is byte-identical.
        assert [d["_id"] for d in victim.collection.find(None)] == [
            d["_id"] for d in recovered.collection.find(None)
        ]

    def test_recovery_is_idempotent(self, tmp_path):
        self._ingest_with_midpoint_save(tmp_path)
        first = PerturbationDictionary(config=CONFIG)
        first.recover(tmp_path)
        second = PerturbationDictionary(config=CONFIG)
        second.recover(tmp_path)
        _assert_equivalent(first, second)

    def test_torn_tail_mid_append_is_discarded(self, tmp_path):
        victim = self._ingest_with_midpoint_save(tmp_path)
        segment = sorted(wal_directory_for(tmp_path).glob("wal-*.seg"))[-1]
        with segment.open("ab") as handle:
            handle.write(b"000000a1" + b"00bada55" + b'{"seq": 99')  # cut short
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert report.torn_bytes > 0
        # The torn record was never acknowledged; everything before it is
        # intact.
        _assert_equivalent(victim, recovered)

    def test_recovery_resumes_journaling_and_incremental_saves(self, tmp_path):
        self._ingest_with_midpoint_save(tmp_path)
        recovered = PerturbationDictionary(config=CONFIG)
        recovered.recover(tmp_path)
        assert recovered.wal is not None
        # The replayed tail is dirty on top of the on-disk chain tip: the
        # next incremental save persists it as a delta...
        report = recovered.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        assert report.incremental and report.delta_index == 1
        # ...and a second crash+recovery still reconstructs the same state.
        recovered.add_text("another totalitarian surveillance post", source="later2")
        twice = PerturbationDictionary(config=CONFIG)
        twice.recover(tmp_path)
        _assert_equivalent(recovered, twice)

    def test_broken_delta_chain_degrades_to_base_plus_replay(self, tmp_path):
        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        for text in LATER:
            dictionary.add_text(text, source="later")
            dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        # Corrupt the first delta's fingerprint linkage.
        delta_file = list_delta_paths(tmp_path)[0]
        body = json.loads(delta_file.read_text().splitlines()[1])
        body["parent_fingerprint"] = "deadbeef"
        from repro.storage import write_envelope

        write_envelope(delta_file, body)
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert report.loaded and report.deltas_applied == 0
        assert any("fingerprint" in reason for reason in report.degraded)
        # The WAL retained everything past the *full* save, so the state is
        # still complete.
        _assert_equivalent(dictionary, recovered)
        with pytest.raises(SnapshotError):
            PerturbationDictionary(config=CONFIG).recover(tmp_path, strict=True)

    def test_no_snapshot_at_all_replays_from_scratch(self, tmp_path):
        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert not report.loaded
        assert report.replayed_records > 0
        _assert_equivalent(dictionary, recovered)

    def test_pure_replay_recovery_replaces_existing_state(self, tmp_path):
        """WAL-only recovery must reconstruct, not accumulate: pre-existing
        documents are dropped and a repeat recover() is idempotent."""
        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        target = PerturbationDictionary(config=CONFIG)
        target.add_token("preexisting", source="x")
        target.recover(tmp_path)
        assert "preexisting" not in target.token_counts()
        counts_once = target.token_counts()
        target.recover(tmp_path)  # live re-recovery: same WAL, same result
        assert target.token_counts() == counts_once
        assert counts_once == dictionary.token_counts()

    def test_wal_attached_after_snapshot_load_is_not_shadowed(self, tmp_path):
        # A snapshot whose recorded wal_seq came from an earlier journal...
        victim = self._ingest_with_midpoint_save(tmp_path)
        snapshot_seq = read_snapshot(tmp_path / SNAPSHOT_FILE_NAME).wal_seq
        assert snapshot_seq > 0
        # ...is loaded by a process with no WAL, which only then attaches a
        # *fresh* log somewhere else.  Its sequences must start past the
        # snapshot's position, or replay would skip the acknowledged writes.
        fresh = PerturbationDictionary(config=CONFIG)
        assert fresh.load_snapshot(tmp_path / SNAPSHOT_FILE_NAME).loaded
        other_wal = tmp_path / "relocated-wal"
        fresh.attach_wal(ChangeLog(other_wal))
        fresh.add_text(LATER[1], source="after-attach")
        assert fresh.wal.last_seq > snapshot_seq
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path, wal_dir=other_wal)
        assert report.replayed_records > 0
        _assert_equivalent(fresh, recovered)

    def test_write_landing_mid_save_is_never_lost(self, tmp_path, monkeypatch):
        """A token re-dirtied while a delta save is serializing must stay
        dirty — the save's completion must not subtract it away."""
        import repro.wal.delta as delta_module

        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        dictionary.add_token("vacc1ne", source="w", count=10)

        real_write = delta_module.write_delta

        def write_with_concurrent_write(path, delta):
            # Lands after the dirty capture, before the save completes.
            dictionary.add_token("vacc1ne", source="w", count=100)
            return real_write(path, delta)

        monkeypatch.setattr(delta_module, "write_delta", write_with_concurrent_write)
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        monkeypatch.setattr(delta_module, "write_delta", real_write)
        # The +100 write is still dirty, so the next delta persists it...
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        recovered = PerturbationDictionary(config=CONFIG)
        recovered.recover(tmp_path)
        assert recovered.token_counts()["vacc1ne"] == dictionary.token_counts()["vacc1ne"]

    def test_interior_wal_corruption_degrades_not_raises(self, tmp_path):
        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        # Force multiple segments, then corrupt a non-final one.
        dictionary.detach_wal()
        small = ChangeLog(wal_directory_for(tmp_path), segment_bytes=64)
        dictionary.attach_wal(small)
        for text in LATER:
            dictionary.add_text(text, source="later")
        segments = sorted(wal_directory_for(tmp_path).glob("wal-*.seg"))
        assert len(segments) > 1
        data = bytearray(segments[0].read_bytes())
        data[len(data) // 2] ^= 0xFF
        segments[0].write_bytes(bytes(data))
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert report.loaded and report.replayed_records == 0
        assert any("corrupt" in reason for reason in report.degraded)
        from repro.errors import WalError

        with pytest.raises(WalError):
            PerturbationDictionary(config=CONFIG).recover(tmp_path, strict=True)

    def test_degraded_recovery_still_floors_a_fresh_wal(self, tmp_path):
        """After a corrupt-WAL recovery, a replacement log must hand out
        sequences past the installed snapshot's position."""
        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        snapshot_seq = read_snapshot(tmp_path / SNAPSHOT_FILE_NAME).wal_seq
        dictionary.detach_wal()
        small = ChangeLog(wal_directory_for(tmp_path), segment_bytes=64)
        dictionary.attach_wal(small)
        for text in LATER:
            dictionary.add_text(text, source="later")
        segments = sorted(wal_directory_for(tmp_path).glob("wal-*.seg"))
        data = bytearray(segments[0].read_bytes())
        data[len(data) // 2] ^= 0xFF
        segments[0].write_bytes(bytes(data))

        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert report.degraded  # corrupt WAL, no replay
        # Operator moves the corrupt log aside and attaches a fresh one.
        fresh_wal = ChangeLog(tmp_path / "fresh-wal")
        recovered.attach_wal(fresh_wal)
        recovered.add_token("brandneww0rd", source="post-recovery")
        assert fresh_wal.last_seq > snapshot_seq
        second = PerturbationDictionary(config=CONFIG)
        second.recover(tmp_path, wal_dir=tmp_path / "fresh-wal")
        assert "brandneww0rd" in second.token_counts()

    def test_side_export_save_never_touches_configured_wal(self, tmp_path):
        """A WAL-less full save into an unrelated directory must not
        sideline the production journal named by config.wal_dir."""
        config = CONFIG.with_overrides(
            snapshot_dir=str(tmp_path / "db"), wal_dir=str(tmp_path / "srvwal")
        )
        dictionary = PerturbationDictionary(config=config)
        dictionary.attach_wal(ChangeLog(tmp_path / "srvwal"))
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.detach_wal()  # the exporting process has no WAL
        dictionary.save_snapshot(tmp_path / "export" / SNAPSHOT_FILE_NAME)
        assert ChangeLog.scan(tmp_path / "srvwal").records > 0  # untouched

    def test_walless_full_save_supersedes_stale_journal(self, tmp_path):
        """A full chain save by a WAL-less process (the CLI's JSONL-fallback
        flow) must not leave old journal segments that the next recovery
        would replay on top of the new base."""
        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        assert ChangeLog.scan(wal_directory_for(tmp_path)).records > 0
        reference = dictionary.token_counts()

        rebuilt = PerturbationDictionary(config=CONFIG)  # no WAL attached
        rebuilt.add_corpus(CORPUS, source="test")
        rebuilt.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        assert ChangeLog.scan(wal_directory_for(tmp_path)).records == 0
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert report.replayed_records == 0
        assert recovered.token_counts() == reference  # not double-applied

    def test_in_place_recovery_reassigns_original_ids(self, tmp_path):
        """recover() on a dictionary whose id counter already advanced must
        still hand replayed inserts the ids the crashed process assigned —
        str(_id) order is bucket order is ranking order."""
        victim = self._ingest_with_midpoint_save(tmp_path)
        live = PerturbationDictionary(config=CONFIG)
        for index in range(7):  # advance the auto-id counter well past 2
            live.add_token(f"prior{index}word", source="old-life")
        live.recover(tmp_path)
        assert {d["token"]: d["_id"] for d in live.collection.find(None)} == {
            d["token"]: d["_id"] for d in victim.collection.find(None)
        }
        _assert_equivalent(victim, live)

    def test_recovery_report_surfaces_in_stats(self, tmp_path):
        self._ingest_with_midpoint_save(tmp_path)
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert recovered.last_recovery is report
        assert report.to_dict()["replayed_records"] == report.replayed_records

    @settings(max_examples=15, deadline=None)
    @given(
        tokens=st.lists(
            st.text(
                alphabet="abcdefghijklmnopqrstuvwxyz013@",
                min_size=1,
                max_size=10,
            ),
            min_size=1,
            max_size=30,
        ),
        cut=st.integers(min_value=0, max_value=30),
    )
    def test_random_ingest_with_midpoint_snapshot_recovers(
        self, tmp_path_factory, tokens, cut
    ):
        """Property: snapshot at any point + WAL replay == uninterrupted run."""
        tmp = tmp_path_factory.mktemp("crash")
        cut = min(cut, len(tokens))
        victim = _journaled_dictionary(tmp)
        for token in tokens[:cut]:
            victim.add_token(token, source="prop")
        victim.save_snapshot(tmp / SNAPSHOT_FILE_NAME)
        for token in tokens[cut:]:
            victim.add_token(token, source="prop")
        recovered = PerturbationDictionary(config=CONFIG)
        recovered.recover(tmp)
        assert victim.token_counts() == recovered.token_counts()
        assert victim.content_fingerprint() == recovered.content_fingerprint()


class TestMaintenanceScheduler:
    def _scheduler(self, tmp_path, dictionary, **policy_kwargs):
        clock = [0.0]
        policy = MaintenancePolicy(**{"autosave_interval": 60.0, **policy_kwargs})
        scheduler = MaintenanceScheduler(
            dictionary,
            snapshot_dir=tmp_path,
            policy=policy,
            clock=lambda: clock[0],
        )
        return scheduler, clock

    def test_default_policy_enables_autosave(self, tmp_path):
        """An unset config interval must mean 'scheduler default', never a
        scheduler whose every tick is a silent no-op."""
        dictionary = PerturbationDictionary(config=CONFIG)
        scheduler = MaintenanceScheduler(dictionary, snapshot_dir=tmp_path)
        assert scheduler.policy.autosave_interval is not None
        explicit = MaintenanceScheduler(
            PerturbationDictionary(config=CONFIG),
            snapshot_dir=tmp_path / "other",
            policy=MaintenancePolicy(autosave_interval=None),
        )
        assert explicit.policy.autosave_interval is None

    def test_recover_on_live_system_reuses_attached_wal(self, tmp_path):
        """recover() over a running system must not orphan the scheduler's
        log reference — its truncations would unlink the live segments."""
        dictionary = PerturbationDictionary(config=CONFIG)
        scheduler, _ = self._scheduler(tmp_path, dictionary)
        dictionary.add_corpus(CORPUS, source="test")
        scheduler.save(incremental=False)
        dictionary.recover(tmp_path)
        assert dictionary.wal is scheduler.wal
        dictionary.add_text(LATER[0], source="later")
        scheduler.save(incremental=False)  # truncates the one live log
        dictionary.add_text(LATER[1], source="later2")  # journaled only
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert report.replayed_records > 0
        assert recovered.token_counts() == dictionary.token_counts()

    def test_wal_append_failure_rejects_the_whole_write(self, tmp_path):
        """A write whose journaling fails must not be half-applied (served
        in memory yet unreplayable)."""
        from repro.errors import WalError

        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_token("vacc1ne", source="a")
        version_before = dictionary.version
        dictionary.wal.close()  # stand-in for disk-full / EIO
        with pytest.raises(WalError):
            dictionary.add_token("newt0ken", source="a")
        assert "newt0ken" not in dictionary.token_counts()
        assert dictionary.version == version_before
        assert dictionary.dirty_state()["dirty_tokens"] == 1  # just vacc1ne

    def test_attaches_wal_to_dictionary(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        scheduler, _ = self._scheduler(tmp_path, dictionary)
        assert dictionary.wal is scheduler.wal
        dictionary.add_token("vacc1ne", source="t")
        assert scheduler.wal.last_seq == 1

    def test_tick_saves_only_when_due(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        scheduler, clock = self._scheduler(tmp_path, dictionary)
        assert scheduler.tick() is None
        clock[0] = 61.0
        report = scheduler.tick()
        assert report is not None and not report.incremental  # first save: full
        dictionary.add_text(LATER[0], source="later")
        clock[0] = 122.0
        second = scheduler.tick()
        assert second is not None and second.incremental
        status = scheduler.status()
        assert status["autosaves"] == 2
        assert status["incremental_saves"] == 1 and status["full_saves"] == 1

    def test_compaction_after_chain_limit(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        scheduler, _ = self._scheduler(tmp_path, dictionary, compact_every=2)
        scheduler.save()  # full (no chain yet)
        for index, text in enumerate(LATER):
            dictionary.add_text(text, source="later")
            scheduler.save()  # deltas 1, 2
        dictionary.add_text("one more perturbed amaz0n post", source="later")
        report = scheduler.save()  # chain length hit the limit -> fold
        assert not report.incremental
        assert list_delta_paths(tmp_path) == []
        assert scheduler.status()["compactions"] == 1

    def test_full_save_truncates_wal(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        scheduler, _ = self._scheduler(tmp_path, dictionary)
        dictionary.add_corpus(CORPUS, source="test")
        assert scheduler.wal.stats().records > 0
        scheduler.save(incremental=False)
        assert scheduler.wal.stats().records == 0
        # Nothing to replay: recovery is pure hydration.
        recovered = PerturbationDictionary(config=CONFIG)
        report = recovered.recover(tmp_path)
        assert report.loaded and report.replayed_records == 0
        _assert_equivalent(dictionary, recovered)

    def test_delta_save_keeps_wal_for_degraded_recovery(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        scheduler, _ = self._scheduler(tmp_path, dictionary)
        scheduler.save(incremental=False)
        dictionary.add_text(LATER[0], source="later")
        scheduler.save()  # delta — must NOT truncate
        assert scheduler.wal.stats().records > 0

    def test_run_now_tasks_and_unknown_task(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        dictionary.add_corpus(CORPUS, source="test")
        scheduler, _ = self._scheduler(tmp_path, dictionary)
        outcome = scheduler.run_now("full_save")
        assert outcome["report"]["incremental"] is False
        from repro.errors import CrypTextError

        with pytest.raises(CrypTextError):
            scheduler.run_now("explode")

    def test_background_thread_starts_and_stops(self, tmp_path):
        dictionary = PerturbationDictionary(config=CONFIG)
        scheduler, _ = self._scheduler(tmp_path, dictionary)
        scheduler.start(poll_interval=0.05)
        assert scheduler.running
        scheduler.stop()
        assert not scheduler.running


class TestCrawlerAutoSave:
    def test_crawler_ticks_scheduler_each_round(self, tmp_path):
        from repro.datasets import build_social_corpus
        from repro.social import SocialPlatform
        from repro.social.crawler import StreamCrawler

        posts = build_social_corpus(num_posts=60, seed=7)
        platform = SocialPlatform("twitter")
        platform.ingest_posts(posts)
        dictionary = PerturbationDictionary(config=CONFIG)
        clock = [0.0]
        scheduler = MaintenanceScheduler(
            dictionary,
            snapshot_dir=tmp_path,
            policy=MaintenancePolicy(autosave_interval=5.0),
            clock=lambda: clock[0],
        )
        crawler = StreamCrawler(
            platform, dictionary, batch_size=20, scheduler=scheduler
        )
        crawler.crawl_once()
        assert not (tmp_path / SNAPSHOT_FILE_NAME).exists()  # not due yet
        clock[0] = 6.0
        crawler.crawl_all()
        assert (tmp_path / SNAPSHOT_FILE_NAME).exists()
        assert scheduler.status()["autosaves"] >= 1
        # Everything the crawler acknowledged survives a crash right now.
        recovered = PerturbationDictionary(config=CONFIG)
        recovered.recover(tmp_path)
        assert recovered.token_counts() == dictionary.token_counts()

    def test_scheduler_must_wrap_same_dictionary(self, tmp_path):
        from repro.errors import CrawlerError
        from repro.social import SocialPlatform
        from repro.social.crawler import StreamCrawler

        other = PerturbationDictionary(config=CONFIG)
        scheduler = MaintenanceScheduler(other, snapshot_dir=tmp_path)
        with pytest.raises(CrawlerError):
            StreamCrawler(
                SocialPlatform("twitter"),
                PerturbationDictionary(config=CONFIG),
                scheduler=scheduler,
            )


class TestServiceSurface:
    @pytest.fixture()
    def service_and_token(self, tmp_path):
        from repro.api.service import CrypTextService

        system = CrypText.from_corpus(CORPUS, config=CONFIG, train_scorer=False)
        scheduler = system.make_maintenance_scheduler(
            snapshot_dir=tmp_path,
            policy=MaintenancePolicy(autosave_interval=None),
        )
        service = CrypTextService(system, scheduler=scheduler)
        token = service.issue_token(
            "ops", scopes={"lookup", "stats", "admin"}
        )
        return service, token.token

    def test_stats_exposes_structured_sections(self, service_and_token):
        service, token = service_and_token
        service.cryptext.look_up("vaccine")
        response = service.stats(token)
        assert response.ok
        compiled = response.body["compiled_cache"]
        for field in ("hits", "misses", "evictions", "invalidations", "hit_rate",
                      "size", "capacity", "families"):
            assert field in compiled
        assert response.body["recovery"] is None
        assert response.body["maintenance"]["policy"]["incremental"] is True

    def test_stats_reports_recovery_after_recover(self, tmp_path):
        from repro.api.service import CrypTextService

        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        dictionary.add_text(LATER[0], source="later")

        system = CrypText.empty(config=CONFIG, seed_lexicon=False)
        system.recover(tmp_path)
        service = CrypTextService(system)
        token = service.issue_token("ops", scopes={"stats"}).token
        body = service.stats(token).body
        assert body["recovery"]["loaded"] is True
        assert body["recovery"]["replayed_records"] > 0

    def test_maintenance_status_and_trigger(self, service_and_token):
        service, token = service_and_token
        status = service.maintenance_status(token)
        assert status.ok and "wal" in status.body["maintenance"]
        outcome = service.maintenance_trigger(token, task="full_save")
        assert outcome.ok
        assert outcome.body["maintenance"]["report"]["incremental"] is False
        bad = service.maintenance_trigger(token, task="explode")
        assert bad.status == 400

    def test_maintenance_requires_admin_scope(self, service_and_token):
        service, _ = service_and_token
        token = service.issue_token("reader", scopes={"stats"}).token
        assert service.maintenance_status(token).status == 403
        assert service.maintenance_trigger(token).status == 403

    def test_maintenance_without_scheduler_conflicts(self):
        from repro.api.service import CrypTextService

        system = CrypText.from_corpus(CORPUS, config=CONFIG, train_scorer=False)
        service = CrypTextService(system)
        token = service.issue_token("ops", scopes={"admin"}).token
        assert service.maintenance_status(token).status == 409
        assert service.maintenance_trigger(token).status == 409

    def test_incremental_snapshot_save_endpoint(self, service_and_token, tmp_path):
        service, token = service_and_token
        service.maintenance_trigger(token, task="full_save")
        service.cryptext.learn_from(["brand new perturbed vacc1nes appear"])
        response = service.snapshot_save(
            token, path=str(tmp_path / SNAPSHOT_FILE_NAME), incremental=True
        )
        assert response.ok
        assert response.body["snapshot"]["incremental"] is True


class TestCli:
    def _build_db(self, tmp_path):
        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        dictionary.add_text(LATER[0], source="later")
        return dictionary

    def test_wal_info(self, tmp_path, capsys):
        from repro.cli import main

        self._build_db(tmp_path)
        assert main(["--json", "wal", "info", "--db", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["wal"]["records"] > 0
        assert payload["chain"]["replay_pending"] > 0

    def test_wal_replay(self, tmp_path, capsys):
        from repro.cli import main

        victim = self._build_db(tmp_path)
        assert main(["--json", "wal", "replay", "--db", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["recovery"]["loaded"] is True
        assert payload["stats"]["total_tokens"] == len(victim.token_counts())

    def test_wal_compact(self, tmp_path, capsys):
        from repro.cli import main

        victim = self._build_db(tmp_path)
        assert main(["--json", "wal", "compact", "--db", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["snapshot"]["incremental"] is False
        # After compaction the snapshot alone carries everything.
        hydrated = PerturbationDictionary(config=CONFIG)
        assert hydrated.load_snapshot(tmp_path / SNAPSHOT_FILE_NAME).loaded
        assert hydrated.token_counts() == victim.token_counts()
        # ...and the WAL was truncated.
        assert ChangeLog.scan(wal_directory_for(tmp_path)).records == 0

    def test_wal_requires_location(self, capsys):
        from repro.cli import main

        assert main(["wal", "info"]) == 2
        assert "wal requires" in capsys.readouterr().err

    def test_db_commands_see_delta_chain_and_wal_tail(self, tmp_path, capsys):
        """One-shot CLI commands must serve the full durable state, not a
        stale base snapshot."""
        from repro.cli import main

        dictionary = _journaled_dictionary(tmp_path)
        dictionary.add_corpus(CORPUS, source="test")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME)
        dictionary.add_token("vaxc1nne", source="delta-word")
        dictionary.save_snapshot(tmp_path / SNAPSHOT_FILE_NAME, incremental=True)
        dictionary.add_token("vaxcc1ne", source="wal-word")  # journaled only
        assert main(["--json", "stats", "--db", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["total_tokens"] == len(dictionary.token_counts())

    def test_snapshot_save_incremental_flag_parses(self, tmp_path, capsys):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["snapshot", "save", "--file", str(tmp_path / "s.json"), "--incremental"]
        )
        assert args.incremental is True
