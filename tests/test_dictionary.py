"""Tests for repro.core.dictionary (the human-written token database)."""

from __future__ import annotations

import pytest

from repro import CrypTextConfig
from repro.core.dictionary import AddOutcome, PerturbationDictionary
from repro.errors import DictionaryError
from tests.conftest import TABLE1_SENTENCES


@pytest.fixture()
def table1_dictionary() -> PerturbationDictionary:
    """Dictionary built from exactly the paper's Table I corpus."""
    return PerturbationDictionary.from_corpus(list(TABLE1_SENTENCES))


class TestTable1:
    """Reproduction of the paper's Table I hash-map H1."""

    def test_three_phonetic_buckets(self, table1_dictionary):
        hashmap = table1_dictionary.hashmap(phonetic_level=1)
        assert len(hashmap) == 3

    def test_the_bucket(self, table1_dictionary):
        hashmap = table1_dictionary.hashmap(phonetic_level=1)
        assert hashmap["TH000"] == {"the", "thee"}

    def test_dirty_bucket(self, table1_dictionary):
        # The paper's example corpus spells the perturbation "dirrty"; the
        # key must match Table I's "DI630" and group it with "dirty".
        hashmap = table1_dictionary.hashmap(phonetic_level=1)
        assert hashmap["DI630"] == {"dirty", "dirrty"}

    def test_republicans_bucket_groups_all_three_spellings(self, table1_dictionary):
        hashmap = table1_dictionary.hashmap(phonetic_level=1)
        key = table1_dictionary.encoder(1).encode("republicans")
        assert hashmap[key] == {"republicans", "repubLIEcans", "republic@@ns"}

    def test_raw_tokens_are_case_sensitive(self, table1_dictionary):
        assert "repubLIEcans" in table1_dictionary
        assert "republiecans" not in table1_dictionary


class TestAddToken:
    def test_add_and_count(self):
        dictionary = PerturbationDictionary()
        assert dictionary.add_token("vacc1ne")
        assert dictionary.add_token("vacc1ne")
        entry = dictionary.entry("vacc1ne")
        assert entry is not None
        assert entry.count == 2

    def test_add_with_sources(self):
        dictionary = PerturbationDictionary()
        dictionary.add_token("vacc1ne", source="twitter")
        dictionary.add_token("vacc1ne", source="reddit")
        dictionary.add_token("vacc1ne", source="twitter")
        entry = dictionary.entry("vacc1ne")
        assert set(entry.sources) == {"twitter", "reddit"}

    def test_unencodable_token_skipped(self):
        dictionary = PerturbationDictionary()
        assert not dictionary.add_token("???")
        assert len(dictionary) == 0

    def test_invalid_count_rejected(self):
        with pytest.raises(DictionaryError):
            PerturbationDictionary().add_token("vaccine", count=0)

    def test_is_word_flag(self):
        dictionary = PerturbationDictionary()
        dictionary.add_token("vaccine")
        dictionary.add_token("vacc1ne")
        assert dictionary.entry("vaccine").is_word
        assert not dictionary.entry("vacc1ne").is_word

    def test_outcome_distinguishes_insert_from_update(self):
        dictionary = PerturbationDictionary()
        assert dictionary.add_token("vacc1ne") is AddOutcome.INSERTED
        assert dictionary.add_token("vacc1ne") is AddOutcome.UPDATED
        assert dictionary.add_token("???") is AddOutcome.SKIPPED
        # Truthiness is preserved for the existing boolean call sites.
        assert AddOutcome.INSERTED and AddOutcome.UPDATED and not AddOutcome.SKIPPED

    def test_entry_keys_cover_all_levels(self):
        dictionary = PerturbationDictionary()
        dictionary.add_token("vaccine")
        entry = dictionary.entry("vaccine")
        assert set(entry.keys) == {"k0", "k1", "k2"}
        assert entry.key_at(1) == dictionary.encoder(1).encode("vaccine")
        assert entry.key_at(9) is None


class TestCorpusConstruction:
    def test_add_text_tokenizes(self):
        dictionary = PerturbationDictionary()
        added = dictionary.add_text("the demokrats hate the vacc1ne")
        assert added == 5
        assert "demokrats" in dictionary
        assert "vacc1ne" in dictionary

    def test_add_corpus_counts_duplicates(self):
        dictionary = PerturbationDictionary()
        dictionary.add_corpus(["the the the", "the vaccine"])
        assert dictionary.entry("the").count == 4

    def test_mentions_and_urls_excluded(self):
        dictionary = PerturbationDictionary()
        dictionary.add_text("@user shares https://example.com about vaccine")
        assert "@user" not in dictionary
        assert "vaccine" in dictionary

    def test_seed_lexicon_adds_english_words(self):
        dictionary = PerturbationDictionary()
        added = dictionary.seed_lexicon(words=["vaccine", "democrats"])
        assert added == 2
        assert dictionary.entry("vaccine").is_word

    def test_seed_lexicon_counts_only_new_insertions(self):
        dictionary = PerturbationDictionary()
        dictionary.add_token("vaccine", source="corpus")
        # "vaccine" already exists, so only "democrats" is an actual add.
        assert dictionary.seed_lexicon(words=["vaccine", "democrats"]) == 1
        # Re-seeding adds nothing — every word only gets a count bump.
        assert dictionary.seed_lexicon(words=["vaccine", "democrats"]) == 0

    def test_from_corpus_factory(self):
        dictionary = PerturbationDictionary.from_corpus(
            ["the vaccine mandate"], seed_lexicon=False, source="unit"
        )
        assert "mandate" in dictionary
        assert dictionary.entry("mandate").sources == ("unit",)


class TestBucketQueries:
    def test_bucket_for_token_contains_perturbations(self, table1_dictionary):
        bucket = {entry.token for entry in table1_dictionary.bucket_for_token("republicans")}
        assert bucket == {"republicans", "repubLIEcans", "republic@@ns"}

    def test_bucket_for_unencodable_token_is_empty(self, table1_dictionary):
        assert table1_dictionary.bucket_for_token("???") == []

    def test_tokens_for_unknown_key_is_empty(self, table1_dictionary):
        assert table1_dictionary.tokens_for_key("ZZ999") == []

    def test_unmaterialized_level_rejected(self, table1_dictionary):
        with pytest.raises(DictionaryError):
            table1_dictionary.tokens_for_key("TH000", phonetic_level=7)
        with pytest.raises(DictionaryError):
            table1_dictionary.hashmap(phonetic_level=7)
        with pytest.raises(DictionaryError):
            table1_dictionary.encoder(7)

    def test_english_words_for_key(self):
        dictionary = PerturbationDictionary.from_corpus(
            ["the demokrats and democrats"], seed_lexicon=False
        )
        key = dictionary.encoder(1).encode("democrats")
        english = {entry.token for entry in dictionary.english_words_for_key(key)}
        assert english == {"democrats"}

    def test_respects_config_max_level(self):
        config = CrypTextConfig(phonetic_level=0, max_phonetic_level=0)
        dictionary = PerturbationDictionary(config=config)
        dictionary.add_token("vaccine")
        assert dictionary.phonetic_levels == (0,)
        with pytest.raises(DictionaryError):
            dictionary.tokens_for_key("VA250", phonetic_level=1)


class TestCompiledBucketLRU:
    def test_hot_bucket_survives_cold_sweep(self):
        config = CrypTextConfig(cache_max_entries=2)
        dictionary = PerturbationDictionary.from_corpus(
            ["the vaccine mandate"], config=config
        )
        encoder = dictionary.encoder(1)
        k_the, k_vac, k_man = (
            encoder.encode(word) for word in ("the", "vaccine", "mandate")
        )
        hot = dictionary.compiled_bucket(k_the)
        dictionary.compiled_bucket(k_vac)
        # A cache hit refreshes recency, so overflowing the capacity evicts
        # the cold "vaccine" bucket, not the hot "the" bucket (under the old
        # FIFO guard the oldest *insertion* — the hot bucket — was evicted).
        assert dictionary.compiled_bucket(k_the) is hot
        dictionary.compiled_bucket(k_man)
        assert dictionary.compiled_bucket(k_the) is hot
        assert set(dictionary._compiled) == {(1, k_the), (1, k_man)}

    def test_eviction_does_not_affect_correctness(self):
        config = CrypTextConfig(cache_max_entries=1)
        dictionary = PerturbationDictionary.from_corpus(
            ["the vaccine mandate"], config=config
        )
        encoder = dictionary.encoder(1)
        for word in ("the", "vaccine", "mandate", "the", "vaccine"):
            bucket = dictionary.compiled_bucket(encoder.encode(word))
            assert word in {entry.token for entry in bucket}
            assert len(dictionary._compiled) <= 1


class TestStats:
    def test_stats_counts(self, table1_dictionary):
        stats = table1_dictionary.stats()
        assert stats.total_tokens == 7  # the, thee, dirty, dirrrty, 3x republicans forms
        assert stats.total_occurrences == 9  # 3 sentences x 3 tokens
        assert stats.unique_keys[1] == 3
        assert stats.perturbation_tokens + stats.lexicon_tokens == stats.total_tokens

    def test_tokens_per_key_ratio(self, table1_dictionary):
        stats = table1_dictionary.stats()
        assert stats.tokens_per_key[1] == pytest.approx(7 / 3)

    def test_stats_serialization(self, table1_dictionary):
        payload = table1_dictionary.stats().to_dict()
        assert payload["total_tokens"] == 7
        assert payload["unique_keys"]["1"] == 3

    def test_token_counts_mapping(self, table1_dictionary):
        counts = table1_dictionary.token_counts()
        assert counts["the"] == 2
        assert counts["dirty"] == 2

    def test_iter_entries_matches_len(self, table1_dictionary):
        assert len(list(table1_dictionary.iter_entries())) == len(table1_dictionary)
