"""Tests for repro.metrics.classification."""

from __future__ import annotations

import pytest

from repro.errors import CrypTextError
from repro.metrics import (
    ConfusionMatrix,
    accuracy,
    classification_report,
    macro_f1,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy(["a", "b"], ["a", "b"]) == 1.0

    def test_partial(self):
        assert accuracy(["a", "b", "a", "b"], ["a", "a", "a", "b"]) == 0.75

    def test_all_wrong(self):
        assert accuracy(["a", "a"], ["b", "b"]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(CrypTextError):
            accuracy(["a"], ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(CrypTextError):
            accuracy([], [])


class TestPrecisionRecallF1:
    def test_known_values(self):
        y_true = ["toxic", "toxic", "nontoxic", "nontoxic", "toxic"]
        y_pred = ["toxic", "nontoxic", "nontoxic", "toxic", "toxic"]
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, "toxic")
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(2 / 3)
        assert f1 == pytest.approx(2 / 3)

    def test_no_predicted_positives(self):
        precision, recall, f1 = precision_recall_f1(
            ["toxic", "nontoxic"], ["nontoxic", "nontoxic"], "toxic"
        )
        assert precision == 0.0 and recall == 0.0 and f1 == 0.0

    def test_no_actual_positives(self):
        precision, recall, f1 = precision_recall_f1(
            ["nontoxic", "nontoxic"], ["toxic", "nontoxic"], "toxic"
        )
        assert recall == 0.0 and f1 == 0.0

    def test_perfect_class(self):
        precision, recall, f1 = precision_recall_f1(["a", "b"], ["a", "b"], "a")
        assert (precision, recall, f1) == (1.0, 1.0, 1.0)


class TestMacroF1AndReport:
    def test_macro_f1_perfect(self):
        assert macro_f1(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_macro_f1_between_zero_and_one(self):
        value = macro_f1(["a", "b", "a", "b"], ["a", "a", "b", "b"])
        assert 0.0 <= value <= 1.0

    def test_report_structure(self):
        report = classification_report(["a", "b", "a"], ["a", "b", "b"])
        assert set(report) == {"accuracy", "macro_f1", "per_class"}
        assert set(report["per_class"]) == {"a", "b"}
        assert report["per_class"]["a"]["support"] == 2

    def test_report_accuracy_matches_function(self):
        y_true = ["a", "b", "a", "c"]
        y_pred = ["a", "b", "c", "c"]
        assert classification_report(y_true, y_pred)["accuracy"] == accuracy(y_true, y_pred)


class TestConfusionMatrix:
    def test_counts(self):
        matrix = ConfusionMatrix.from_labels(["a", "a", "b"], ["a", "b", "b"])
        assert matrix.count("a", "a") == 1
        assert matrix.count("a", "b") == 1
        assert matrix.count("b", "b") == 1
        assert matrix.count("b", "a") == 0

    def test_support_and_predicted(self):
        matrix = ConfusionMatrix.from_labels(["a", "a", "b"], ["a", "b", "b"])
        assert matrix.support("a") == 2
        assert matrix.predicted("b") == 2

    def test_as_table_shape(self):
        matrix = ConfusionMatrix.from_labels(["a", "b", "c"], ["a", "b", "c"])
        table = matrix.as_table()
        assert len(table) == 3
        assert all(len(row) == 3 for row in table)
        assert sum(sum(row) for row in table) == 3

    def test_labels_union_of_true_and_predicted(self):
        matrix = ConfusionMatrix.from_labels(["a"], ["b"])
        assert set(matrix.labels) == {"a", "b"}
