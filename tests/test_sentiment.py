"""Tests for repro.sentiment."""

from __future__ import annotations

import pytest

from repro.sentiment import SentimentAnalyzer
from repro.sentiment.lexicon import POLARITY_LEXICON


class TestPolarityBasics:
    def test_positive_text(self):
        analyzer = SentimentAnalyzer()
        assert analyzer.label("i love this wonderful amazing community") == "positive"

    def test_negative_text(self):
        analyzer = SentimentAnalyzer()
        assert analyzer.label("i hate these corrupt lying politicians") == "negative"

    def test_neutral_text(self):
        analyzer = SentimentAnalyzer()
        assert analyzer.label("the committee meets on monday morning") == "neutral"

    def test_compound_bounds(self):
        analyzer = SentimentAnalyzer()
        for text in (
            "love love love love",
            "hate hate hate hate hate",
            "table chair window",
            "",
        ):
            assert -1.0 <= analyzer.compound(text) <= 1.0

    def test_empty_text_is_neutral(self):
        analyzer = SentimentAnalyzer()
        assert analyzer.label("") == "neutral"
        assert analyzer.compound("") == 0.0

    def test_result_fields(self):
        result = SentimentAnalyzer().polarity("i love this but hate that")
        assert result.positive_hits >= 1
        assert result.negative_hits >= 1
        assert result.label in ("negative", "neutral", "positive")
        payload = result.to_dict()
        assert payload["label"] == result.label


class TestRules:
    def test_negation_flips_polarity(self):
        analyzer = SentimentAnalyzer()
        positive = analyzer.compound("the vaccine is safe")
        negated = analyzer.compound("the vaccine is not safe")
        assert positive > 0
        assert negated < positive
        assert negated < 0

    def test_intensifier_amplifies(self):
        analyzer = SentimentAnalyzer()
        plain = analyzer.compound("this policy is bad")
        intense = analyzer.compound("this policy is extremely bad")
        assert intense < plain  # more negative

    def test_diminisher_softens(self):
        analyzer = SentimentAnalyzer()
        plain = analyzer.compound("this policy is bad")
        softened = analyzer.compound("this policy is slightly bad")
        assert softened > plain

    def test_all_caps_emphasis(self):
        analyzer = SentimentAnalyzer()
        plain = analyzer.compound("these politicians are liars")
        shouted = analyzer.compound("these politicians are LIARS")
        assert shouted < plain

    def test_exclamation_emphasis(self):
        analyzer = SentimentAnalyzer()
        plain = analyzer.compound("i hate this policy")
        emphatic = analyzer.compound("i hate this policy!!!")
        assert emphatic <= plain


class TestPerturbationSensitivity:
    def test_perturbed_keyword_escapes_lexicon(self):
        # The core phenomenon the paper exploits: "h4te" is invisible to a
        # dictionary-based system until it is normalized.
        analyzer = SentimentAnalyzer()
        clean = analyzer.compound("i hate these corrupt politicians")
        perturbed = analyzer.compound("i h4te these c0rrupt politicians")
        assert clean < perturbed  # perturbed looks less negative

    def test_normalizer_hook_restores_signal(self, cryptext_small):
        plain = SentimentAnalyzer()
        robust = SentimentAnalyzer(
            normalizer=lambda text: cryptext_small.normalize(text).normalized_text
        )
        perturbed_text = "the demokrats are liars and frauds"
        assert robust.compound(perturbed_text) <= plain.compound(perturbed_text)


class TestAggregates:
    def test_negative_share(self):
        analyzer = SentimentAnalyzer()
        texts = [
            "i hate this corrupt government",
            "what a wonderful beautiful day",
            "these liars destroy everything",
            "the meeting is at noon",
        ]
        share = analyzer.negative_share(texts)
        assert share == pytest.approx(0.5)

    def test_negative_share_empty(self):
        assert SentimentAnalyzer().negative_share([]) == 0.0

    def test_score_many(self):
        results = SentimentAnalyzer().score_many(["i love it", "i hate it"])
        assert [result.label for result in results] == ["positive", "negative"]

    def test_custom_lexicon(self):
        analyzer = SentimentAnalyzer(lexicon={"blorp": 3.0})
        assert analyzer.label("blorp blorp") == "positive"
        assert analyzer.label("i hate this") == "neutral"  # not in custom lexicon


class TestLexiconContents:
    def test_scores_in_vader_range(self):
        assert all(-4.0 <= score <= 4.0 for score in POLARITY_LEXICON.values())

    def test_keys_are_lowercase(self):
        assert all(word == word.lower() for word in POLARITY_LEXICON)

    def test_paper_topics_covered(self):
        for word in ("hate", "liar", "corrupt", "fraud", "hoax", "mandate", "suicide"):
            assert word in POLARITY_LEXICON
