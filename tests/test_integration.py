"""End-to-end integration tests across subsystems.

These tests exercise the full pipelines the paper describes: corpus ->
dictionary -> Look Up / Normalization / Perturbation, the crawler loop, the
keyword-enrichment study, the Figure-4 robustness sweep, and the service
layer on top of everything.
"""

from __future__ import annotations

import pytest

from repro import CrypText
from repro.api import CrypTextService
from repro.classifiers import RobustnessEvaluator, SimulatedToxicityAPI
from repro.datasets import build_classification_dataset, build_perturbation_pairs
from repro.social import SocialListener, SocialPlatform, StreamCrawler
from repro.storage import dump_collection, load_collection
from repro.viz import build_benchmark_page, build_timeline_chart, build_word_cloud


class TestCorpusToLookupPipeline:
    def test_wild_perturbations_are_discoverable(self, cryptext_synthetic, synthetic_posts):
        # Every perturbation injected into the synthetic corpus was "observed
        # in the wild"; Look Up must rediscover a large share of them from
        # their original keyword.
        pairs = [
            (original, perturbed)
            for post in synthetic_posts
            for original, perturbed in post.perturbed_pairs
        ]
        sampled = pairs[:200]
        assert sampled
        found = 0
        for original, perturbed in sampled:
            tokens = cryptext_synthetic.look_up(original.lower()).tokens
            if perturbed in tokens:
                found += 1
        assert found / len(sampled) >= 0.5

    def test_lookup_perturbations_normalize_back(self, cryptext_synthetic):
        result = cryptext_synthetic.look_up("vaccine")
        for match in result.perturbations[:10]:
            normalized = cryptext_synthetic.normalize(f"stop the {match.token} mandate")
            assert "vaccine" in normalized.normalized_text.lower()


class TestCrawlerLoop:
    def test_crawl_then_lookup_then_listen(self, synthetic_posts):
        platform = SocialPlatform("twitter")
        platform.ingest_posts(synthetic_posts)
        system = CrypText.empty()
        crawler = StreamCrawler(platform, system.dictionary, batch_size=150)
        reports = crawler.crawl_all()
        assert len(reports) >= 2
        if system.cache is not None:
            system.cache.clear()
        perturbations = system.look_up("vaccine").perturbation_tokens()
        assert perturbations
        listener = system.social_listener(platform)
        usage = listener.monitor_keyword("vaccine")
        assert usage.total_posts > 0
        chart = build_timeline_chart(usage)
        assert chart["labels"]


class TestKeywordEnrichmentStudy:
    def test_enrichment_direction_matches_paper(self, cryptext_synthetic, twitter_platform):
        # §III-B: for every controversial keyword the enriched query set
        # surfaces at least as much content and a more negative slice of it.
        listener = SocialListener(twitter_platform, cryptext_synthetic.lookup_engine)
        gains = []
        for keyword in ("democrats", "republicans", "vaccine"):
            comparison = listener.keyword_enrichment_comparison(keyword)
            assert comparison["enriched_matches"] >= comparison["plain_matches"]
            gains.append(comparison["negative_share_gain"])
        # the aggregate effect is positive even if a single keyword ties
        assert sum(gains) > 0


class TestRobustnessSweep:
    def test_figure4_shape(self, cryptext_synthetic):
        texts, labels = build_classification_dataset("toxicity", num_samples=360, seed=23)
        api = SimulatedToxicityAPI().train(texts[:260], labels[:260])
        evaluator = RobustnessEvaluator(
            lambda text, ratio: cryptext_synthetic.perturb(text, ratio=ratio).perturbed_text,
            ratios=(0.0, 0.25, 0.5),
        )
        points = evaluator.evaluate(api, texts[260:], labels[260:])
        by_ratio = {point.ratio: point.accuracy for point in points}
        assert by_ratio[0.0] >= by_ratio[0.25] >= by_ratio[0.5] - 1e-9
        page = build_benchmark_page({"perspective_toxicity": points})
        assert len(page["rows"]) == 3


class TestPersistenceRoundTrip:
    def test_dictionary_survives_dump_and_reload(self, cryptext_small, tmp_path):
        path = tmp_path / "tokens.jsonl"
        dump_collection(cryptext_small.dictionary.collection, path)
        rebuilt = CrypText.empty(seed_lexicon=False)
        load_collection(rebuilt.dictionary.collection, path)
        original = cryptext_small.look_up("republicans").tokens
        restored = rebuilt.look_up("republicans").tokens
        assert set(original) == set(restored)


class TestServiceLayerEndToEnd:
    def test_full_api_session(self, cryptext_synthetic, twitter_platform):
        service = CrypTextService(cryptext_synthetic, platform=twitter_platform)
        token = service.issue_token("integration").token
        lookup = service.lookup(token, ["democrats", "vaccine"])
        normalize = service.normalize(token, ["the demokrats push the vacc1ne"])
        perturb = service.perturb(token, ["the democrats support the vaccine"], ratio=0.5)
        listen = service.listen(token, ["vaccine"])
        stats = service.stats(token)
        assert all(response.ok for response in (lookup, normalize, perturb, listen, stats))
        assert stats.body["stats"]["total_tokens"] > 0

    def test_word_cloud_from_service_results(self, cryptext_synthetic):
        result = cryptext_synthetic.look_up("democrats")
        cloud = build_word_cloud(result)
        assert cloud


class TestNormalizationRecoversInjectedPerturbations:
    def test_ground_truth_pairs_recall(self):
        # A lexicon-only system (no observed corpus, no trained scorer) must
        # still de-perturb a solid share of ground-truth human perturbations:
        # candidates come from the seeded English lexicon alone.
        system = CrypText.empty()
        pairs = build_perturbation_pairs(num_pairs=60, seed=17)
        recovered = 0
        for original, perturbed, _strategy in pairs:
            normalized = system.normalize(f"they talk about {perturbed} online")
            if original.lower() in normalized.normalized_text.lower():
                recovered += 1
        assert recovered / len(pairs) >= 0.5
