"""Tests for repro.storage.persistence (JSONL dump/load)."""

from __future__ import annotations

import pytest

from repro.errors import PersistenceError
from repro.storage import (
    Collection,
    DocumentStore,
    dump_collection,
    dump_store,
    iter_jsonl,
    load_collection,
    load_store,
)


@pytest.fixture()
def sample_collection() -> Collection:
    collection = Collection("tokens")
    collection.insert_many(
        [
            {"token": "democrats", "count": 3, "keys": {"k1": "DE52632"}},
            {"token": "dem0cr@ts", "count": 1, "keys": {"k1": "DE52632"}},
            {"token": "vaccine", "count": 5, "keys": {"k1": "VA250"}},
        ]
    )
    return collection


class TestDumpLoadCollection:
    def test_round_trip(self, sample_collection, tmp_path):
        path = tmp_path / "tokens.jsonl"
        written = dump_collection(sample_collection, path)
        assert written == 3
        restored = Collection("tokens")
        loaded = load_collection(restored, path)
        assert loaded == 3
        assert {doc["token"] for doc in restored} == {"democrats", "dem0cr@ts", "vaccine"}

    def test_round_trip_preserves_unicode(self, tmp_path):
        collection = Collection("c")
        collection.insert_one({"token": "ḋemocrāts", "note": "ünïcode"})
        path = tmp_path / "c.jsonl"
        dump_collection(collection, path)
        restored = Collection("c")
        load_collection(restored, path)
        assert restored.find_one({"token": "ḋemocrāts"})["note"] == "ünïcode"

    def test_load_replaces_by_default(self, sample_collection, tmp_path):
        path = tmp_path / "tokens.jsonl"
        dump_collection(sample_collection, path)
        target = Collection("tokens")
        target.insert_one({"token": "stale", "_id": "old"})
        load_collection(target, path)
        assert target.find_one({"token": "stale"}) is None

    def test_load_merge_mode(self, sample_collection, tmp_path):
        path = tmp_path / "tokens.jsonl"
        dump_collection(sample_collection, path)
        target = Collection("tokens")
        target.insert_one({"token": "kept", "_id": "keep-me"})
        load_collection(target, path, clear=False)
        assert target.find_one({"token": "kept"}) is not None
        assert len(target) == 4

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_collection(Collection("c"), tmp_path / "missing.jsonl")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_collection(Collection("c"), path)

    def test_load_non_object_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(PersistenceError):
            load_collection(Collection("c"), path)

    def test_dump_creates_parent_directories(self, sample_collection, tmp_path):
        nested = tmp_path / "a" / "b" / "tokens.jsonl"
        dump_collection(sample_collection, nested)
        assert nested.exists()

    def test_dump_unserializable_value(self, tmp_path):
        collection = Collection("c")
        collection.insert_one({"bad": object()})
        with pytest.raises(PersistenceError):
            dump_collection(collection, tmp_path / "c.jsonl")


class TestStoreLevel:
    def test_dump_and_load_store(self, tmp_path):
        store = DocumentStore("db")
        store["tokens"].insert_many([{"a": 1}, {"a": 2}])
        store["posts"].insert_one({"text": "hello"})
        written = dump_store(store, tmp_path)
        assert written == {"posts": 1, "tokens": 2}
        restored = DocumentStore("db2")
        loaded = load_store(restored, tmp_path)
        assert loaded == {"posts": 1, "tokens": 2}
        assert len(restored["tokens"]) == 2

    def test_load_store_missing_directory(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_store(DocumentStore(), tmp_path / "nowhere")

    def test_iter_jsonl(self, sample_collection, tmp_path):
        path = tmp_path / "tokens.jsonl"
        dump_collection(sample_collection, path)
        documents = list(iter_jsonl(path))
        assert len(documents) == 3
        assert all(isinstance(document, dict) for document in documents)

    def test_iter_jsonl_missing(self, tmp_path):
        with pytest.raises(PersistenceError):
            list(iter_jsonl(tmp_path / "missing.jsonl"))


class TestDictionaryPersistence:
    def test_dictionary_collection_round_trip(self, tmp_path, small_corpus):
        from repro.core.dictionary import PerturbationDictionary

        dictionary = PerturbationDictionary.from_corpus(small_corpus)
        path = tmp_path / "dictionary.jsonl"
        dump_collection(dictionary.collection, path)
        fresh = PerturbationDictionary()
        load_collection(fresh.collection, path)
        assert len(fresh) == len(dictionary)
        assert {e.token for e in fresh.bucket_for_token("republicans")} == {
            e.token for e in dictionary.bucket_for_token("republicans")
        }
