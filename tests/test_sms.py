"""Tests for repro.core.sms (the SMS perturbation property)."""

from __future__ import annotations

from repro import CrypTextConfig
from repro.core.sms import SMSCheck


class TestPaperExamples:
    def test_demokrats_is_perturbation_of_democrats(self):
        check = SMSCheck()
        result = check.evaluate("democrats", "demokRATs")
        assert result.same_sound
        assert result.different_spelling
        assert result.edit_distance is not None
        assert result.is_perturbation

    def test_republiecans_is_perturbation(self):
        assert SMSCheck().is_perturbation("republicans", "repubLIEcans")

    def test_leet_democrats(self):
        assert SMSCheck().is_perturbation("democrats", "dem0cr@ts")

    def test_identical_spelling_is_not_a_perturbation(self):
        result = SMSCheck().evaluate("democrats", "democrats")
        assert not result.is_perturbation
        assert not result.different_spelling

    def test_unrelated_word_is_not_a_perturbation(self):
        result = SMSCheck().evaluate("democrats", "elephants")
        assert not result.is_perturbation

    def test_case_change_counts_as_different_spelling(self):
        # Emphasis capitalization is itself a perturbation (paper §II-C).
        result = SMSCheck().evaluate("democrats", "democRATs")
        assert result.different_spelling
        assert result.is_perturbation


class TestHyperParameters:
    def test_edit_distance_bound_rejects_far_tokens(self):
        tight = SMSCheck(max_edit_distance=1)
        loose = SMSCheck(max_edit_distance=4)
        # four repeated characters -> distance 4 from the original
        assert not tight.is_perturbation("porn", "porrrrn")
        assert loose.is_perturbation("porn", "porrrrn")

    def test_phonetic_level_changes_sound_matching(self):
        level0 = SMSCheck(phonetic_level=0)
        level1 = SMSCheck(phonetic_level=1)
        # "losbian" only matches "lesbian" at level 0 (paper's motivation for k).
        assert level0.evaluate("lesbian", "losbian").same_sound
        assert not level1.evaluate("lesbian", "losbian").same_sound

    def test_transposition_mode_changes_distance(self):
        plain = SMSCheck(max_edit_distance=1, use_transpositions=False)
        osa = SMSCheck(max_edit_distance=1, use_transpositions=True)
        # A swap costs two plain edits but one OSA edit.
        assert plain.evaluate("democrats", "demorcats").edit_distance is None
        assert osa.evaluate("democrats", "demorcats").edit_distance == 1

    def test_transposition_mode_changes_verdict_when_sound_matches(self):
        # "mandaet" swaps two characters yet keeps the Soundex encoding.
        plain = SMSCheck(max_edit_distance=1, use_transpositions=False)
        osa = SMSCheck(max_edit_distance=1, use_transpositions=True)
        assert not plain.is_perturbation("mandate", "mandaet")
        assert osa.is_perturbation("mandate", "mandaet")

    def test_raw_spelling_comparison_mode(self):
        canonical = SMSCheck(compare_canonical=True, max_edit_distance=0)
        raw = SMSCheck(compare_canonical=False, max_edit_distance=0)
        # canonically, dem0cr@ts == democrats (distance 0); raw they differ.
        assert canonical.evaluate("democrats", "dem0cr@ts").edit_distance == 0
        assert raw.evaluate("democrats", "dem0cr@ts").edit_distance is None


class TestFromConfig:
    def test_consumes_k_d_and_distance_policy(self):
        config = CrypTextConfig(
            phonetic_level=0, edit_distance=1, use_transpositions=True
        )
        check = SMSCheck.from_config(config)
        assert check.phonetic_level == 0
        assert check.max_edit_distance == 1
        assert check.use_transpositions
        # The config-driven policy certifies the swap the default would not.
        assert check.is_perturbation("the", "teh")
        assert not SMSCheck.from_config(
            config.with_overrides(use_transpositions=False)
        ).is_perturbation("the", "teh")


class TestHelpers:
    def test_filter_perturbations(self):
        check = SMSCheck()
        candidates = ["demokrats", "democrats", "dem0crats", "elephants", "republic"]
        kept = check.filter_perturbations("democrats", candidates)
        assert "demokrats" in kept
        assert "dem0crats" in kept
        assert "democrats" not in kept  # identical spelling
        assert "elephants" not in kept

    def test_explain_mentions_verdict(self):
        result = SMSCheck().evaluate("democrats", "demokrats")
        text = result.explain()
        assert "perturbation" in text
        assert "demokrats" in text

    def test_explain_for_rejected_pair(self):
        result = SMSCheck().evaluate("democrats", "elephants")
        assert "not a perturbation" in result.explain()

    def test_unencodable_candidate_is_not_a_perturbation(self):
        assert not SMSCheck().is_perturbation("democrats", "!!!")
