"""Tests for repro.social.crawler (dictionary enrichment from the stream)."""

from __future__ import annotations

import pytest

from repro import CrypText
from repro.core.dictionary import PerturbationDictionary
from repro.errors import CrawlerError
from repro.social import SocialPlatform, StreamCrawler


@pytest.fixture()
def small_platform() -> SocialPlatform:
    platform = SocialPlatform("twitter")
    platform.ingest_raw("the demokrats push their agenda", "2021-11-01")
    platform.ingest_raw("stop the vacc1ne mandate", "2021-11-02")
    platform.ingest_raw("the dem0cr@ts and repubLIEcans argue", "2021-11-03")
    platform.ingest_raw("i love my quiet garden", "2021-11-04")
    return platform


class TestCrawlRounds:
    def test_crawl_once_ingests_one_batch(self, small_platform):
        dictionary = PerturbationDictionary()
        crawler = StreamCrawler(small_platform, dictionary, batch_size=2)
        report = crawler.crawl_once()
        assert report is not None
        assert report.posts_processed == 2
        assert report.round_index == 1
        assert crawler.cursor == 2
        assert "demokrats" in dictionary

    def test_crawl_all_consumes_stream(self, small_platform):
        dictionary = PerturbationDictionary()
        crawler = StreamCrawler(small_platform, dictionary, batch_size=2)
        reports = crawler.crawl_all()
        assert len(reports) == 2
        assert crawler.crawl_once() is None  # exhausted
        assert "vacc1ne" in dictionary
        assert "repubLIEcans" in dictionary

    def test_max_rounds_limit(self, small_platform):
        crawler = StreamCrawler(small_platform, PerturbationDictionary(), batch_size=1)
        reports = crawler.crawl_all(max_rounds=2)
        assert len(reports) == 2
        assert crawler.rounds_completed == 2

    def test_dictionary_grows_monotonically(self, small_platform):
        crawler = StreamCrawler(small_platform, PerturbationDictionary(), batch_size=1)
        sizes = [report.dictionary_size for report in crawler.crawl_all()]
        assert sizes == sorted(sizes)

    def test_new_tokens_reported(self, small_platform):
        crawler = StreamCrawler(small_platform, PerturbationDictionary(), batch_size=4)
        report = crawler.crawl_once()
        assert report.new_tokens == report.dictionary_size
        assert report.new_keys == report.unique_keys
        assert report.tokens_seen >= report.new_tokens

    def test_source_label_recorded(self, small_platform):
        dictionary = PerturbationDictionary()
        StreamCrawler(small_platform, dictionary, batch_size=4).crawl_once()
        assert "twitter_stream" in dictionary.entry("demokrats").sources

    def test_history_accumulates(self, small_platform):
        crawler = StreamCrawler(small_platform, PerturbationDictionary(), batch_size=2)
        crawler.crawl_all()
        assert len(crawler.history) == 2
        assert crawler.history[0].to_dict()["round_index"] == 1

    def test_invalid_batch_size(self, small_platform):
        with pytest.raises(CrawlerError):
            StreamCrawler(small_platform, PerturbationDictionary(), batch_size=0)


class TestCrawlerWithCrypText:
    def test_crawled_tokens_become_lookupable(self, small_platform):
        system = CrypText.empty()
        crawler = StreamCrawler(small_platform, system.dictionary, batch_size=10)
        assert "demokrats" not in system.look_up("democrats").perturbation_tokens()
        crawler.crawl_all()
        if system.cache is not None:
            system.cache.clear()
        assert "demokrats" in system.look_up("democrats").perturbation_tokens()

    def test_crawler_on_synthetic_corpus_scale(self, twitter_platform):
        dictionary = PerturbationDictionary()
        crawler = StreamCrawler(twitter_platform, dictionary, batch_size=100)
        reports = crawler.crawl_all()
        assert reports
        stats = dictionary.stats()
        # tokens always outnumber distinct phonetic keys (paper: 2M vs 400K)
        assert stats.total_tokens >= stats.unique_keys[1]
        assert stats.perturbation_tokens > 0
