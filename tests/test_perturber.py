"""Tests for repro.core.perturber (the Perturbation function, §III-D)."""

from __future__ import annotations

import random

import pytest

from repro import CrypText, CrypTextConfig
from repro.core.perturber import Perturber
from repro.errors import CrypTextError
from repro.text.wordlist import default_lexicon


class TestRatioSemantics:
    def test_zero_ratio_returns_original(self, cryptext_small):
        text = "the democrats support the vaccine mandate"
        outcome = cryptext_small.perturb(text, ratio=0.0)
        assert outcome.perturbed_text == text
        assert outcome.replacements == ()
        assert outcome.requested_replacements == 0

    def test_requested_count_matches_ceiling(self, cryptext_small):
        text = "the democrats support the vaccine mandate"  # 6 word tokens
        outcome = cryptext_small.perturb(text, ratio=0.25)
        assert outcome.requested_replacements == 2  # ceil(0.25 * 6)

    def test_replacement_count_bounded_by_request(self, cryptext_synthetic):
        text = "the democrats and republicans debate the vaccine mandate online"
        for ratio in (0.15, 0.25, 0.5, 1.0):
            outcome = cryptext_synthetic.perturb(text, ratio=ratio)
            assert len(outcome.replacements) <= outcome.requested_replacements

    def test_higher_ratio_perturbs_at_least_as_many(self, cryptext_synthetic):
        text = "the democrats and republicans debate the vaccine mandate online"
        low = cryptext_synthetic.perturber.perturb(text, ratio=0.15)
        high = cryptext_synthetic.perturber.perturb(text, ratio=1.0)
        assert len(high.replacements) >= len(low.replacements)

    def test_invalid_ratio_rejected(self, cryptext_small):
        with pytest.raises(CrypTextError):
            cryptext_small.perturb("some text here", ratio=1.5)

    def test_empty_text(self, cryptext_small):
        outcome = cryptext_small.perturb("", ratio=0.5)
        assert outcome.perturbed_text == ""
        assert outcome.replacements == ()


class TestReplacementQuality:
    def test_replacements_come_from_dictionary(self, cryptext_small):
        outcome = cryptext_small.perturb(
            "the democrats support the vaccine mandate", ratio=1.0
        )
        for replacement in outcome.replacements:
            assert replacement.perturbed in cryptext_small.dictionary

    def test_replacements_differ_from_originals(self, cryptext_synthetic):
        outcome = cryptext_synthetic.perturb(
            "the democrats and republicans debate the vaccine", ratio=1.0
        )
        for replacement in outcome.replacements:
            assert replacement.perturbed != replacement.original

    def test_word_targets_excluded_by_default(self, cryptext_synthetic):
        lexicon = default_lexicon()
        outcome = cryptext_synthetic.perturb(
            "the democrats and republicans debate the vaccine mandate", ratio=1.0
        )
        for replacement in outcome.replacements:
            assert replacement.perturbed.lower() not in lexicon or (
                replacement.perturbed.lower() == replacement.original.lower()
            )

    def test_word_targets_allowed_when_requested(self, cryptext_synthetic):
        outcome = cryptext_synthetic.perturber.perturb(
            "the democrats and republicans debate the vaccine mandate",
            ratio=1.0,
            allow_word_targets=True,
        )
        # with word targets allowed the pool is strictly larger, so at least
        # as many replacements happen
        baseline = cryptext_synthetic.perturber.perturb(
            "the democrats and republicans debate the vaccine mandate", ratio=1.0
        )
        assert len(outcome.replacements) >= len(baseline.replacements)

    def test_spans_point_into_original_text(self, cryptext_synthetic):
        text = "the democrats and republicans debate the vaccine"
        outcome = cryptext_synthetic.perturb(text, ratio=1.0)
        for replacement in outcome.replacements:
            assert text[replacement.start:replacement.end] == replacement.original

    def test_perturbed_text_differs_when_replacements_exist(self, cryptext_synthetic):
        text = "the democrats and republicans debate the vaccine"
        outcome = cryptext_synthetic.perturb(text, ratio=1.0)
        if outcome.replacements:
            assert outcome.perturbed_text != text

    def test_protected_tokens_never_replaced(self, cryptext_synthetic):
        text = "the democrats and republicans debate the vaccine"
        outcome = cryptext_synthetic.perturber.perturb(
            text, ratio=1.0, protected_tokens={"vaccine", "democrats"}
        )
        replaced = {replacement.original.lower() for replacement in outcome.replacements}
        assert "vaccine" not in replaced
        assert "democrats" not in replaced


class TestDeterminismAndConfig:
    def test_same_seed_gives_same_output(self, small_corpus):
        first = CrypText.from_corpus(small_corpus, config=CrypTextConfig(seed=5))
        second = CrypText.from_corpus(small_corpus, config=CrypTextConfig(seed=5))
        text = "the democrats support the vaccine mandate"
        assert first.perturb(text, ratio=0.5).perturbed_text == second.perturb(
            text, ratio=0.5
        ).perturbed_text

    def test_injected_rng_is_used(self, cryptext_small):
        perturber_a = Perturber(cryptext_small.lookup_engine, rng=random.Random(1))
        perturber_b = Perturber(cryptext_small.lookup_engine, rng=random.Random(1))
        text = "the democrats support the vaccine mandate"
        assert (
            perturber_a.perturb(text, ratio=0.5).perturbed_text
            == perturber_b.perturb(text, ratio=0.5).perturbed_text
        )

    def test_default_ratio_comes_from_config(self, small_corpus):
        system = CrypText.from_corpus(
            small_corpus, config=CrypTextConfig(perturbation_ratio=0.5)
        )
        outcome = system.perturb("the democrats support the vaccine mandate")
        assert outcome.ratio == 0.5

    def test_uniform_sampling_mode(self, cryptext_small):
        outcome = cryptext_small.perturber.perturb(
            "the democrats support the vaccine", ratio=1.0, weighted_by_frequency=False
        )
        for replacement in outcome.replacements:
            assert replacement.perturbed != replacement.original


class TestOutcomeSerialization:
    def test_to_dict(self, cryptext_small):
        outcome = cryptext_small.perturb("the democrats support the vaccine", ratio=0.5)
        payload = outcome.to_dict()
        assert payload["original_text"] == "the democrats support the vaccine"
        assert payload["ratio"] == 0.5
        assert isinstance(payload["replacements"], list)

    def test_achieved_ratio_bounded(self, cryptext_synthetic):
        outcome = cryptext_synthetic.perturb(
            "the democrats and republicans debate the vaccine", ratio=0.5
        )
        assert 0.0 <= outcome.achieved_ratio <= 1.0

    def test_bulk_perturbation(self, cryptext_small):
        outcomes = cryptext_small.perturber.perturb_many(
            ["the democrats won", "the vaccine works"], ratio=0.5
        )
        assert len(outcomes) == 2
