"""Concurrency tests: TTLCache, the sharded index, and enrichment-vs-lookup.

The batch engine serves Look Up / Normalization from worker threads while
the crawler enriches the dictionary concurrently, so the storage substrate
and the batch layer must tolerate that interleaving:

* :class:`TTLCache` is hammered from many threads without corruption, lost
  counter updates, or capacity violations;
* ``look_up_batch`` and ``learn_from`` run concurrently without losing
  dictionary writes and without serving stale cached results once the
  writers have finished (shard-scoped invalidation is exercised on every
  enrichment);
* results are deterministic under a fixed seed — two identical systems
  produce identical batch results, and repeated parallel retrieval on one
  engine is stable.
"""

from __future__ import annotations

import threading

from repro import CrypText
from repro.storage import TTLCache


CORPUS = [
    "the dirrty republicans",
    "thee dirty repubLIEcans",
    "the democrats support the vaccine mandate",
    "the demokrats hate the vacc1ne",
    "the dem0cr@ts and the repubLIEcans argue online",
    "i ordered from amazon yesterday",
    "the amaz0n package never arrived",
]

WATCHED = ["democrats", "republicans", "amazon", "vaccine"]


def _run_threads(workers) -> list[BaseException]:
    """Run callables on threads, join them, and collect raised exceptions."""
    errors: list[BaseException] = []
    lock = threading.Lock()

    def wrap(worker):
        def target():
            try:
                worker()
            except BaseException as exc:  # noqa: BLE001 - surfaced via assertion
                with lock:
                    errors.append(exc)

        return target

    threads = [threading.Thread(target=wrap(worker)) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


# --------------------------------------------------------------------------- #
# TTLCache
# --------------------------------------------------------------------------- #
class TestTTLCacheConcurrency:
    def test_mixed_operations_do_not_corrupt(self):
        cache = TTLCache(max_entries=64, default_ttl=60.0)

        def worker(worker_id: int):
            def run():
                for i in range(1500):
                    key = f"key-{(worker_id * 7 + i) % 100}"
                    op = i % 4
                    if op == 0:
                        cache.set(key, i, tags=[f"tag-{i % 5}"])
                    elif op == 1:
                        cache.get(key)
                    elif op == 2:
                        cache.invalidate(key)
                    else:
                        key in cache  # noqa: B015 - exercising __contains__

            return run

        errors = _run_threads([worker(n) for n in range(8)])
        assert not errors, errors
        assert len(cache) <= cache.max_entries
        stats = cache.stats
        assert stats.requests == stats.hits + stats.misses

    def test_get_or_compute_is_consistent_under_contention(self):
        cache = TTLCache(max_entries=256, default_ttl=60.0)
        observed: dict[str, set[int]] = {f"k{i}": set() for i in range(16)}
        lock = threading.Lock()

        def worker():
            for i in range(400):
                key = f"k{i % 16}"
                value = cache.get_or_compute(key, lambda i=i: i % 16)
                with lock:
                    observed[key].add(value)

        errors = _run_threads([worker] * 8)
        assert not errors, errors
        # Every computed value for key k{i} is i: concurrent misses may
        # compute twice but never produce an inconsistent value.
        for i in range(16):
            assert observed[f"k{i}"] == {i}

    def test_tag_invalidation_races_with_sets(self):
        cache = TTLCache(max_entries=128, default_ttl=60.0)

        def writer():
            for i in range(1000):
                cache.set(f"w-{i % 40}", i, tags=[("bucket", i % 4)])

        def invalidator():
            for i in range(1000):
                cache.invalidate_tag(("bucket", i % 4))

        errors = _run_threads([writer, writer, invalidator, invalidator])
        assert not errors, errors
        # Whatever survived must still be internally consistent.
        for key in cache.keys():
            cache.get(key)


# --------------------------------------------------------------------------- #
# look_up_batch vs learn_from
# --------------------------------------------------------------------------- #
class TestLookupLearnConcurrency:
    def test_no_lost_updates_and_no_stale_hits(self):
        system = CrypText.from_corpus(CORPUS, train_scorer=False)
        engine = system.batch
        engine.look_up_batch(WATCHED)  # build index, warm cache

        num_writers = 4
        repeats = 25
        # Each writer repeatedly re-learns a shared sentence (count
        # increments must not be lost) and contributes one unique
        # perturbation that must be visible once every thread has joined.
        unique = {
            0: "the demmocrats lie",
            1: "the repuublicans lie",
            2: "the amazzon box broke",
            3: "the vacciine failed",
        }
        expected_tokens = {
            "democrats": "demmocrats",
            "republicans": "repuublicans",
            "amazon": "amazzon",
            "vaccine": "vacciine",
        }

        def writer(worker_id: int):
            def run():
                system.learn_from([unique[worker_id]], source=f"w{worker_id}")
                for _ in range(repeats):
                    system.learn_from(["the democrats argue online"], source="shared")

            return run

        def reader():
            for _ in range(40):
                results = engine.look_up_batch(WATCHED)
                assert [r.query for r in results] == WATCHED
                for result in results:
                    assert result.soundex_key is not None

        errors = _run_threads([writer(n) for n in range(num_writers)] + [reader] * 4)
        assert not errors, errors

        # No lost updates: every shared re-learn incremented the count.
        entry = system.dictionary.entry("democrats")
        baseline = CrypText.from_corpus(CORPUS, train_scorer=False)
        base_count = baseline.dictionary.entry("democrats").count
        assert entry.count == base_count + num_writers * repeats

        # No stale post-invalidation hits: both the batch path and the
        # cached facade path see every writer's new perturbation.
        for keyword, token in expected_tokens.items():
            assert token in engine.look_up_batch([keyword])[0].tokens
            assert token in system.look_up(keyword).tokens

    def test_concurrent_normalize_and_learn(self):
        system = CrypText.from_corpus(CORPUS, train_scorer=False)
        engine = system.batch
        texts = ["the demokrats hate the vacc1ne", "i ordered from amaz0n"]
        expected = [system.normalize(text).normalized_text for text in texts]

        def normalizer():
            for _ in range(30):
                results = engine.normalize_batch(texts)
                assert [r.original_text for r in results] == texts

        def learner():
            for i in range(30):
                system.learn_from([f"fresh chatter number {i} appears"], source="t")

        errors = _run_threads([normalizer] * 3 + [learner] * 2)
        assert not errors, errors
        # The enrichment never touched these buckets, so results are stable.
        assert [
            r.normalized_text for r in engine.normalize_batch(texts)
        ] == expected


# --------------------------------------------------------------------------- #
# determinism under a fixed seed
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def test_identical_systems_produce_identical_batches(self):
        queries = WATCHED * 3 + ["unseen", "..."]
        texts = ["the demokrats hate the vacc1ne", "i ordered from amaz0n"]
        snapshots = []
        for _ in range(2):
            system = CrypText.from_corpus(CORPUS)
            engine = system.make_batch_engine(num_shards=4)
            snapshots.append(
                (
                    engine.look_up_batch(queries),
                    engine.normalize_batch(texts),
                    engine.perturb_batch(texts, ratio=0.5),
                )
            )
        assert snapshots[0][0] == snapshots[1][0]
        assert snapshots[0][1] == snapshots[1][1]
        assert [o.perturbed_text for o in snapshots[0][2]] == [
            o.perturbed_text for o in snapshots[1][2]
        ]

    def test_parallel_retrieval_is_order_stable(self):
        system = CrypText.from_corpus(CORPUS, train_scorer=False)
        engine = system.make_batch_engine(num_shards=8)
        engine.parallel_threshold = 1  # force the worker-pool path
        queries = WATCHED * 10
        first = engine.look_up_batch(queries)
        for _ in range(5):
            assert engine.look_up_batch(queries) == first


# --------------------------------------------------------------------------- #
# replication: leader writes while followers tail
# --------------------------------------------------------------------------- #
class TestReplicationConcurrency:
    def test_followers_tail_a_live_leader_without_loss_or_duplication(
        self, tmp_path
    ):
        """Background tails racing a writing leader apply every seq exactly once.

        The leader journals a stream of enrichments while two followers
        poll on their own threads.  Each follower records the set of every
        sequence number it ever applied: at the end that set must be
        exactly ``{1 .. last_seq}`` — nothing lost to a torn read, nothing
        applied twice by a racing re-tail — and both replicas must be
        observably identical to the leader.
        """
        from repro import CrypTextConfig
        from repro.replication import Follower
        from repro.wal import ChangeLog, wal_directory_for

        config = CrypTextConfig(cache_enabled=False)
        leader = CrypText.empty(config=config, seed_lexicon=False)
        leader.dictionary.attach_wal(ChangeLog(wal_directory_for(tmp_path)))
        followers = [
            Follower(
                tmp_path,
                config=config,
                name=f"follower-{index}",
                record_applied_seqs=True,
            )
            for index in range(2)
        ]
        for follower in followers:
            follower.start(poll_interval=0.002)

        def writer():
            for index in range(40):
                leader.learn_from(
                    [f"the brandnewword{index}x spreads online"], source="stream"
                )

        errors = _run_threads([writer])
        assert errors == []
        try:
            last_seq = leader.dictionary.wal.last_seq
            assert last_seq == 40
            for follower in followers:
                follower.stop()
                follower.catch_up()
                assert follower.applied_seqs == frozenset(range(1, last_seq + 1))
                stats = follower.stats()
                assert stats["applied_records"] == last_seq
                assert (
                    follower.system.dictionary.content_fingerprint()
                    == leader.dictionary.content_fingerprint()
                )
                assert (
                    follower.system.dictionary.token_counts()
                    == leader.dictionary.token_counts()
                )
        finally:
            for follower in followers:
                follower.close()
