"""Tests for repro.text.charmap."""

from __future__ import annotations

from repro.text.charmap import (
    EMOTICONS,
    LEET_SUBSTITUTIONS,
    VISUAL_EQUIVALENTS,
    fold_visual_characters,
    is_word_internal_separator,
    strip_word_internal_separators,
    visual_equivalence_class,
)


class TestVisualEquivalence:
    def test_paper_examples(self):
        # §III-A: "l"->"1", "a"->"@", "S"->"5" must fold onto the letters.
        assert visual_equivalence_class("@") == "a"
        assert visual_equivalence_class("5") == "s"
        assert visual_equivalence_class("0") == "o"

    def test_letters_fold_to_lowercase_self(self):
        assert visual_equivalence_class("A") == "a"
        assert visual_equivalence_class("z") == "z"

    def test_unknown_characters_pass_through(self):
        assert visual_equivalence_class("-") == "-"
        assert visual_equivalence_class("?") == "?"

    def test_empty_string_passes_through(self):
        assert visual_equivalence_class("") == ""

    def test_idempotent(self):
        for char in list(VISUAL_EQUIVALENTS) + ["a", "Z", "-"]:
            once = visual_equivalence_class(char)
            assert visual_equivalence_class(once) == once

    def test_cyrillic_homoglyphs_fold(self):
        assert visual_equivalence_class("а") == "a"  # cyrillic a
        assert visual_equivalence_class("о") == "o"  # cyrillic o


class TestFoldVisualCharacters:
    def test_democrats_leet(self):
        assert fold_visual_characters("dem0cr@ts") == "democrats"

    def test_suicide_digit_one(self):
        assert fold_visual_characters("suic1de") == "suicide"

    def test_vaccine_digit_one(self):
        assert fold_visual_characters("vacc1ne") == "vaccine"

    def test_output_is_lowercase(self):
        assert fold_visual_characters("DemocRATs") == "democrats"

    def test_plain_word_unchanged(self):
        assert fold_visual_characters("vaccine") == "vaccine"


class TestLeetSubstitutionsTable:
    def test_every_substitution_folds_back(self):
        # The substitution table and the fold table must be mutually
        # consistent: applying a leet character then folding it must recover
        # a letter (either the original or its visual class).
        for letter, variants in LEET_SUBSTITUTIONS.items():
            for variant in variants:
                folded = visual_equivalence_class(variant)
                assert folded.isalpha(), (letter, variant, folded)

    def test_keys_are_lowercase_letters(self):
        assert all(len(key) == 1 and key.isalpha() and key.islower() for key in LEET_SUBSTITUTIONS)


class TestSeparators:
    def test_hyphen_and_dot_are_separators(self):
        assert is_word_internal_separator("-")
        assert is_word_internal_separator(".")
        assert is_word_internal_separator("_")
        assert not is_word_internal_separator("a")

    def test_strip_separators_paper_examples(self):
        assert strip_word_internal_separators("mus-lim") == "muslim"
        assert strip_word_internal_separators("vac-cine") == "vaccine"
        assert strip_word_internal_separators("chi-nese") == "chinese"

    def test_strip_separators_no_op_on_clean_words(self):
        assert strip_word_internal_separators("vaccine") == "vaccine"


class TestEmoticons:
    def test_emoticon_inventory_is_nonempty_and_stringy(self):
        assert EMOTICONS
        assert all(isinstance(emoticon, str) and emoticon for emoticon in EMOTICONS)
