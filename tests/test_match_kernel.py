"""Property and policy tests for the paper-scale match kernels.

Three kernels can serve a compiled bucket's ``match``: the bit-parallel
Myers/Hyyrö traversal (patterns <= 64 chars, plain Levenshtein), the
SymSpell delete-neighborhood index (d <= 2, either metric), and the banded
DP rows that served every PR before this one.  The contract under test is
the one the golden guards enforce end to end: **kernel choice is a
performance knob, never a behavior knob** — every kernel reports exactly
the per-entry distances of a brute-force bounded scan, and ineligible
selections degrade deterministically instead of erroring.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MATCH_KERNEL_POLICIES
from repro.core.deletes import DELETE_DEPTH, DeleteIndex, delete_variants
from repro.core.dictionary import DictionaryEntry
from repro.core.edit_distance import bounded_levenshtein, bounded_osa
from repro.core.kernels import (
    AUTO_HUGE_BUCKET,
    AUTO_SYMSPELL_MIN_BUCKET,
    KERNEL_NAMES,
    MATCH_KERNELS,
    MYERS_MAX_PATTERN,
    KernelCounters,
    build_peq,
    myers_trie_match,
    native_available,
    native_distance,
    resolve_kernel,
)
from repro.core.matcher import CompiledBucket

# The same adversarial alphabet the matcher suite uses: letters, leetspeak
# symbols, separators, and multi-byte Unicode (so the bitmask tables and
# delete variants are exercised beyond ASCII).
token_alphabet = string.ascii_letters + "013457@$!|-._" + "éàüñçœß"
tokens = st.text(alphabet=token_alphabet, min_size=0, max_size=14)
queries = st.text(alphabet=token_alphabet, min_size=0, max_size=14)
bounds = st.integers(min_value=0, max_value=3)

CONCRETE_KERNELS = ("myers", "banded", "symspell")


def make_entry(token: str, canonical: str | None = None) -> DictionaryEntry:
    return DictionaryEntry(
        token=token,
        canonical=canonical if canonical is not None else token.lower(),
        keys={},
        count=1,
        is_word=False,
        sources=(),
    )


def brute_force(
    query: str, entries: list[DictionaryEntry], bound: int, canonical: bool = False
) -> dict[int, int]:
    """Reference semantics: one bounded Levenshtein DP per entry."""
    distances = {}
    for index, entry in enumerate(entries):
        target = entry.canonical if canonical else entry.token_lower
        distance = bounded_levenshtein(query, target, bound)
        if distance is not None:
            distances[index] = distance
    return distances


class TestPolicyRegistry:
    def test_config_policy_tuple_mirrors_the_kernel_module(self):
        # config declares its own copy so it stays importable without the
        # core package; this assertion is the drift guard the comment in
        # repro/config.py promises.
        assert MATCH_KERNEL_POLICIES == MATCH_KERNELS

    def test_counter_names_cover_every_concrete_kernel_plus_linear(self):
        assert set(CONCRETE_KERNELS) < set(KERNEL_NAMES)
        assert "linear" in KERNEL_NAMES


class TestResolveKernel:
    def test_banded_is_always_honored(self):
        for length in (0, 1, 64, 65, 500):
            for distance in (0, 1, 2, 5):
                assert resolve_kernel("banded", length, distance, 10) == "banded"

    def test_myers_requires_short_nonempty_plain_patterns(self):
        assert resolve_kernel("myers", 10, 2, 10) == "myers"
        assert resolve_kernel("myers", MYERS_MAX_PATTERN, 2, 10) == "myers"
        # Degradations: empty pattern, long pattern, transpositions.
        assert resolve_kernel("myers", 0, 2, 10) == "banded"
        assert resolve_kernel("myers", MYERS_MAX_PATTERN + 1, 2, 10) == "banded"
        assert resolve_kernel("myers", 10, 2, 10, transpositions=True) == "banded"

    def test_symspell_requires_small_distances(self):
        assert resolve_kernel("symspell", 10, 2, 10) == "symspell"
        assert resolve_kernel("symspell", 10, 0, 10) == "symspell"
        # d > 2 falls to Myers when it can, banded when it cannot.
        assert resolve_kernel("symspell", 10, 3, 10) == "myers"
        assert resolve_kernel("symspell", 10, 3, 10, transpositions=True) == "banded"
        # Transpositions stay supported (OSA verification), unlike Myers.
        assert resolve_kernel("symspell", 10, 2, 10, transpositions=True) == "symspell"

    def test_auto_prefers_symspell_only_on_big_buckets(self):
        big = AUTO_SYMSPELL_MIN_BUCKET
        assert resolve_kernel("auto", 10, 2, big) == "symspell"
        assert resolve_kernel("auto", 10, 2, big - 1) == "myers"
        assert resolve_kernel("auto", 10, 3, big) == "myers"
        assert resolve_kernel("auto", 10, 2, big, transpositions=True) == "symspell"
        assert resolve_kernel("auto", 10, 3, big, transpositions=True) == "banded"

    def test_auto_falls_back_to_banded_on_huge_buckets(self):
        # Measured at 2M entries: the token space saturates, delete
        # candidate sets balloon, and the banded traversal wins outright
        # (benchmarks/bench_match_kernel.py enforces this stays true).
        huge = AUTO_HUGE_BUCKET + 1
        for distance in (1, 2, 3):
            for transpositions in (False, True):
                assert (
                    resolve_kernel("auto", 10, distance, huge, transpositions)
                    == "banded"
                )
        assert resolve_kernel("auto", 10, 2, AUTO_HUGE_BUCKET) == "symspell"
        # Explicit policies ignore the huge-bucket heuristic: forcing
        # symspell/myers on a huge bucket still honors the request.
        assert resolve_kernel("symspell", 10, 2, huge) == "symspell"
        assert resolve_kernel("myers", 10, 2, huge) == "myers"

    def test_resolution_is_idempotent(self):
        for policy in MATCH_KERNELS:
            for transpositions in (False, True):
                resolved = resolve_kernel(policy, 10, 2, 100, transpositions)
                assert (
                    resolve_kernel(resolved, 10, 2, 100, transpositions) == resolved
                )

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            resolve_kernel("simd", 10, 2, 10)


class TestKernelsEqualBruteForce:
    """Myers == banded == SymSpell == per-entry bounded DP, raw and canonical."""

    @settings(max_examples=200, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=30), queries, bounds)
    def test_raw_mode_every_kernel(self, bucket_tokens, query, bound):
        entries = [make_entry(token) for token in bucket_tokens]
        compiled = CompiledBucket(entries)
        expected = brute_force(query.lower(), entries, bound)
        for kernel in CONCRETE_KERNELS:
            assert (
                compiled.match(query.lower(), bound, kernel=kernel) == expected
            ), f"kernel {kernel} diverged"

    @settings(max_examples=120, deadline=None)
    @given(
        st.lists(st.tuples(tokens, tokens), min_size=0, max_size=20), queries, bounds
    )
    def test_canonical_mode_every_kernel(self, pairs, query, bound):
        entries = [make_entry(token, canonical=canon) for token, canon in pairs]
        compiled = CompiledBucket(entries)
        expected = brute_force(query, entries, bound, canonical=True)
        for kernel in CONCRETE_KERNELS:
            assert (
                compiled.match(query, bound, canonical=True, kernel=kernel)
                == expected
            ), f"kernel {kernel} diverged (canonical)"

    @settings(max_examples=100, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=25), queries, st.integers(0, 2))
    def test_symspell_osa_mode_equals_bounded_osa_scan(
        self, bucket_tokens, query, bound
    ):
        entries = [make_entry(token) for token in bucket_tokens]
        compiled = CompiledBucket(entries)
        expected = {}
        for index, entry in enumerate(entries):
            distance = bounded_osa(query.lower(), entry.token_lower, bound)
            if distance is not None:
                expected[index] = distance
        assert (
            compiled.match(
                query.lower(), bound, transpositions=True, kernel="symspell"
            )
            == expected
        )

    def test_long_patterns_degrade_without_changing_results(self):
        long_query = "x" * (MYERS_MAX_PATTERN + 7)
        entries = [make_entry("x" * (MYERS_MAX_PATTERN + 7)), make_entry("short")]
        compiled = CompiledBucket(entries)
        expected = brute_force(long_query, entries, 2)
        assert compiled.match(long_query, 2, kernel="myers") == expected
        assert compiled.kernel_for("myers", len(long_query), 2) == "banded"


class TestMyersKernelDirect:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=25), queries, bounds)
    def test_trie_traversal_equals_per_string_dp(self, bucket_tokens, query, bound):
        query = query.lower()
        if not 1 <= len(query) <= MYERS_MAX_PATTERN:
            query = (query + "q")[:MYERS_MAX_PATTERN]
        entries = [make_entry(token) for token in bucket_tokens]
        compiled = CompiledBucket(entries)
        got = myers_trie_match(compiled._trie(False, False), query, bound)
        assert got == brute_force(query, entries, bound)

    def test_peq_masks_index_pattern_positions(self):
        peq = build_peq("abca")
        assert peq["a"] == 0b1001
        assert peq["b"] == 0b0010
        assert peq["c"] == 0b0100
        assert peq.get("z", 0) == 0


class TestSymSpellDeleteIndex:
    @settings(max_examples=150, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=25), queries, st.integers(0, 2))
    def test_candidates_superset_of_levenshtein_matches(
        self, bucket_tokens, query, bound
    ):
        # The symmetric-delete guarantee: any string within Levenshtein (or
        # OSA) distance d <= 2 shares a deletion variant to depth d, so the
        # candidate set must cover every true match.  Exactness on top of
        # the cover is what the equality suite above pins down.
        query = query.lower()
        lowered = [token.lower() for token in bucket_tokens]
        index = DeleteIndex.build(enumerate(lowered))
        candidates = set(index.candidates(query, bound))
        for position, text in enumerate(lowered):
            if bounded_levenshtein(query, text, bound) is not None:
                assert position in candidates
            if bounded_osa(query, text, bound) is not None:
                assert position in candidates

    @settings(max_examples=100, deadline=None)
    @given(st.lists(tokens, min_size=0, max_size=20))
    def test_rows_round_trip_preserves_candidates(self, bucket_tokens):
        lowered = [token.lower() for token in bucket_tokens]
        index = DeleteIndex.build(enumerate(lowered))
        restored = DeleteIndex.from_rows(
            index.to_rows(), depth=index.depth, index_bound=len(lowered)
        )
        for probe in lowered + ["vaccine", ""]:
            for bound in (0, 1, 2):
                assert index.candidates(probe, bound) == restored.candidates(
                    probe, bound
                )

    def test_from_rows_rejects_malformed_rows(self):
        with pytest.raises(ValueError):
            DeleteIndex.from_rows([[123, [0]]], index_bound=1)
        with pytest.raises(ValueError):
            DeleteIndex.from_rows([["abc", [True]]], index_bound=1)
        with pytest.raises(ValueError):
            DeleteIndex.from_rows([["abc", [5]]], index_bound=1)

    def test_delete_variants_depth_zero_is_identity(self):
        assert delete_variants("abc", 0) == {"abc"}
        assert delete_variants("ab", DELETE_DEPTH) == {"ab", "a", "b", ""}


class TestKernelCounters:
    def test_note_and_merge(self):
        counters = KernelCounters()
        counters.note("myers")
        counters.note("myers", 2)
        counters.note("linear")
        other = KernelCounters()
        other.note("symspell", 4)
        other.merge(counters)
        assert other.to_dict() == {
            "myers": 3,
            "banded": 0,
            "symspell": 4,
            "linear": 1,
        }


class TestNativeFastPath:
    def test_probe_is_opt_in(self):
        # The cffi fast path never activates implicitly; without the env
        # flag at import time the pure-Python kernels serve everything.
        import os

        if os.environ.get("CRYPTEXT_NATIVE") != "1":
            assert not native_available()

    @pytest.mark.skipif(not native_available(), reason="native kernel not compiled")
    @settings(max_examples=200, deadline=None)
    @given(queries, tokens, bounds)
    def test_native_distance_equals_bounded_levenshtein(self, a, b, bound):
        assert native_distance(a.lower(), b.lower(), bound) == bounded_levenshtein(
            a.lower(), b.lower(), bound
        )
