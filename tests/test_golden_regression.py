"""Golden regression corpus: any normalization behavior drift fails loudly.

``tests/fixtures/golden_corpus.jsonl`` holds input texts and the full
normalization output (normalized text, per-token corrections with spans and
categories) produced by the system built from :data:`GOLDEN_BUILD_CORPUS`.
This test rebuilds the same system and compares field by field, both through
the sequential path and the batch engine — a change to the tokenizer, the
Soundex encoding, candidate retrieval, coherency ranking, case restoration,
the cache, or the batch layer that alters any observable output shows up as
a precise diff here.

If a behavior change is *intentional*, regenerate the fixture by running
this file as a script:  ``PYTHONPATH=src python tests/test_golden_regression.py``
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import CrypText, CrypTextConfig

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "golden_corpus.jsonl"

#: The corpus the golden system is built from.  Changing it invalidates the
#: fixture (regenerate — see the module docstring).
GOLDEN_BUILD_CORPUS = [
    "the dirrty republicans",
    "thee dirty repubLIEcans",
    "the dirty republic@@ns",
    "the democrats support the vaccine mandate",
    "the demokrats hate the vacc1ne",
    "the democRATs push their agenda",
    "thinking about suic1de again tonight",
    "that movie was about depresxion and recovery",
    "mus-lim families moved into the neighborhood",
    "stop the vac-cine mandate now",
    "the dem0cr@ts and the repubLIEcans argue online",
    "i ordered from amazon yesterday",
    "the amaz0n package never arrived",
]

#: The texts the fixture records expected outputs for.
GOLDEN_INPUTS = [
    "the demokrats hate the vacc1ne",
    "the dem0cr@ts push their agenda",
    "i ordered from amaz0n yesterday",
    "the repubLIEcans argue online",
    "stop the vac-cine mandate now",
    "thinking about suic1de again",
    "that movie was about depresxion",
    "mus-lim families moved in",
    "the dirrty republic@@ns lie",
    "nothing perturbed in this sentence",
    "the democRATs and the republicans",
    "the DIRTY democrats",
    "vacc1ne vacc1ne vacc1ne",
    "amaz0n and demokrats and suic1de",
    "punctuation only ... !!!",
]


def _result_record(result) -> dict:
    return {
        "text": result.original_text,
        "normalized": result.normalized_text,
        "num_corrected": result.num_corrected,
        "corrections": [
            {
                "original": c.original,
                "corrected": c.corrected,
                "category": c.category.value,
                "start": c.start,
                "end": c.end,
            }
            for c in result.perturbed_corrections
        ],
    }


def _load_fixture() -> list[dict]:
    with FIXTURE_PATH.open(encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


@pytest.fixture(scope="module")
def golden_system() -> CrypText:
    return CrypText.from_corpus(GOLDEN_BUILD_CORPUS)


@pytest.fixture(scope="module")
def fixture_records() -> list[dict]:
    return _load_fixture()


def test_fixture_covers_every_golden_input(fixture_records):
    assert [record["text"] for record in fixture_records] == GOLDEN_INPUTS


def test_sequential_normalization_matches_golden(golden_system, fixture_records):
    for record in fixture_records:
        result = golden_system.normalize(record["text"])
        assert _result_record(result) == record, (
            f"behavior drift on {record['text']!r} — if intentional, regenerate "
            f"the fixture (see module docstring)"
        )


def test_batch_normalization_matches_golden(golden_system, fixture_records):
    texts = [record["text"] for record in fixture_records]
    results = golden_system.normalize_batch(texts)
    for record, result in zip(fixture_records, results):
        assert _result_record(result) == record


def compare_compiled_and_linear_lookups(distances=(1, 3), kernel="auto") -> int:
    """Look Up every golden-input token through both matching paths.

    Builds the golden system twice (``compiled_buckets`` on and off) and
    asserts field-identical :class:`LookupResult`s for every token, edit
    bound, and case mode; returns the number of comparisons made.  Shared
    by the tier-1 test below and the CI smoke guard in
    ``benchmarks/bench_lookup_hotpath.py`` so the two checks cannot drift
    apart.  ``kernel`` pins the compiled system's match-kernel policy so
    the guard can sweep every kernel against the same linear reference.
    """
    compiled = CrypText.from_corpus(
        GOLDEN_BUILD_CORPUS,
        config=CrypTextConfig(compiled_buckets=True, match_kernel=kernel),
    )
    linear = CrypText.from_corpus(
        GOLDEN_BUILD_CORPUS, config=CrypTextConfig(compiled_buckets=False)
    )
    queries = sorted({token for text in GOLDEN_INPUTS for token in text.split()})
    compared = 0
    for query in queries:
        for distance in distances:
            for case_sensitive in (True, False):
                fast = compiled.look_up(
                    query, max_edit_distance=distance, case_sensitive=case_sensitive
                )
                slow = linear.look_up(
                    query, max_edit_distance=distance, case_sensitive=case_sensitive
                )
                assert fast == slow, (
                    f"compiled Look Up diverged from linear on golden corpus: "
                    f"{query!r} (d={distance}, case_sensitive={case_sensitive})"
                )
                compared += 1
    return compared


def test_compiled_lookup_matches_linear_on_golden_corpus():
    """The trie-compiled matcher must be invisible on the golden corpus."""
    assert compare_compiled_and_linear_lookups() > 0


@pytest.mark.parametrize("kernel", ["auto", "myers", "banded", "symspell"])
def test_every_kernel_policy_matches_linear_on_golden_corpus(kernel):
    """Kernel choice is a performance knob, never a behavior knob.

    Every selectable match-kernel policy — the bit-parallel Myers DP, the
    banded-DP fallback, the SymSpell delete-neighborhood index, and the
    measuring ``auto`` policy — must produce field-identical golden-corpus
    lookups to the linear reference scan.
    """
    assert compare_compiled_and_linear_lookups(kernel=kernel) > 0


def compare_cold_and_warm_systems(distances=(1, 3), shards=0) -> int:
    """Golden-corpus equality guard for the warm-start snapshot subsystem.

    Builds the golden system cold, snapshots it, hydrates a *fresh* system
    (documents + pre-built tries, batch shards warmed from the same file),
    and asserts field-identical Look Up results — sequential and batch —
    plus identical normalization outputs for every golden input.  Shared by
    the tier-1 test below and the CI smoke guard in
    ``benchmarks/bench_cold_start.py`` so the two checks cannot drift apart.
    Returns the number of comparisons made.

    With ``shards`` > 0 the snapshot is written (and hydrated from) the v2
    sharded mmap-friendly layout instead of the v1 single file — the
    byte-identical-results guard for the format.
    """
    import tempfile

    cold = CrypText.from_corpus(GOLDEN_BUILD_CORPUS)
    compared = 0
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = Path(tmp) / "golden.snapshot.json"
        cold.save_snapshot(snapshot_path, shards=shards or None)
        warm = CrypText.empty(seed_lexicon=False)
        report = warm.load_snapshot(snapshot_path, strict=True)
        assert report.loaded and report.hydrated_tries, report
        shard_report = warm.batch.warm_from_snapshot(snapshot_path)
        assert shard_report.loaded, shard_report

        queries = sorted({token for text in GOLDEN_INPUTS for token in text.split()})
        for query in queries:
            for distance in distances:
                assert cold.look_up(
                    query, max_edit_distance=distance
                ) == warm.look_up(query, max_edit_distance=distance), (
                    f"warm-start Look Up diverged from cold compile: "
                    f"{query!r} (d={distance})"
                )
                compared += 1
        assert cold.look_up_batch(queries) == warm.look_up_batch(queries)
        compared += len(queries)

        # The hydrated system carries no trained scorer; compare against a
        # scorer-free view over the cold dictionary so only candidate
        # retrieval and ranking (the snapshot-dependent parts) are compared.
        cold_plain = CrypText(dictionary=cold.dictionary, config=cold.config)
        for text in GOLDEN_INPUTS:
            assert (
                cold_plain.normalize(text).to_dict() == warm.normalize(text).to_dict()
            ), f"warm-start normalization diverged on {text!r}"
            compared += 1
        cold.batch.close()
        warm.batch.close()
    return compared


def test_cold_and_warm_systems_identical_on_golden_corpus():
    """Snapshot hydration must be invisible on the golden corpus."""
    assert compare_cold_and_warm_systems() > 0


@pytest.mark.parametrize("shards", [1, 3])
def test_sharded_warm_start_identical_on_golden_corpus(shards):
    """Hydrating from the v2 sharded layout must be invisible too."""
    assert compare_cold_and_warm_systems(shards=shards) > 0


def compare_cold_and_recovered_systems(distances=(1, 3)) -> int:
    """Golden-corpus equality guard for the durability subsystem.

    Journals the golden build into a WAL, snapshots the dictionary
    mid-ingest, keeps writing (so the tail lives only in the log), then
    simulates a ``kill -9`` by recovering into a *fresh* system — and
    asserts the recovered system is field-identical to an uninterrupted
    cold build on every golden Look Up and normalization.  Shared by the
    tier-1 test below and the CI smoke guard in
    ``benchmarks/bench_incremental_snapshot.py`` so the two checks cannot
    drift apart.  Returns the number of comparisons made.
    """
    import tempfile

    from repro.storage import SNAPSHOT_FILE_NAME
    from repro.wal import ChangeLog, wal_directory_for

    compared = 0
    with tempfile.TemporaryDirectory() as tmp:
        work = Path(tmp)
        midpoint = len(GOLDEN_BUILD_CORPUS) // 2

        # The uninterrupted reference (same write order, no journaling).
        cold = CrypText.empty(seed_lexicon=False)
        cold.dictionary.add_corpus(GOLDEN_BUILD_CORPUS, source="corpus")
        cold.dictionary.seed_lexicon()

        # Streamed enrichment past the corpus: journaled as ONE compound
        # learn_batch record per call, which replay must expand back into
        # the identical per-token write order.
        stream = ["completely fresh unrelated chatter flows here tonight"]
        cold.learn_from(stream, source="stream")

        # The crash victim: base snapshot after half the corpus, everything
        # after it — including the whole lexicon seeding — only in the WAL.
        victim = CrypText.empty(seed_lexicon=False)
        victim.dictionary.attach_wal(ChangeLog(wal_directory_for(work)))
        victim.dictionary.add_corpus(GOLDEN_BUILD_CORPUS[:midpoint], source="corpus")
        victim.save_snapshot(work / SNAPSHOT_FILE_NAME)
        victim.dictionary.add_corpus(GOLDEN_BUILD_CORPUS[midpoint:], source="corpus")
        victim.dictionary.save_snapshot(work / SNAPSHOT_FILE_NAME, incremental=True)
        victim.dictionary.seed_lexicon()
        victim.learn_from(stream, source="stream")
        journaled_ops = [record.op for record in victim.dictionary.wal.iter_records()]
        assert journaled_ops.count("learn_batch") == 1, journaled_ops

        recovered = CrypText.empty(seed_lexicon=False)
        report = recovered.recover(work)
        assert report.loaded and report.deltas_applied == 1, report
        assert report.replayed_records > 0, report
        assert report.degraded == (), report
        assert (
            recovered.dictionary.content_fingerprint()
            == cold.dictionary.content_fingerprint()
        )

        queries = sorted({token for text in GOLDEN_INPUTS for token in text.split()})
        for query in queries:
            for distance in distances:
                assert cold.look_up(
                    query, max_edit_distance=distance
                ) == recovered.look_up(query, max_edit_distance=distance), (
                    f"recovered Look Up diverged from cold build: "
                    f"{query!r} (d={distance})"
                )
                compared += 1
        assert cold.look_up_batch(queries) == recovered.look_up_batch(queries)
        compared += len(queries)
        for text in GOLDEN_INPUTS:
            assert (
                cold.normalize(text).to_dict() == recovered.normalize(text).to_dict()
            ), f"recovered normalization diverged on {text!r}"
            compared += 1
        cold.batch.close()
        recovered.batch.close()
    return compared


def test_cold_and_recovered_systems_identical_on_golden_corpus():
    """Crash recovery (chain + WAL replay) must be invisible on the corpus."""
    assert compare_cold_and_recovered_systems() > 0


def test_golden_outputs_survive_unrelated_enrichment(fixture_records):
    """Enriching untouched buckets must not change any golden output."""
    system = CrypText.from_corpus(GOLDEN_BUILD_CORPUS)
    for record in fixture_records:
        system.normalize(record["text"])  # warm caches/memo
    system.learn_from(["completely fresh unrelated chatter flows here"])
    for record in fixture_records:
        assert _result_record(system.normalize(record["text"])) == record


def _regenerate() -> None:
    system = CrypText.from_corpus(GOLDEN_BUILD_CORPUS)
    with FIXTURE_PATH.open("w", encoding="utf-8") as handle:
        for text in GOLDEN_INPUTS:
            record = _result_record(system.normalize(text))
            handle.write(json.dumps(record, ensure_ascii=False, sort_keys=True) + "\n")
    print(f"regenerated {FIXTURE_PATH} ({len(GOLDEN_INPUTS)} records)")


if __name__ == "__main__":  # pragma: no cover - manual fixture regeneration
    _regenerate()
