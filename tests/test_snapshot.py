"""Tests for the warm-start snapshot subsystem.

The contract under test: a snapshot-hydrated system is *observably
identical* to a freshly compiled one (Look Up and Normalization results,
byte for byte), and every failure mode — corruption, format-version drift,
stale fingerprints — degrades to recompilation instead of wrong answers or
a crash.
"""

from __future__ import annotations

import json
import string
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro import CrypText, CrypTextConfig
from repro.core.dictionary import PerturbationDictionary
from repro.core.lookup import LookupEngine
from repro.errors import DictionaryError, SnapshotError
from repro.storage import (
    SNAPSHOT_FORMAT_VERSION,
    read_snapshot,
    write_snapshot,
)

CORPUS = [
    "the demokrats hate the vacc1ne",
    "the dirrty republicans lie",
    "teh vaccine works",
    "mus-lim families moved into the neighborhood",
    "the democRATs and the repubLIEcans argue online",
]

QUERIES = ("vaccine", "democrats", "republicans", "the", "muslim", "zzzz")
TEXTS = (
    "the demokrats push the vacc1ne",
    "teh dirrty republicans",
    "nothing perturbed here",
)


def build_dictionary(config: CrypTextConfig | None = None) -> PerturbationDictionary:
    config = config if config is not None else CrypTextConfig()
    dictionary = PerturbationDictionary(config=config)
    dictionary.add_corpus(CORPUS, source="test")
    dictionary.seed_lexicon()
    return dictionary


@pytest.fixture()
def snapshot_path(tmp_path) -> Path:
    return tmp_path / "dictionary.snapshot.json"


class TestRoundTrip:
    def test_save_then_load_is_lookup_identical(self, snapshot_path):
        original = build_dictionary()
        report = original.save_snapshot(snapshot_path)
        assert report.documents == len(original)
        assert report.buckets > report.families > 0

        hydrated = PerturbationDictionary(config=CrypTextConfig())
        load = hydrated.load_snapshot(snapshot_path)
        assert load.loaded and load.hydrated_tries and load.reason is None
        assert len(hydrated) == len(original)
        assert hydrated.content_fingerprint() == original.content_fingerprint()

        cold_engine = LookupEngine(original)
        warm_engine = LookupEngine(hydrated)
        for query in QUERIES:
            for distance in (1, 3):
                assert cold_engine.look_up(
                    query, max_edit_distance=distance
                ) == warm_engine.look_up(query, max_edit_distance=distance)

    def test_hydrated_tries_serve_without_recompiling(self, snapshot_path):
        original = build_dictionary()
        original.save_snapshot(snapshot_path)
        hydrated = PerturbationDictionary(config=CrypTextConfig())
        hydrated.load_snapshot(snapshot_path)
        LookupEngine(hydrated).look_up("vaccine")
        stats = hydrated.compiled_cache_stats()
        # The pre-seeded LRU serves the query; nothing recompiles.
        assert stats["hits"] >= 1
        assert stats["misses"] == 0
        assert stats["families"]["families_adopted"] > 0

    def test_full_system_cold_vs_warm_normalization(self, tmp_path):
        cold = CrypText.from_corpus(CORPUS)
        path = tmp_path / "snap.json"
        cold.save_snapshot(path)
        warm = CrypText.empty(seed_lexicon=False)
        report = warm.load_snapshot(path)
        assert report.loaded
        # The warm system has no trained scorer — compare candidate-level
        # outputs through dictionaries with identical (scorer-free) setups.
        cold_plain = CrypText(dictionary=cold.dictionary, config=cold.config)
        for text in TEXTS:
            assert (
                cold_plain.normalize(text).to_dict() == warm.normalize(text).to_dict()
            )

    def test_save_requires_a_path_or_configured_dir(self):
        dictionary = build_dictionary()
        with pytest.raises(DictionaryError):
            dictionary.save_snapshot()

    def test_snapshot_dir_config_provides_default_path(self, tmp_path):
        config = CrypTextConfig(snapshot_dir=str(tmp_path))
        dictionary = build_dictionary(config)
        report = dictionary.save_snapshot()
        assert Path(report.path).parent == tmp_path
        fresh = PerturbationDictionary(config=config)
        assert fresh.load_snapshot().loaded


class TestRoundTripProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.text(alphabet=string.ascii_lowercase + "013@-", min_size=1, max_size=10),
            min_size=1,
            max_size=25,
        ),
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
    )
    def test_random_corpora_round_trip(self, tmp_path_factory, tokens, query):
        path = tmp_path_factory.mktemp("snap") / "s.json"
        config = CrypTextConfig(cache_enabled=False)
        original = PerturbationDictionary(config=config)
        for token in tokens:
            original.add_token(token, source="prop")
        original.save_snapshot(path)
        hydrated = PerturbationDictionary(config=config)
        assert hydrated.load_snapshot(path).loaded
        cold_engine = LookupEngine(original, config=config)
        warm_engine = LookupEngine(hydrated, config=config)
        probes = [query, *tokens[:5]]
        for probe in probes:
            for distance in (0, 2):
                assert cold_engine.look_up(
                    probe, max_edit_distance=distance
                ) == warm_engine.look_up(probe, max_edit_distance=distance)


class TestCorruptionAndVersioning:
    def test_missing_file_falls_back(self, snapshot_path):
        dictionary = build_dictionary()
        report = dictionary.load_snapshot(snapshot_path)
        assert not report.loaded and not report.hydrated_tries
        assert "no such file" in report.reason
        # Dictionary untouched and still serving.
        assert len(dictionary) > 0
        with pytest.raises(SnapshotError):
            dictionary.load_snapshot(snapshot_path, strict=True)

    def test_truncated_file_falls_back(self, snapshot_path):
        dictionary = build_dictionary()
        dictionary.save_snapshot(snapshot_path)
        text = snapshot_path.read_text(encoding="utf-8")
        snapshot_path.write_text(text[: len(text) // 2], encoding="utf-8")
        fresh = PerturbationDictionary(config=CrypTextConfig())
        report = fresh.load_snapshot(snapshot_path)
        assert not report.loaded
        assert len(fresh) == 0

    def test_flipped_payload_fails_checksum(self, snapshot_path):
        dictionary = build_dictionary()
        dictionary.save_snapshot(snapshot_path)
        header, body = snapshot_path.read_text(encoding="utf-8").split("\n", 1)
        tampered = json.loads(body)
        tampered["dictionary_version"] += 1
        snapshot_path.write_text(
            header + "\n" + json.dumps(tampered), encoding="utf-8"
        )
        with pytest.raises(SnapshotError, match="checksum"):
            read_snapshot(snapshot_path)
        report = PerturbationDictionary(config=CrypTextConfig()).load_snapshot(
            snapshot_path
        )
        assert not report.loaded and "checksum" in report.reason

    def test_foreign_format_version_falls_back(self, snapshot_path):
        dictionary = build_dictionary()
        dictionary.save_snapshot(snapshot_path)
        header, body = snapshot_path.read_text(encoding="utf-8").split("\n", 1)
        envelope = json.loads(header)
        envelope["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        snapshot_path.write_text(
            json.dumps(envelope) + "\n" + body, encoding="utf-8"
        )
        with pytest.raises(SnapshotError, match="format version"):
            read_snapshot(snapshot_path)
        report = PerturbationDictionary(config=CrypTextConfig()).load_snapshot(
            snapshot_path
        )
        assert not report.loaded and "format version" in report.reason

    def test_structurally_foreign_family_degrades_to_documents_only(
        self, snapshot_path
    ):
        dictionary = build_dictionary()
        dictionary.save_snapshot(snapshot_path)
        snapshot = read_snapshot(snapshot_path)
        broken = snapshot.__class__(
            dictionary_version=snapshot.dictionary_version,
            fingerprint=snapshot.fingerprint,
            config=snapshot.config,
            documents=snapshot.documents,
            families=({"tokens": "not-a-list", "tries": 7},) + snapshot.families[1:],
            buckets=snapshot.buckets,
        )
        write_snapshot(snapshot_path, broken)
        fresh = PerturbationDictionary(config=CrypTextConfig())
        report = fresh.load_snapshot(snapshot_path)
        # Documents landed; tries fall back to lazy recompilation.
        assert report.loaded and not report.hydrated_tries
        assert len(fresh) == len(dictionary)
        assert LookupEngine(fresh).look_up("vaccine") == LookupEngine(
            dictionary
        ).look_up("vaccine")

    def test_corrupt_trie_rows_fall_back_to_compilation_per_bucket(
        self, snapshot_path
    ):
        dictionary = build_dictionary()
        dictionary.save_snapshot(snapshot_path)
        snapshot = read_snapshot(snapshot_path)
        # Corrupt every family's serialized rows but keep the structure
        # (tokens + tries mapping) intact: hydration is lazy, so the damage
        # surfaces at query time — where it must degrade to a fresh compile,
        # never to an error or a wrong match.
        vandalized = tuple(
            {"tokens": family["tokens"], "tries": {"raw": [["bad row"]]}}
            for family in snapshot.families
        )
        broken = snapshot.__class__(
            dictionary_version=snapshot.dictionary_version,
            fingerprint=snapshot.fingerprint,
            config=snapshot.config,
            documents=snapshot.documents,
            families=vandalized,
            buckets=snapshot.buckets,
        )
        write_snapshot(snapshot_path, broken)
        fresh = PerturbationDictionary(config=CrypTextConfig())
        report = fresh.load_snapshot(snapshot_path)
        assert report.loaded and report.hydrated_tries
        for query in QUERIES:
            assert LookupEngine(fresh).look_up(query) == LookupEngine(
                dictionary
            ).look_up(query)


class TestShardedWarmStart:
    def test_batch_engine_hydrates_without_recompiling(self, tmp_path):
        system = CrypText.from_corpus(CORPUS)
        path = tmp_path / "snap.json"
        system.save_snapshot(path)

        fresh = CrypText.empty(seed_lexicon=False)
        assert fresh.load_snapshot(path).loaded
        report = fresh.batch.warm_from_snapshot(path)
        assert report.loaded and report.hydrated_tries and report.buckets > 0
        queries = ["vaccine", "democrats", "republicans", "vaccine"]
        assert system.look_up_batch(queries) == fresh.look_up_batch(queries)
        shard_stats = fresh.batch.index.compiled_cache_stats()
        assert shard_stats["misses"] == 0 and shard_stats["size"] > 0

    def test_stale_snapshot_is_refused_and_engine_still_serves(self, tmp_path):
        system = CrypText.from_corpus(CORPUS)
        path = tmp_path / "snap.json"
        system.save_snapshot(path)
        system.learn_from(["brand new chatter changes the fingerprint"])
        report = system.batch.warm_from_snapshot(path)
        assert not report.loaded
        assert "fingerprint" in report.reason
        # Fallback warmed the index the normal way; results are correct.
        assert system.look_up_batch(["vaccine"])[0] == system.look_up("vaccine")

    def test_writes_after_hydration_invalidate_warm_buckets(self, tmp_path):
        system = CrypText.from_corpus(CORPUS)
        path = tmp_path / "snap.json"
        system.save_snapshot(path)
        fresh = CrypText.empty(seed_lexicon=False)
        assert fresh.load_snapshot(path).loaded
        before = fresh.look_up("vaccine")
        fresh.learn_from(["a vacine variant spotted"])
        after = fresh.look_up("vaccine")
        assert "vacine" in after.tokens
        assert before != after


class TestShardedSnapshotV2:
    """The mmap-friendly sharded layout: round trips, fallbacks, laziness."""

    def test_direct_write_read_open_round_trip(self, tmp_path):
        from repro.storage.snapshot import (
            open_sharded_snapshot,
            read_sharded_snapshot,
            write_sharded_snapshot,
        )

        original = build_dictionary()
        snapshot = original.build_snapshot()
        layout = tmp_path / "dictionary.snapshot.d"
        write_sharded_snapshot(layout, snapshot, 3)
        eager = read_sharded_snapshot(layout)
        assert eager.body() == snapshot.body()
        mapped = open_sharded_snapshot(layout)
        assert mapped.snapshot.fingerprint == snapshot.fingerprint
        assert mapped.mapped_bytes > 0
        # Lazy families materialize to the exact eager payloads.
        assert [dict(f) for f in mapped.snapshot.families] == [
            dict(f) for f in eager.families
        ]

    def test_config_shards_switches_the_save_format(self, snapshot_path):
        original = build_dictionary(CrypTextConfig(snapshot_shards=2))
        original.save_snapshot(snapshot_path)
        layout = snapshot_path.with_name("dictionary.snapshot.d")
        assert (layout / "manifest.json").is_file()
        assert sorted(p.name for p in layout.glob("shard-*.bin")) == [
            "shard-00.bin",
            "shard-01.bin",
        ]
        # The stale v1 location is cleared; loading by the conventional
        # path resolves the v2 layout transparently.
        assert not snapshot_path.exists()
        hydrated = PerturbationDictionary(config=CrypTextConfig())
        load = hydrated.load_snapshot(snapshot_path)
        assert load.loaded and load.hydrated_tries
        assert hydrated.content_fingerprint() == original.content_fingerprint()

    def test_v1_save_removes_a_stale_v2_layout(self, snapshot_path):
        dictionary = build_dictionary()
        dictionary.save_snapshot(snapshot_path, shards=2)
        layout = snapshot_path.with_name("dictionary.snapshot.d")
        assert (layout / "manifest.json").is_file()
        dictionary.save_snapshot(snapshot_path)  # config default: v1
        assert snapshot_path.is_file()
        assert not layout.exists()

    def test_lookup_identical_across_formats(self, tmp_path):
        original = build_dictionary()
        v1_path = tmp_path / "v1" / "dictionary.snapshot.json"
        v2_path = tmp_path / "v2" / "dictionary.snapshot.json"
        original.save_snapshot(v1_path)
        original.save_snapshot(v2_path, shards=3)
        from_v1 = PerturbationDictionary(config=CrypTextConfig())
        from_v2 = PerturbationDictionary(config=CrypTextConfig())
        assert from_v1.load_snapshot(v1_path).loaded
        assert from_v2.load_snapshot(v2_path).loaded
        engine_v1 = LookupEngine(from_v1)
        engine_v2 = LookupEngine(from_v2)
        for query in QUERIES:
            for distance in (1, 3):
                assert engine_v1.look_up(
                    query, max_edit_distance=distance
                ) == engine_v2.look_up(query, max_edit_distance=distance)

    def test_corrupt_v2_falls_back_to_v1_file_beside_it(self, snapshot_path):
        from repro.storage.snapshot import resolve_snapshot, write_sharded_snapshot

        dictionary = build_dictionary()
        snapshot = dictionary.build_snapshot()
        write_snapshot(snapshot_path, snapshot)
        layout = snapshot_path.with_name("dictionary.snapshot.d")
        write_sharded_snapshot(layout, snapshot, 2)
        # Truncate one shard: v2 resolution fails its structural check, and
        # the intact v1 file besides it answers instead.
        shard = layout / "shard-00.bin"
        shard.write_bytes(shard.read_bytes()[:10])
        resolved = resolve_snapshot(snapshot_path, strict=True)
        assert resolved.fingerprint == snapshot.fingerprint

    def test_corrupt_record_crc_is_detected(self, tmp_path):
        from repro.storage.snapshot import (
            read_sharded_snapshot,
            write_sharded_snapshot,
        )

        snapshot = build_dictionary().build_snapshot()
        layout = tmp_path / "dictionary.snapshot.d"
        write_sharded_snapshot(layout, snapshot, 1)
        shard = layout / "shard-00.bin"
        blob = bytearray(shard.read_bytes())
        blob[-3] ^= 0xFF  # flip a byte inside the last record's JSON
        shard.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            read_sharded_snapshot(layout)

    def test_graceful_load_degrades_on_v2_only_corruption(self, snapshot_path):
        dictionary = build_dictionary()
        dictionary.save_snapshot(snapshot_path, shards=2)
        layout = snapshot_path.with_name("dictionary.snapshot.d")
        (layout / "manifest.json").write_text("garbage", encoding="utf-8")
        fresh = PerturbationDictionary(config=CrypTextConfig())
        report = fresh.load_snapshot(snapshot_path)  # strict=False default
        assert not report.loaded and report.reason

    def test_mapped_families_stay_lazy_until_queried(self, tmp_path):
        from repro.storage.snapshot import (
            LazyFamilyPayload,
            open_sharded_snapshot,
            write_sharded_snapshot,
        )

        snapshot = build_dictionary().build_snapshot()
        layout = tmp_path / "dictionary.snapshot.d"
        write_sharded_snapshot(layout, snapshot, 2)
        mapped = open_sharded_snapshot(layout)
        payloads = list(mapped.snapshot.families)
        assert payloads and all(
            isinstance(payload, LazyFamilyPayload) for payload in payloads
        )
        # Opening parsed only the shard headers: no family record yet.
        assert all(payload._record is None for payload in payloads)
        _ = payloads[0]["tries"]
        assert payloads[0]._record is not None
        assert sum(1 for payload in payloads if payload._record is not None) == 1

    def test_shrinking_the_shard_count_removes_stale_files(self, tmp_path):
        from repro.storage.snapshot import (
            read_sharded_snapshot,
            write_sharded_snapshot,
        )

        snapshot = build_dictionary().build_snapshot()
        layout = tmp_path / "dictionary.snapshot.d"
        write_sharded_snapshot(layout, snapshot, 4)
        assert len(list(layout.glob("shard-*.bin"))) == 4
        write_sharded_snapshot(layout, snapshot, 2)
        assert len(list(layout.glob("shard-*.bin"))) == 2
        assert read_sharded_snapshot(layout).body() == snapshot.body()

    def test_delta_chain_folds_into_a_sharded_base(self, tmp_path):
        from repro.storage.snapshot import sharded_manifest_info
        from repro.wal.delta import compact_chain, list_delta_paths

        config = CrypTextConfig(snapshot_shards=2, snapshot_dir=str(tmp_path))
        dictionary = build_dictionary(config)
        dictionary.save_snapshot()
        dictionary.add_token("freshtoken", source="test")
        report = dictionary.save_snapshot(incremental=True)
        assert report.incremental and report.delta_index == 1
        assert len(list_delta_paths(tmp_path)) == 1
        chain = compact_chain(tmp_path)
        assert chain.deltas_applied == 1
        assert list_delta_paths(tmp_path) == []
        # Compaction preserved the sharded layout at its original width.
        layout = tmp_path / "dictionary.snapshot.d"
        assert sharded_manifest_info(layout)["shard_count"] == 2
        hydrated = PerturbationDictionary(config=CrypTextConfig())
        assert hydrated.load_snapshot(tmp_path / "dictionary.snapshot.json").loaded
        assert "freshtoken" in LookupEngine(hydrated).look_up("freshtoken").tokens


class TestCompiledCacheCounters:
    def test_dictionary_counters_track_hits_misses_and_invalidations(self):
        dictionary = build_dictionary()
        engine = LookupEngine(dictionary, config=CrypTextConfig(cache_enabled=False))
        engine.look_up("vaccine")
        engine.look_up("vaccine")
        stats = dictionary.compiled_cache_stats()
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        dictionary.add_token("vacine")
        assert dictionary.compiled_cache_stats()["invalidations"] >= 1

    def test_dictionary_stats_exports_compiled_cache(self):
        dictionary = build_dictionary()
        payload = dictionary.stats().to_dict()
        assert "compiled_cache" in payload
        for key in (
            "hits",
            "misses",
            "evictions",
            "invalidations",
            "families",
            "kernel",
            "kernels",
        ):
            assert key in payload["compiled_cache"]
        assert set(payload["compiled_cache"]["kernels"]) == {
            "myers",
            "banded",
            "symspell",
            "linear",
        }

    def test_kernel_hit_counters_attribute_compiled_and_linear_matches(self):
        dictionary = build_dictionary()
        compiled = LookupEngine(dictionary, config=CrypTextConfig(cache_enabled=False))
        compiled.look_up("vaccine")
        kernels = dictionary.compiled_cache_stats()["kernels"]
        assert sum(kernels.values()) >= 1
        assert kernels["linear"] == 0
        linear = LookupEngine(
            dictionary,
            config=CrypTextConfig(cache_enabled=False, compiled_buckets=False),
        )
        linear.look_up("vaccine")
        kernels = dictionary.compiled_cache_stats()["kernels"]
        assert kernels["linear"] >= 1

    def test_kernel_policy_forces_the_selected_kernel(self):
        for policy in ("myers", "banded"):
            dictionary = build_dictionary()
            engine = LookupEngine(
                dictionary,
                config=CrypTextConfig(cache_enabled=False, match_kernel=policy),
            )
            engine.look_up("vaccine")
            kernels = dictionary.compiled_cache_stats()["kernels"]
            assert kernels[policy] >= 1, policy
            others = {name: hits for name, hits in kernels.items() if name != policy}
            assert sum(others.values()) == 0, policy

    def test_shard_stats_and_engine_stats_export_compiled_counters(self):
        system = CrypText.from_corpus(CORPUS)
        system.look_up_batch(["vaccine", "democrats", "vaccine"])
        shard_payloads = [s.to_dict() for s in system.batch.index.shard_stats()]
        assert all("compiled_hits" in payload for payload in shard_payloads)
        engine_stats = system.batch.stats()
        compiled = engine_stats["compiled_buckets"]
        assert set(compiled) == {"shards", "dictionary", "kernels"}
        assert compiled["shards"]["misses"] >= 1
        # Three queries, two unique after batch dedup — each unique query
        # performs one counted match.
        assert sum(compiled["kernels"].values()) >= 2

    def test_trie_families_shared_across_levels(self):
        dictionary = build_dictionary()
        # Compile the same token's bucket at every materialized level: the
        # singleton buckets (and any level-stable bucket) share one family.
        key_counts = 0
        for level in dictionary.phonetic_levels:
            for entry in dictionary.iter_entries():
                key = entry.key_at(level)
                if key is not None:
                    dictionary.compiled_bucket(key, phonetic_level=level)
                    key_counts += 1
        stats = dictionary.trie_families.stats()
        assert stats["families_created"] < stats["views"]
        assert stats["families_shared"] > 0
