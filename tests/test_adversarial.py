"""Tests for repro.adversarial (TextBugger, VIPER, DeepWordBug baselines)."""

from __future__ import annotations

import pytest

from repro.adversarial import DeepWordBug, TextBugger, Viper
from repro.adversarial.textbugger import KEYBOARD_NEIGHBORS, TEXTBUGGER_OPERATORS
from repro.adversarial.viper import VISUAL_VARIANTS
from repro.errors import CrypTextError
from repro.text.unicode_fold import fold_text

SENTENCE = "the democrats support the vaccine mandate for everyone"


class TestSharedBehaviour:
    @pytest.mark.parametrize("attack_cls", [TextBugger, Viper, DeepWordBug])
    def test_zero_ratio_is_identity(self, attack_cls):
        attack = attack_cls(seed=3)
        assert attack.perturb(SENTENCE, ratio=0.0) == SENTENCE

    @pytest.mark.parametrize("attack_cls", [TextBugger, Viper, DeepWordBug])
    def test_positive_ratio_changes_text(self, attack_cls):
        attack = attack_cls(seed=3)
        assert attack.perturb(SENTENCE, ratio=0.5) != SENTENCE

    @pytest.mark.parametrize("attack_cls", [TextBugger, Viper, DeepWordBug])
    def test_deterministic_given_seed(self, attack_cls):
        assert attack_cls(seed=11).perturb(SENTENCE, 0.5) == attack_cls(seed=11).perturb(
            SENTENCE, 0.5
        )

    @pytest.mark.parametrize("attack_cls", [TextBugger, Viper, DeepWordBug])
    def test_records_describe_changes(self, attack_cls):
        attack = attack_cls(seed=5)
        perturbed, records = attack.perturb_with_records(SENTENCE, ratio=0.5)
        assert records
        for record in records:
            assert SENTENCE[record.start:record.end] == record.original
            assert record.perturbed != record.original
            assert record.operator
            payload = record.to_dict()
            assert payload["original"] == record.original

    @pytest.mark.parametrize("attack_cls", [TextBugger, Viper, DeepWordBug])
    def test_short_tokens_skipped(self, attack_cls):
        attack = attack_cls(seed=5)
        # every token shorter than the default minimum length -> no change
        assert attack.perturb("a an it is to we", ratio=1.0) == "a an it is to we"

    @pytest.mark.parametrize("attack_cls", [TextBugger, Viper, DeepWordBug])
    def test_invalid_ratio_rejected(self, attack_cls):
        with pytest.raises(CrypTextError):
            attack_cls().perturb(SENTENCE, ratio=1.5)

    @pytest.mark.parametrize("attack_cls", [TextBugger, Viper, DeepWordBug])
    def test_perturb_many(self, attack_cls):
        outputs = attack_cls(seed=1).perturb_many([SENTENCE, SENTENCE], ratio=0.25)
        assert len(outputs) == 2


class TestTextBugger:
    def test_operator_inventory(self):
        assert set(TEXTBUGGER_OPERATORS) == {"insert", "delete", "swap", "sub-c", "sub-w"}

    def test_single_operator_restriction(self):
        attack = TextBugger(seed=2, operators=["delete"])
        perturbed, records = attack.perturb_with_records(SENTENCE, ratio=1.0)
        assert all(record.operator == "delete" for record in records)
        for record in records:
            assert len(record.perturbed) == len(record.original) - 1

    def test_sub_w_uses_visual_symbols(self):
        attack = TextBugger(seed=2, operators=["sub-w"])
        _, records = attack.perturb_with_records(SENTENCE, ratio=1.0)
        assert any(not record.perturbed.isalpha() for record in records)

    def test_sub_c_uses_keyboard_neighbors(self):
        attack = TextBugger(seed=4, operators=["sub-c"])
        _, records = attack.perturb_with_records("vaccine mandate", ratio=1.0)
        for record in records:
            if record.operator != "sub-c":
                continue
            diffs = [
                (orig, new)
                for orig, new in zip(record.original, record.perturbed)
                if orig != new
            ]
            assert diffs
            original_char, new_char = diffs[0]
            assert new_char.lower() in KEYBOARD_NEIGHBORS.get(original_char.lower(), "")

    def test_unknown_operator_rejected(self):
        with pytest.raises(CrypTextError):
            TextBugger(operators=["explode"])
        with pytest.raises(CrypTextError):
            TextBugger(operators=[])


class TestViper:
    def test_replacements_are_accent_variants(self):
        attack = Viper(seed=3, prob=1.0)
        _, records = attack.perturb_with_records(SENTENCE, ratio=1.0)
        for record in records:
            # folding the accents back recovers the original token
            assert fold_text(record.perturbed) == record.original

    def test_variant_table_covers_all_letters_used(self):
        assert set(VISUAL_VARIANTS) >= set("aeioudlmnrst")

    def test_prob_validation(self):
        with pytest.raises(CrypTextError):
            Viper(prob=0.0)
        with pytest.raises(CrypTextError):
            Viper(prob=1.5)

    def test_selected_token_always_changes(self):
        attack = Viper(seed=9, prob=0.01)
        _, records = attack.perturb_with_records("vaccine", ratio=1.0)
        assert records and records[0].perturbed != "vaccine"


class TestDeepWordBug:
    def test_operator_restriction(self):
        attack = DeepWordBug(seed=3, operators=["swap"])
        _, records = attack.perturb_with_records(SENTENCE, ratio=1.0)
        for record in records:
            assert record.operator in {"swap", "delete"}  # delete is the fallback
            assert sorted(record.perturbed.lower()) == sorted(record.original.lower()) or len(
                record.perturbed
            ) == len(record.original) - 1

    def test_homoglyph_substitution(self):
        attack = DeepWordBug(seed=3, operators=["substitute"], use_homoglyphs=True)
        _, records = attack.perturb_with_records(SENTENCE, ratio=1.0)
        assert any(not record.perturbed.isalpha() for record in records)

    def test_ascii_substitution_mode(self):
        attack = DeepWordBug(seed=3, operators=["substitute"], use_homoglyphs=False)
        _, records = attack.perturb_with_records(SENTENCE, ratio=1.0)
        for record in records:
            assert all(char.isalpha() for char in record.perturbed)

    def test_unknown_operator_rejected(self):
        with pytest.raises(CrypTextError):
            DeepWordBug(operators=["nuke"])


class TestContrastWithHumanPerturbations:
    def test_machine_baselines_rarely_produce_observed_human_tokens(self, cryptext_synthetic):
        # §III-D: CrypText's replacements are guaranteed to be observed
        # human-written tokens; machine baselines generally are not.
        attack = TextBugger(seed=13)
        _, records = attack.perturb_with_records(
            "the democrats support the vaccine mandate for the republicans", ratio=1.0
        )
        observed = sum(
            1 for record in records if record.perturbed in cryptext_synthetic.dictionary
        )
        assert observed <= len(records) // 2

    def test_cryptext_replacements_always_observed(self, cryptext_synthetic):
        outcome = cryptext_synthetic.perturb(
            "the democrats support the vaccine mandate for the republicans", ratio=1.0
        )
        for replacement in outcome.replacements:
            assert replacement.perturbed in cryptext_synthetic.dictionary
