"""Tests for the segmented change log (:mod:`repro.wal.log`).

The contract under test: every acknowledged append is replayable in order
and exactly once (idempotent by sequence number), a crash mid-append is
detected as a torn tail and truncated instead of propagating garbage, and
maintenance (rotation, truncation, epoch reset) never loses an uncovered
record.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WalError
from repro.wal import ChangeLog, WalRecord
from repro.wal.log import decode_segment, encode_record


def _append_n(wal: ChangeLog, count: int, start: int = 0) -> None:
    for index in range(start, start + count):
        wal.append("add_token", {"token": f"tok{index}", "source": "t", "count": 1})


class TestFraming:
    def test_encode_decode_round_trip(self):
        record = WalRecord(seq=7, op="add_token", payload={"token": "vacc1ne", "count": 2})
        records, valid = decode_segment(encode_record(record))
        assert records == [record]
        assert valid == len(encode_record(record))

    def test_decode_stops_at_partial_header(self):
        frame = encode_record(WalRecord(seq=1, op="x", payload={}))
        records, valid = decode_segment(frame + b"0001")
        assert [r.seq for r in records] == [1]
        assert valid == len(frame)

    def test_decode_stops_at_short_payload(self):
        frame = encode_record(WalRecord(seq=1, op="x", payload={}))
        torn = encode_record(WalRecord(seq=2, op="x", payload={"token": "abcdef"}))[:-4]
        records, valid = decode_segment(frame + torn)
        assert [r.seq for r in records] == [1]
        assert valid == len(frame)

    def test_decode_rejects_checksum_mismatch(self):
        frame = bytearray(encode_record(WalRecord(seq=1, op="x", payload={"token": "aa"})))
        frame[-3] = frame[-3] ^ 0x01  # flip a payload byte, keep the frame shape
        records, valid = decode_segment(bytes(frame))
        assert records == [] and valid == 0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(min_size=1, max_size=12),
                st.integers(min_value=1, max_value=5),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_random_payloads_round_trip(self, entries):
        data = b"".join(
            encode_record(WalRecord(seq=i, op="add_token", payload={"token": t, "count": c}))
            for i, (t, c) in enumerate(entries, start=1)
        )
        records, valid = decode_segment(data)
        assert valid == len(data)
        assert [(r.payload["token"], r.payload["count"]) for r in records] == entries


class TestAppendAndReplay:
    def test_append_assigns_contiguous_sequences(self, tmp_path):
        wal = ChangeLog(tmp_path)
        _append_n(wal, 10)
        assert wal.last_seq == 10
        assert [r.seq for r in wal.iter_records()] == list(range(1, 11))

    def test_iter_after_seq_is_exclusive(self, tmp_path):
        wal = ChangeLog(tmp_path)
        _append_n(wal, 10)
        assert [r.seq for r in wal.iter_records(after_seq=7)] == [8, 9, 10]
        assert list(wal.iter_records(after_seq=10)) == []

    def test_reopen_resumes_sequences(self, tmp_path):
        _append_n(ChangeLog(tmp_path), 5)
        wal = ChangeLog(tmp_path)
        assert wal.last_seq == 5
        _append_n(wal, 3, start=5)
        assert [r.seq for r in ChangeLog(tmp_path).iter_records()] == list(range(1, 9))

    def test_rotation_splits_segments(self, tmp_path):
        wal = ChangeLog(tmp_path, segment_bytes=128)
        _append_n(wal, 40)
        stats = wal.stats()
        assert stats.segments > 1
        assert stats.records == 40
        # Replay is seamless across the segment boundaries.
        assert [r.seq for r in wal.iter_records()] == list(range(1, 41))

    def test_append_to_closed_log_raises(self, tmp_path):
        wal = ChangeLog(tmp_path)
        wal.close()
        with pytest.raises(WalError):
            wal.append("add_token", {"token": "x"})

    @settings(max_examples=25, deadline=None)
    @given(
        tokens=st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=40),
        segment_bytes=st.integers(min_value=64, max_value=512),
        after=st.integers(min_value=0, max_value=45),
    )
    def test_replay_property(self, tmp_path_factory, tokens, segment_bytes, after):
        """Replay returns exactly the records past ``after``, in order,
        regardless of where segment boundaries fall."""
        directory = tmp_path_factory.mktemp("wal")
        wal = ChangeLog(directory, segment_bytes=segment_bytes)
        for token in tokens:
            wal.append("add_token", {"token": token, "source": None, "count": 1})
        replayed = [r.payload["token"] for r in ChangeLog(directory).iter_records(after)]
        assert replayed == tokens[after:]


class TestTornTail:
    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        wal = ChangeLog(tmp_path)
        _append_n(wal, 6)
        segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
        with segment.open("ab") as handle:
            handle.write(b"00000042deadbeef{\"seq\": 7, \"op\"")  # cut mid-payload
        reopened = ChangeLog(tmp_path)
        assert reopened.last_seq == 6
        assert reopened.stats().torn_bytes > 0
        # The tail was physically truncated: appends resume cleanly.
        _append_n(reopened, 1, start=6)
        assert [r.seq for r in ChangeLog(tmp_path).iter_records()] == list(range(1, 8))

    def test_repair_rescans_and_keeps_fresh_appends(self, tmp_path):
        """repair() must decode the tail as it is *now*: complete frames
        another handle appended after this handle's scan are records, not
        torn bytes."""
        writer = ChangeLog(tmp_path)
        _append_n(writer, 3)
        reader = ChangeLog(tmp_path)  # scanned at 3 records
        _append_n(writer, 2, start=3)  # live writer keeps appending
        assert reader.repair() == 0  # nothing torn — nothing truncated
        assert reader.last_seq == 5  # bookkeeping refreshed from disk
        assert [r.seq for r in ChangeLog(tmp_path).iter_records()] == [1, 2, 3, 4, 5]

    def test_scan_reports_torn_bytes_without_repairing(self, tmp_path):
        wal = ChangeLog(tmp_path)
        _append_n(wal, 3)
        segment = sorted(tmp_path.glob("wal-*.seg"))[-1]
        before = segment.stat().st_size
        with segment.open("ab") as handle:
            handle.write(b"garbage")
        stats = ChangeLog.scan(tmp_path)
        assert stats.torn_bytes == 7
        assert stats.records == 3
        assert segment.stat().st_size == before + 7  # untouched

    def test_interior_corruption_refuses_to_replay(self, tmp_path):
        wal = ChangeLog(tmp_path, segment_bytes=64)
        _append_n(wal, 20)
        first = sorted(tmp_path.glob("wal-*.seg"))[0]
        data = bytearray(first.read_bytes())
        data[len(data) // 2] ^= 0xFF
        first.write_bytes(bytes(data))
        with pytest.raises(WalError):
            ChangeLog(tmp_path)


class TestMaintenance:
    def test_truncate_through_deletes_covered_segments(self, tmp_path):
        wal = ChangeLog(tmp_path, segment_bytes=96)
        _append_n(wal, 30)
        assert wal.stats().segments > 2
        covered = [s for s in sorted(tmp_path.glob("wal-*.seg"))]
        wal.truncate_through(15)
        remaining = [r.seq for r in wal.iter_records()]
        # Everything past 15 survives; earlier records may survive only in
        # the first retained segment (no in-place splicing).
        assert [r for r in remaining if r > 15] == list(range(16, 31))
        assert wal.stats().segments < len(covered)
        # Appends continue with contiguous sequences after truncation.
        _append_n(wal, 2, start=30)
        assert wal.last_seq == 32

    def test_truncate_everything_keeps_sequence_monotonic(self, tmp_path):
        wal = ChangeLog(tmp_path, segment_bytes=64)
        _append_n(wal, 12)
        wal.truncate_through(12)
        assert list(wal.iter_records()) == []
        assert wal.last_seq == 12  # floor preserved by the empty segment
        _append_n(wal, 1, start=12)
        assert [r.seq for r in wal.iter_records()] == [13]
        # ... and the floor survives a reopen.
        assert ChangeLog(tmp_path).last_seq == 13

    def test_reset_raises_sequence_floor(self, tmp_path):
        wal = ChangeLog(tmp_path)
        _append_n(wal, 4)
        wal.reset(next_seq_floor=100)
        assert list(wal.iter_records()) == []
        record = wal.append("add_token", {"token": "fresh"})
        assert record.seq == 101

    def test_ensure_seq_at_least_noop_when_past(self, tmp_path):
        wal = ChangeLog(tmp_path)
        _append_n(wal, 9)
        wal.ensure_seq_at_least(5)
        assert [r.seq for r in wal.iter_records()] == list(range(1, 10))
        wal.ensure_seq_at_least(50)
        assert list(wal.iter_records()) == []
        assert wal.append("add_token", {"token": "x"}).seq == 51


class TestFailedAppend:
    def test_failed_append_rolls_back_partial_frame(self, tmp_path):
        """A write that dies mid-frame must not leave garbage that later
        successful appends land after — they would be acknowledged yet
        destroyed by recovery's torn-tail truncation."""
        wal = ChangeLog(tmp_path)
        _append_n(wal, 2)

        class HalfWriter:
            def __init__(self, inner):
                self.inner = inner

            def write(self, data):
                self.inner.write(data[: len(data) // 2])
                self.inner.flush()
                raise OSError("disk full")

            def __getattr__(self, name):
                return getattr(self.inner, name)

        real_handle = wal._tail_handle_locked(sorted(tmp_path.glob("wal-*.seg"))[0])
        wal._handle = HalfWriter(real_handle)
        with pytest.raises(WalError):
            wal.append("add_token", {"token": "doomed"})
        # The partial frame was rolled back; the next append is replayable.
        record = wal.append("add_token", {"token": "survivor"})
        assert record.seq == 3
        assert [r.payload.get("token") for r in ChangeLog(tmp_path).iter_records()] == [
            "tok0",
            "tok1",
            "survivor",
        ]


class TestForeignFiles:
    def test_foreign_file_in_directory_raises(self, tmp_path):
        (tmp_path / "wal-notanumber.seg").write_text("junk")
        with pytest.raises(WalError):
            ChangeLog(tmp_path)

    def test_record_payload_survives_json(self, tmp_path):
        wal = ChangeLog(tmp_path)
        wal.append("add_token", {"token": "naïve🙂", "source": "unicode", "count": 3})
        (record,) = list(wal.iter_records())
        assert record.payload == {"token": "naïve🙂", "source": "unicode", "count": 3}
        # The on-disk payload is honest JSON.
        segment = sorted(tmp_path.glob("wal-*.seg"))[0]
        payload = segment.read_bytes()[16:-1]
        assert json.loads(payload)["token"] == "naïve🙂"
