"""Tests for repro.classifiers.features."""

from __future__ import annotations

import pytest

from repro.classifiers import NgramVectorizer
from repro.errors import ClassifierError

CORPUS = [
    "the democrats support the vaccine mandate",
    "the republicans oppose the vaccine mandate",
    "i hate these corrupt politicians",
    "what a wonderful day for everyone",
]


class TestFitting:
    def test_fit_builds_vocabulary(self):
        vectorizer = NgramVectorizer().fit(CORPUS)
        assert len(vectorizer) > 0
        assert any(name.startswith("w1:") for name in vectorizer.vocabulary)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ClassifierError):
            NgramVectorizer().fit([])

    def test_transform_before_fit_rejected(self):
        with pytest.raises(ClassifierError):
            NgramVectorizer().transform_one("hello world")

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ClassifierError):
            NgramVectorizer(word_ngrams=(2, 1))
        with pytest.raises(ClassifierError):
            NgramVectorizer(char_ngrams=(0, 3))
        with pytest.raises(ClassifierError):
            NgramVectorizer(min_document_frequency=0)


class TestTransform:
    def test_word_unigrams_counted(self):
        vectorizer = NgramVectorizer(word_ngrams=(1, 1), char_ngrams=None).fit(CORPUS)
        vector = vectorizer.transform_one("the vaccine the mandate")
        assert vector["w1:the"] == 2
        assert vector["w1:vaccine"] == 1

    def test_word_bigrams_present(self):
        vectorizer = NgramVectorizer(word_ngrams=(1, 2), char_ngrams=None).fit(CORPUS)
        vector = vectorizer.transform_one("the vaccine mandate")
        assert "w2:vaccine mandate" in vector

    def test_char_ngrams_present(self):
        vectorizer = NgramVectorizer(word_ngrams=(1, 1), char_ngrams=(3, 3)).fit(CORPUS)
        vector = vectorizer.transform_one("vaccine")
        assert any(name.startswith("c3:") for name in vector)

    def test_unseen_features_dropped(self):
        vectorizer = NgramVectorizer(word_ngrams=(1, 1), char_ngrams=None).fit(CORPUS)
        vector = vectorizer.transform_one("zyxwv qqqqq")
        assert vector == {}

    def test_lowercase_folding(self):
        vectorizer = NgramVectorizer(word_ngrams=(1, 1), char_ngrams=None).fit(CORPUS)
        assert vectorizer.transform_one("VACCINE")["w1:vaccine"] == 1

    def test_fit_transform_matches_transform(self):
        vectorizer = NgramVectorizer(char_ngrams=None)
        vectors = vectorizer.fit_transform(CORPUS)
        assert vectors == vectorizer.transform(CORPUS)


class TestVocabularyControl:
    def test_min_document_frequency(self):
        vectorizer = NgramVectorizer(
            word_ngrams=(1, 1), char_ngrams=None, min_document_frequency=2
        ).fit(CORPUS)
        assert "w1:the" in vectorizer.vocabulary
        assert "w1:wonderful" not in vectorizer.vocabulary

    def test_max_features_cap(self):
        vectorizer = NgramVectorizer(
            word_ngrams=(1, 1), char_ngrams=None, max_features=5
        ).fit(CORPUS)
        assert len(vectorizer) == 5

    def test_coverage_lower_for_perturbed_text(self):
        vectorizer = NgramVectorizer().fit(CORPUS)
        clean = vectorizer.coverage("the democrats support the vaccine mandate")
        perturbed = vectorizer.coverage("the dem0cr@ts supp0rt the vacc1ne m@ndate")
        assert clean > perturbed

    def test_coverage_of_empty_text(self):
        vectorizer = NgramVectorizer().fit(CORPUS)
        assert vectorizer.coverage("") == 0.0
