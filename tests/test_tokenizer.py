"""Tests for repro.text.tokenizer."""

from __future__ import annotations

import pytest

from repro.errors import TokenizationError
from repro.text.tokenizer import Token, Tokenizer, detokenize, tokenize


class TestBasicTokenization:
    def test_simple_sentence(self):
        tokens = tokenize("the dirty republicans")
        assert [token.text for token in tokens] == ["the", "dirty", "republicans"]

    def test_spans_recover_source(self):
        text = "the demokRATs push their agenda"
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    def test_case_preserved_by_default(self):
        tokens = tokenize("the demokRATs")
        assert tokens[1].text == "demokRATs"

    def test_lowercase_mode(self):
        tokens = tokenize("the demokRATs", lowercase=True)
        assert tokens[1].text == "demokrats"

    def test_indices_are_sequential(self):
        tokens = tokenize("a b c d")
        assert [token.index for token in tokens] == [0, 1, 2, 3]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_non_string_raises(self):
        with pytest.raises(TokenizationError):
            Tokenizer().tokenize(42)  # type: ignore[arg-type]


class TestPerturbedTokens:
    def test_leet_token_kept_whole(self):
        tokens = tokenize("thinking about suic1de")
        assert tokens[-1].text == "suic1de"

    def test_symbol_heavy_token_kept_whole(self):
        tokens = tokenize("the dem0cr@ts are here")
        assert "dem0cr@ts" in [token.text for token in tokens]

    def test_hyphenated_perturbation_kept_whole(self):
        tokens = tokenize("the mus-lim community")
        assert "mus-lim" in [token.text for token in tokens]

    def test_repeated_symbol_perturbation(self):
        tokens = tokenize("those republic@@ns again")
        assert "republic@@ns" in [token.text for token in tokens]


class TestPunctuationHandling:
    def test_trailing_period_not_part_of_token(self):
        tokens = tokenize("I support the republicans.")
        assert tokens[-1].text == "republicans"

    def test_trailing_exclamation_trimmed(self):
        tokens = tokenize("stop the mandate!")
        assert tokens[-1].text == "mandate"

    def test_surrounding_parens_trimmed(self):
        tokens = tokenize("(vaccine)")
        assert [token.text for token in tokens] == ["vaccine"]

    def test_commas_split_tokens(self):
        tokens = tokenize("democrats,republicans")
        assert [token.text for token in tokens] == ["democrats", "republicans"]


class TestSpecialTokens:
    def test_urls_are_single_tokens(self):
        tokens = tokenize("read https://example.com/a?b=1 now")
        kinds = {token.text: token.kind for token in tokens}
        assert kinds["https://example.com/a?b=1"] == "url"

    def test_mentions_and_hashtags(self):
        tokens = tokenize("@user posted #vaccine news")
        kinds = {token.text: token.kind for token in tokens}
        assert kinds["@user"] == "mention"
        assert kinds["#vaccine"] == "hashtag"

    def test_word_tokens_helper_excludes_specials(self):
        words = Tokenizer().word_tokens("@user posted #vaccine news")
        assert [token.text for token in words] == ["posted", "news"]

    def test_special_tokens_are_not_words(self):
        tokens = tokenize("@user http://x.co #tag word")
        word_flags = {token.text: token.is_word for token in tokens}
        assert word_flags["word"] is True
        assert word_flags["@user"] is False
        assert word_flags["#tag"] is False


class TestTokenObject:
    def test_invalid_kind_rejected(self):
        with pytest.raises(TokenizationError):
            Token(text="x", start=0, end=1, kind="emoji")

    def test_span_mismatch_rejected(self):
        with pytest.raises(TokenizationError):
            Token(text="abc", start=0, end=2)

    def test_replace_text_adjusts_end(self):
        token = Token(text="vaccine", start=4, end=11)
        replaced = token.replace_text("vacc1ne!")
        assert replaced.start == 4
        assert replaced.end == 4 + len("vacc1ne!")

    def test_min_token_length_filter(self):
        tokens = Tokenizer(min_token_length=3).tokenize("a an the vaccine")
        assert [token.text for token in tokens] == ["the", "vaccine"]

    def test_min_token_length_validation(self):
        with pytest.raises(TokenizationError):
            Tokenizer(min_token_length=0)


class TestDetokenize:
    def test_single_replacement(self):
        text = "the dirty republicans"
        tokens = tokenize(text)
        result = detokenize(text, [(tokens[2], "repubLIEcans")])
        assert result == "the dirty repubLIEcans"

    def test_multiple_replacements_preserve_other_text(self):
        text = "the democrats and the republicans debate"
        tokens = tokenize(text)
        result = detokenize(
            text, [(tokens[1], "dem0crats"), (tokens[4], "republic@@ns")]
        )
        assert result == "the dem0crats and the republic@@ns debate"

    def test_replacement_order_does_not_matter(self):
        text = "alpha beta gamma"
        tokens = tokenize(text)
        forward = detokenize(text, [(tokens[0], "A"), (tokens[2], "C")])
        backward = detokenize(text, [(tokens[2], "C"), (tokens[0], "A")])
        assert forward == backward == "A beta C"

    def test_empty_replacements_returns_source(self):
        assert detokenize("keep me", []) == "keep me"

    def test_mismatched_token_rejected(self):
        other_tokens = tokenize("different text entirely ok")
        with pytest.raises(TokenizationError):
            detokenize("short", [(other_tokens[2], "x")])
