"""Chaos suite for the resilience subsystem.

Three layers under test, bottom-up:

* the **primitives** — the fault-injection registry (named points,
  deterministic triggers, env-var arming), retry with jittered backoff,
  propagated request deadlines, and the per-replica circuit breaker —
  each driven with injectable clocks/sleeps so nothing here waits on
  real time;
* the **fault matrix** — injected fsync failures, torn WAL and snapshot
  writes, transient tail-read errors, and poisoned poll rounds, asserting
  the durability and replication layers keep answering correctly (writes
  rejected cleanly, torn tails repaired, retries absorbed, background
  tail threads alive);
* the **degradation surface** — breaker- and staleness-aware routing
  under each ``degraded_read_policy`` (leader fallback, serve-stale with
  the warning header, fail-fast 503), deadline-expired requests answering
  504, the async front's protocol edges (truncated request lines,
  mid-request disconnects, body-cap boundaries, keep-alive reuse), and a
  real :class:`ReplicaSupervisor` restarting a SIGKILLed follower
  *process* until its fingerprint matches the leader again.
"""

from __future__ import annotations

import asyncio
import json
import random
import signal
import time
from pathlib import Path

import pytest

from repro import CrypText, CrypTextConfig
from repro.api import AsyncCrypTextService, CrypTextService, RateLimiter
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    InjectedFault,
    InjectedIOError,
    ReplicasUnavailableError,
    ResilienceError,
    SnapshotError,
    TornWrite,
    WalError,
)
from repro.replication import Follower, ReplicaSet, WalTail
from repro.resilience import (
    FAULTS,
    KNOWN_FAULT_POINTS,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    ReplicaSupervisor,
    RetryPolicy,
    active_deadline,
    check_deadline,
    install_env_faults,
    parse_fault_spec,
)
from repro.storage import SNAPSHOT_FILE_NAME
from repro.wal import ChangeLog, wal_directory_for

CONFIG = CrypTextConfig(cache_enabled=False, retry_base_delay=0.001)

CORPUS = [
    "the demokrats hate the vacc1ne",
    "the dirrty republicans lie",
    "teh vaccine works",
]

LATER = [
    "fresh amaz0n chatter tonight",
    "the m0derators deleted everything again",
]


@pytest.fixture(autouse=True)
def _clean_faults():
    """The registry is process-global; never leak an armed rule between tests."""
    FAULTS.reset()
    yield
    FAULTS.reset()


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _leader(directory: Path) -> CrypText:
    system = CrypText.empty(config=CONFIG, seed_lexicon=False)
    system.dictionary.attach_wal(ChangeLog(wal_directory_for(directory)))
    return system


def _converged(leader: CrypText, follower: Follower) -> bool:
    return (
        follower.system.dictionary.content_fingerprint()
        == leader.dictionary.content_fingerprint()
    )


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
class TestFaultRegistry:
    def test_unknown_point_is_a_configuration_error(self):
        injector = FaultInjector()
        with pytest.raises(ConfigurationError, match="unknown fault point"):
            injector.arm("wal.apend", fail=1)
        assert not injector.armed

    def test_fail_next_n_then_dormant(self):
        injector = FaultInjector()
        injector.arm("wal.fsync", fail=2)
        assert injector.armed
        for _ in range(2):
            with pytest.raises(InjectedIOError):
                injector.hit("wal.fsync")
        # Exhausted rules disarm themselves: the hot path goes back to the
        # single bool read.
        injector.hit("wal.fsync")
        assert not injector.armed
        assert injector.fired("wal.fsync") == 2

    def test_io_points_raise_oserror_subclasses(self):
        injector = FaultInjector()
        injector.arm("tailer.read", fail=1)
        with pytest.raises(OSError):
            injector.hit("tailer.read")
        injector.arm("front.dispatch", fail=1)
        with pytest.raises(InjectedFault) as excinfo:
            injector.hit("front.dispatch")
        assert not isinstance(excinfo.value, OSError)

    def test_torn_is_restricted_to_write_points(self):
        injector = FaultInjector()
        with pytest.raises(ConfigurationError, match="torn"):
            injector.arm("tailer.read", torn=4)
        rule = injector.arm("wal.append", torn=7)
        assert rule.fail_remaining == 1  # a torn rule defaults to one failure
        with pytest.raises(TornWrite) as excinfo:
            injector.hit("wal.append")
        assert excinfo.value.keep_bytes == 7

    def test_probabilistic_rules_replay_identically_by_seed(self):
        def fire_pattern() -> list[bool]:
            injector = FaultInjector()
            injector.arm("follower.poll", probability=0.5, seed=7)
            pattern = []
            for _ in range(50):
                try:
                    injector.hit("follower.poll")
                    pattern.append(False)
                except InjectedFault:
                    pattern.append(True)
            return pattern

        first, second = fire_pattern(), fire_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_delays_use_the_injected_sleep(self):
        slept: list[float] = []
        injector = FaultInjector(sleep=slept.append)
        injector.arm("front.dispatch", delay=0.25, delay_times=2)
        injector.hit("front.dispatch")
        injector.hit("front.dispatch")
        assert slept == [0.25, 0.25]
        assert not injector.armed  # two delays granted, nothing left to do

    def test_consume_delay_never_sleeps(self):
        injector = FaultInjector(sleep=lambda _s: pytest.fail("slept"))
        injector.arm("front.dispatch", delay=0.5, delay_times=1)
        assert injector.consume_delay("front.dispatch") == 0.5
        assert injector.consume_delay("front.dispatch") == 0.0

    def test_scoped_disarms_on_exit(self):
        injector = FaultInjector()
        with injector.scoped("wal.fsync", fail=100):
            assert injector.armed
        assert not injector.armed

    def test_status_reports_rules_and_lifetime_counters(self):
        injector = FaultInjector()
        injector.arm("wal.fsync", fail=3)
        with pytest.raises(InjectedIOError):
            injector.hit("wal.fsync")
        status = injector.status()
        assert status["armed"] is True
        assert status["rules"]["wal.fsync"]["fail_remaining"] == 2
        assert status["total_fired"] == {"wal.fsync": 1}
        injector.reset()
        assert injector.status() == {"armed": False, "rules": {}, "total_fired": {}}

    def test_every_compiled_point_is_armable(self):
        injector = FaultInjector()
        for point in KNOWN_FAULT_POINTS:
            injector.arm(point, fail=1)
        assert set(injector.status()["rules"]) == set(KNOWN_FAULT_POINTS)

    def test_parse_fault_spec(self):
        parsed = parse_fault_spec(
            "wal.fsync:fail=3; front.dispatch:delay=0.05,delay_times=10;"
            "tailer.read:probability=0.2,seed=7"
        )
        assert parsed == {
            "wal.fsync": {"fail": 3},
            "front.dispatch": {"delay": 0.05, "delay_times": 10},
            "tailer.read": {"probability": 0.2, "seed": 7},
        }

    @pytest.mark.parametrize(
        "spec",
        [
            "wal.fsync",  # no colon
            "wal.fsync:fail",  # no value
            "wal.fsync:fail=lots",  # non-integer
            "wal.fsync:explode=1",  # unknown trigger
            ":fail=1",  # no point
        ],
    )
    def test_malformed_specs_are_loud(self, spec):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(spec)

    def test_install_env_faults(self):
        injector = FaultInjector()
        armed = install_env_faults(
            {"CRYPTEXT_FAULTS": "wal.fsync:fail=2;follower.poll:fail=1"},
            injector,
        )
        assert sorted(armed) == ["follower.poll", "wal.fsync"]
        assert injector.armed
        assert install_env_faults({}, FaultInjector()) == ()


# --------------------------------------------------------------------------- #
# retry / deadline / breaker primitives
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def _policy(self, **kwargs) -> tuple[RetryPolicy, list[float]]:
        slept: list[float] = []
        kwargs.setdefault("rng", random.Random(0))
        return RetryPolicy(sleep=slept.append, **kwargs), slept

    def test_transient_failures_are_absorbed(self):
        policy, slept = self._policy(attempts=3)
        calls = []

        def flaky():
            calls.append(True)
            if len(calls) < 3:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(calls) == 3 and len(slept) == 2

    def test_non_retryable_errors_propagate_immediately(self):
        policy, slept = self._policy(attempts=5)
        calls = []

        def broken():
            calls.append(True)
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(broken)
        assert len(calls) == 1 and slept == []

    def test_exhausted_attempts_reraise_the_last_error(self):
        policy, slept = self._policy(attempts=3)
        calls = []

        def always():
            calls.append(True)
            raise OSError("still down")

        with pytest.raises(OSError, match="still down"):
            policy.call(always)
        assert len(calls) == 3 and len(slept) == 2

    def test_backoff_is_full_jitter_bounded_by_the_ceiling(self):
        policy, _ = self._policy(attempts=6, base_delay=0.1, max_delay=0.5)
        for attempt in range(6):
            ceiling = min(0.5, 0.1 * (2**attempt))
            for _ in range(20):
                assert 0.0 <= policy.backoff(attempt) <= ceiling

    def test_expired_deadline_short_circuits_the_retry_loop(self):
        policy, slept = self._policy(attempts=5)
        calls = []

        def failing():
            calls.append(True)
            raise OSError("slow disk")

        expired = Deadline(0.0, clock=lambda: 1.0)
        with expired.activate():
            with pytest.raises(OSError):
                policy.call(failing)
        # One attempt, no sleeping toward an answer nobody is waiting for.
        assert len(calls) == 1 and slept == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"attempts": 1.5},
            {"base_delay": -0.1},
            {"base_delay": 1.0, "max_delay": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestDeadline:
    def test_after_requires_a_positive_budget(self):
        for bad in (0, -1.0):
            with pytest.raises(ConfigurationError):
                Deadline.after(bad)

    def test_remaining_and_expired_track_the_clock(self):
        clock = FakeClock(10.0)
        deadline = Deadline.after(5.0, clock=clock)
        assert deadline.remaining() == pytest.approx(5.0)
        clock.advance(4.0)
        assert deadline.remaining() == pytest.approx(1.0) and not deadline.expired
        clock.advance(2.0)
        assert deadline.remaining() == 0.0 and deadline.expired
        with pytest.raises(DeadlineExceededError, match="lookup exceeded its 5s"):
            deadline.check("lookup")

    def test_activation_sets_the_ambient_deadline(self):
        assert active_deadline() is None
        check_deadline()  # no ambient deadline: a cheap no-op
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        with deadline.activate():
            assert active_deadline() is deadline
            clock.advance(2.0)
            with pytest.raises(DeadlineExceededError):
                check_deadline("replicated read")
        assert active_deadline() is None


class TestCircuitBreaker:
    def _breaker(self, **kwargs) -> tuple[CircuitBreaker, FakeClock]:
        clock = FakeClock()
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("recovery_seconds", 10.0)
        return CircuitBreaker(clock=clock, name="r0", **kwargs), clock

    def test_consecutive_failures_trip_it_open(self):
        breaker, _clock = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # a success resets the streak
        for _ in range(3):
            assert breaker.state == CircuitBreaker.CLOSED
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.status()["rejected_calls"] == 1
        assert breaker.status()["times_opened"] == 1

    def test_recovery_window_half_opens_and_a_probe_closes(self):
        breaker, clock = self._breaker(half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # books the only probe slot
        assert not breaker.allow()  # a second caller is still refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_a_failed_probe_reopens_and_restarts_the_clock(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock.advance(9.0)  # not a full recovery window since the re-open
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_available_is_a_non_mutating_scan(self):
        breaker, clock = self._breaker(half_open_probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        for _ in range(5):
            assert breaker.available()  # never books the probe slot
        assert breaker.allow()
        assert not breaker.available()  # the slot is genuinely taken now

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"failure_threshold": 2.5},
            {"recovery_seconds": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(**{"failure_threshold": 3, "recovery_seconds": 1.0, **kwargs})


# --------------------------------------------------------------------------- #
# the fault matrix: durability + replication under injected failures
# --------------------------------------------------------------------------- #
class TestWalFaultMatrix:
    def test_fsync_failure_rejects_the_write_and_the_log_survives(self, tmp_path):
        wal = ChangeLog(tmp_path, fsync=True)
        wal.append("add_token", {"token": "tok0", "source": "t", "count": 1})
        FAULTS.arm("wal.fsync", fail=1)
        with pytest.raises(WalError, match="failed to append"):
            wal.append("add_token", {"token": "tok1", "source": "t", "count": 1})
        # The failed frame was rolled back to the last good boundary: the
        # next append reuses its sequence number and the log stays coherent.
        record = wal.append("add_token", {"token": "tok1", "source": "t", "count": 1})
        assert record.seq == 2
        assert [r.seq for r in wal.iter_records()] == [1, 2]

    def test_append_io_failure_is_invisible_to_the_tail(self, tmp_path):
        wal = ChangeLog(tmp_path)
        wal.append("add_token", {"token": "tok0", "source": "t", "count": 1})
        FAULTS.arm("wal.append", fail=1)
        with pytest.raises(WalError):
            wal.append("add_token", {"token": "lost", "source": "t", "count": 1})
        batch = WalTail(tmp_path).read_after(0)
        assert [r.seq for r in batch.records] == [1] and not batch.gap

    def test_torn_write_leaves_real_bytes_and_reopen_repairs(self, tmp_path):
        wal = ChangeLog(tmp_path)
        for index in range(3):
            wal.append("add_token", {"token": f"tok{index}", "source": "t", "count": 1})
        size_before = sum(p.stat().st_size for p in tmp_path.glob("wal-*.seg"))
        FAULTS.arm("wal.append", torn=12)
        with pytest.raises(WalError, match="torn write"):
            wal.append("add_token", {"token": "doomed", "source": "t", "count": 1})
        # The simulated crash really tore the segment — partial bytes are
        # on disk and the crashed log refuses further service.
        size_after = sum(p.stat().st_size for p in tmp_path.glob("wal-*.seg"))
        assert size_after == size_before + 12
        with pytest.raises(WalError, match="closed"):
            wal.append("add_token", {"token": "after", "source": "t", "count": 1})
        # A tail never trusts the torn frame; reopening repairs it away.
        assert [r.seq for r in WalTail(tmp_path).read_after(0).records] == [1, 2, 3]
        reopened = ChangeLog(tmp_path)
        assert reopened.last_seq == 3
        assert reopened.append(
            "add_token", {"token": "recovered", "source": "t", "count": 1}
        ).seq == 4
        assert [r.seq for r in reopened.iter_records()] == [1, 2, 3, 4]

    def test_transient_tail_read_errors_are_absorbed_by_retry(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        follower = Follower(tmp_path, config=CONFIG)
        # Two transient IO errors against a three-attempt retry policy: the
        # poll round succeeds without surfacing anything.
        FAULTS.arm("tailer.read", fail=2)
        follower.catch_up()
        assert _converged(leader, follower)
        assert follower.stats()["poll_errors"] == 0

    def test_persistent_tail_read_errors_surface_after_retries(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        follower = Follower(tmp_path, config=CONFIG)
        FAULTS.arm("tailer.read", fail=50)
        with pytest.raises(OSError):
            follower.poll()
        stats = follower.stats()
        assert stats["poll_errors"] == 1
        assert "InjectedIOError" in stats["last_poll_error"]

    def test_snapshot_write_failure_degrades_but_the_system_keeps_serving(
        self, tmp_path
    ):
        system = CrypText.empty(config=CONFIG, seed_lexicon=False)
        system.learn_from(CORPUS, source="corpus")
        path = tmp_path / SNAPSHOT_FILE_NAME
        FAULTS.arm("snapshot.write", fail=1)
        with pytest.raises(SnapshotError):
            system.save_snapshot(path)
        # The failed save cost nothing but the save: lookups still answer,
        # and the retry (fault exhausted) lands a loadable snapshot.
        assert system.look_up("vaccine").matches
        system.save_snapshot(path)
        warm = CrypText.empty(config=CONFIG, seed_lexicon=False)
        warm.load_snapshot(path, strict=True)
        assert (
            warm.dictionary.content_fingerprint()
            == system.dictionary.content_fingerprint()
        )

    def test_torn_snapshot_write_is_detected_on_load(self, tmp_path):
        system = CrypText.empty(config=CONFIG, seed_lexicon=False)
        system.learn_from(CORPUS, source="corpus")
        path = tmp_path / SNAPSHOT_FILE_NAME
        FAULTS.arm("snapshot.write", torn=64)
        with pytest.raises(SnapshotError, match="torn write"):
            system.save_snapshot(path)
        assert path.stat().st_size == 64  # the torn bytes really landed
        cold = CrypText.empty(config=CONFIG, seed_lexicon=False)
        with pytest.raises(SnapshotError):
            cold.load_snapshot(path, strict=True)


class TestFollowerUnderFaults:
    def test_poll_faults_are_counted_and_feed_the_breaker(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        follower = Follower(tmp_path, config=CONFIG)
        FAULTS.arm("follower.poll", fail=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                follower.poll()
        assert follower.poll_safely() is not None
        stats = follower.stats()
        assert stats["poll_errors"] == 2
        assert stats["consecutive_poll_failures"] == 0  # the success reset it
        assert stats["breaker"]["state"] == "closed"  # 2 < threshold of 5

    def test_background_tail_thread_survives_poll_faults(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        follower = Follower(tmp_path, config=CONFIG)
        FAULTS.arm("follower.poll", fail=3)
        follower.start(poll_interval=0.01)
        try:
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                stats = follower.stats()
                if stats["poll_errors"] >= 3 and _converged(leader, follower):
                    break
                time.sleep(0.02)
            stats = follower.stats()
            assert stats["tailing"], "the tail thread must outlive its failures"
            assert stats["poll_errors"] >= 3
            assert _converged(leader, follower)
        finally:
            follower.close()

    def test_enough_poll_faults_trip_the_replica_breaker(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        clock = FakeClock()
        follower = Follower(tmp_path, config=CONFIG, clock=clock)
        FAULTS.arm("follower.poll", fail=CONFIG.breaker_failure_threshold)
        for _ in range(CONFIG.breaker_failure_threshold):
            assert follower.poll_safely() is None
        assert follower.breaker.state == CircuitBreaker.OPEN
        # Recovery: the window elapses, the next good poll closes it.
        clock.advance(CONFIG.breaker_recovery_seconds + 1.0)
        assert follower.breaker.allow()
        assert follower.poll_safely() is not None
        assert follower.breaker.state == CircuitBreaker.CLOSED

    def test_catch_up_is_throttled_into_bounded_slices(self, tmp_path):
        config = CrypTextConfig(cache_enabled=False, replica_catchup_batch=2)
        leader = CrypText.empty(config=config, seed_lexicon=False)
        leader.dictionary.attach_wal(ChangeLog(wal_directory_for(tmp_path)))
        # One journaled record per call (learn_from batches a whole round
        # into one compound frame): five records against a batch bound of 2.
        for text in CORPUS + LATER:
            leader.learn_from([text], source="corpus")
        follower = Follower(tmp_path, config=config)
        follower.catch_up()
        assert _converged(leader, follower)
        stats = follower.stats()
        assert stats["throttled_polls"] >= 1
        assert stats["catchup_batch"] == 2


# --------------------------------------------------------------------------- #
# degraded routing + the service surface
# --------------------------------------------------------------------------- #
class TestDegradedRouting:
    def _set(self, tmp_path, policy, followers=2, **kwargs):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        clock = FakeClock()
        members = [
            Follower(tmp_path, config=CONFIG, name=f"follower-{i}", clock=clock)
            for i in range(followers)
        ]
        for member in members:
            member.catch_up()
        replica_set = ReplicaSet(
            leader,
            members,
            max_staleness_seconds=5.0,
            degraded_read_policy=policy,
            **kwargs,
        )
        return leader, members, replica_set, clock

    def test_unknown_policy_is_rejected(self, tmp_path):
        leader = _leader(tmp_path)
        with pytest.raises(ConfigurationError, match="degraded_read_policy"):
            ReplicaSet(leader, degraded_read_policy="shrug")

    def test_fresh_followers_serve_with_no_degradation(self, tmp_path):
        _leader_sys, members, replica_set, _clock = self._set(tmp_path, "fail_fast")
        routed = replica_set.route_read()
        assert routed.follower in members and routed.degraded is None

    def test_leader_fallback_when_every_follower_is_stale(self, tmp_path):
        leader, _members, replica_set, clock = self._set(tmp_path, "leader")
        clock.advance(60.0)
        routed = replica_set.route_read()
        assert routed.system is leader and routed.degraded == "leader_fallback"
        assert replica_set.status()["routed_to_leader"] == 1

    def test_stale_policy_serves_the_least_stale_follower(self, tmp_path):
        _leader_sys, members, replica_set, clock = self._set(tmp_path, "stale")
        clock.advance(60.0)
        routed = replica_set.route_read()
        assert routed.follower in members and routed.degraded == "stale"
        outcome = replica_set.execute(lambda system: system.look_up("vaccine"))
        assert outcome.degraded == "stale" and outcome.result.matches
        assert replica_set.status()["stale_reads"] >= 2

    def test_fail_fast_policy_raises(self, tmp_path):
        _leader_sys, _members, replica_set, clock = self._set(tmp_path, "fail_fast")
        clock.advance(60.0)
        with pytest.raises(ReplicasUnavailableError):
            replica_set.route_read()
        assert replica_set.status()["failed_fast"] == 1

    def test_an_open_breaker_excludes_its_follower_from_rotation(self, tmp_path):
        _leader_sys, members, replica_set, _clock = self._set(tmp_path, "leader")
        for _ in range(members[0].breaker.failure_threshold):
            members[0].breaker.record_failure()
        for _ in range(6):
            routed = replica_set.route_read()
            assert routed.follower is members[1]

    def test_every_breaker_open_degrades_even_when_fresh(self, tmp_path):
        leader, members, replica_set, _clock = self._set(tmp_path, "leader")
        for member in members:
            for _ in range(member.breaker.failure_threshold):
                member.breaker.record_failure()
        routed = replica_set.route_read()
        assert routed.system is leader and routed.degraded == "leader_fallback"

    def test_a_failing_follower_read_fails_over_to_the_leader_once(self, tmp_path):
        leader, members, replica_set, _clock = self._set(tmp_path, "leader", followers=1)

        def compute(system):
            if system is not leader:
                raise RuntimeError("replica blew up mid-read")
            return system.look_up("vaccine")

        outcome = replica_set.execute(compute)
        assert outcome.result.matches and outcome.degraded == "leader_fallback"
        status = replica_set.status()
        assert status["read_failovers"] == 1
        assert members[0].breaker.status()["consecutive_failures"] == 1

    def test_application_errors_say_nothing_about_replica_health(self, tmp_path):
        _leader_sys, members, replica_set, _clock = self._set(
            tmp_path, "leader", followers=1
        )

        def compute(system):
            raise ReplicasUnavailableError("a CrypTextError subtype")

        with pytest.raises(ReplicasUnavailableError):
            replica_set.execute(compute)
        assert members[0].breaker.status()["consecutive_failures"] == 0
        assert replica_set.status()["read_failovers"] == 0


class TestServiceDegradation:
    def _service(self, tmp_path, policy):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        clock = FakeClock()
        followers = [
            Follower(tmp_path, config=CONFIG, name=f"follower-{i}", clock=clock)
            for i in range(2)
        ]
        for follower in followers:
            follower.catch_up()
        replica_set = ReplicaSet(
            leader, followers, max_staleness_seconds=5.0, degraded_read_policy=policy
        )
        service = CrypTextService(
            leader,
            replica_set=replica_set,
            rate_limiter=RateLimiter(max_requests=10000, window_seconds=60),
        )
        token = service.issue_token("chaos").token
        return service, token, clock

    def test_stale_reads_carry_the_warning_header(self, tmp_path):
        service, token, clock = self._service(tmp_path, "stale")
        response = service.lookup(token, ["vaccine"])
        assert response.status == 200 and response.headers == {}
        assert "headers" not in response.to_dict()
        clock.advance(60.0)
        degraded = service.lookup(token, ["vacc1ne"])
        assert degraded.status == 200
        assert degraded.headers == {"X-CrypText-Degraded": "stale"}
        assert degraded.to_dict()["headers"] == {"X-CrypText-Degraded": "stale"}

    def test_fail_fast_is_a_503(self, tmp_path):
        service, token, clock = self._service(tmp_path, "fail_fast")
        clock.advance(60.0)
        response = service.normalize(token, ["teh vaccine works"])
        assert response.status == 503
        assert "no healthy replica" in response.body["error"]

    def test_leader_fallback_answers_200_with_no_header(self, tmp_path):
        service, token, clock = self._service(tmp_path, "leader")
        clock.advance(60.0)
        response = service.lookup(token, ["vaccine"])
        assert response.status == 200 and response.headers == {}

    def test_an_expired_deadline_is_a_504(self, tmp_path):
        service, token, _clock = self._service(tmp_path, "leader")
        expired = Deadline(0.0, clock=lambda: 1.0)
        with expired.activate():
            response = service.lookup(token, ["vaccine"])
        assert response.status == 504
        assert "deadline" in response.body["error"]


# --------------------------------------------------------------------------- #
# the async front: deadlines, dispatch faults, protocol edges, keep-alive
# --------------------------------------------------------------------------- #
def _plain_service(tmp_path) -> tuple[CrypTextService, str]:
    leader = _leader(tmp_path)
    leader.learn_from(CORPUS, source="corpus")
    service = CrypTextService(
        leader, rate_limiter=RateLimiter(max_requests=10000, window_seconds=60)
    )
    return service, service.issue_token("chaos").token


async def _request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    token: str | None = None,
    payload: dict | None = None,
    close: bool = False,
) -> tuple[int, dict, dict[str, str]]:
    """One exchange on an existing (possibly reused) connection."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    lines = [f"{method} {path} HTTP/1.1", "Host: t"]
    if close:
        lines.append("Connection: close")
    if token is not None:
        lines.append(f"Authorization: Bearer {token}")
    if body:
        lines.append(f"Content-Length: {len(body)}")
    writer.write("\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split(b" ", 2)[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    payload_bytes = await reader.readexactly(int(headers["content-length"]))
    return status, json.loads(payload_bytes.decode("utf-8")), headers


class TestAsyncFrontResilience:
    def test_slow_handlers_answer_504_within_the_deadline(self, tmp_path):
        service, token = _plain_service(tmp_path)
        real_lookup = service.lookup

        def slow_lookup(*args, **kwargs):
            time.sleep(0.5)
            return real_lookup(*args, **kwargs)

        service.lookup = slow_lookup  # type: ignore[method-assign]
        front = AsyncCrypTextService(service, reader_threads=1, request_deadline=0.05)

        async def scenario():
            started = time.monotonic()
            response = await front.dispatch(
                "POST", "/v1/lookup", token, {"queries": ["vaccine"]}
            )
            elapsed = time.monotonic() - started
            assert response.status == 504
            assert "0.05s deadline" in response.body["error"]
            assert elapsed < 0.4  # answered at the deadline, not the handler

        asyncio.run(scenario())

    def test_handlers_inside_the_budget_are_untouched(self, tmp_path):
        service, token = _plain_service(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=1, request_deadline=30.0)

        async def scenario():
            response = await front.dispatch(
                "POST", "/v1/lookup", token, {"queries": ["vaccine"]}
            )
            assert response.status == 200

        asyncio.run(scenario())

    def test_dispatch_faults_answer_500_and_delays_yield_the_loop(self, tmp_path):
        service, token = _plain_service(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=1)
        FAULTS.arm("front.dispatch", fail=1, delay=0.01, delay_times=1)

        async def scenario():
            response = await front.dispatch(
                "POST", "/v1/lookup", token, {"queries": ["vaccine"]}
            )
            assert response.status == 500
            assert "injected fault at front.dispatch" in response.body["error"]
            response = await front.dispatch(
                "POST", "/v1/lookup", token, {"queries": ["vaccine"]}
            )
            assert response.status == 200  # the rule exhausted itself

        asyncio.run(scenario())
        assert FAULTS.fired("front.dispatch") == 1

    def test_deadline_validation(self, tmp_path):
        service, _token = _plain_service(tmp_path)
        from repro.errors import CrypTextError

        with pytest.raises(CrypTextError):
            AsyncCrypTextService(service, request_deadline=0.0)
        with pytest.raises(CrypTextError):
            AsyncCrypTextService(service, max_body_bytes=0)


class TestAsyncFrontProtocolEdges:
    def test_truncated_request_line_is_a_400(self, tmp_path):
        service, _token = _plain_service(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=1)

        async def scenario():
            host, port = await front.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"POST /v1/look")  # the line never completes
                writer.write_eof()
                raw = await reader.read(-1)
                writer.close()
                assert b" 400 " in raw.split(b"\r\n", 1)[0]
                assert b"malformed request line" in raw
            finally:
                await front.stop()

        asyncio.run(scenario())

    def test_client_disconnect_mid_request_leaves_the_server_healthy(self, tmp_path):
        service, token = _plain_service(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=1)

        async def scenario():
            host, port = await front.start()
            try:
                # A client promises 100 bytes, sends 10, and vanishes.
                _reader, rude = await asyncio.open_connection(host, port)
                rude.write(
                    b"POST /v1/lookup HTTP/1.1\r\nContent-Length: 100\r\n\r\nincomplete"
                )
                await rude.drain()
                rude.close()
                # The next client is served as if nothing happened.
                reader, writer = await asyncio.open_connection(host, port)
                status, body, _headers = await _request(
                    reader,
                    writer,
                    "POST",
                    "/v1/lookup",
                    token,
                    {"queries": ["vaccine"]},
                    close=True,
                )
                writer.close()
                assert status == 200 and body["results"]["vaccine"]["matches"]
            finally:
                await front.stop()

        asyncio.run(scenario())

    def test_body_cap_boundary(self, tmp_path):
        service, token = _plain_service(tmp_path)
        payload = json.dumps({"queries": ["vaccine"]}).encode("utf-8")
        front = AsyncCrypTextService(
            service, reader_threads=1, max_body_bytes=len(payload)
        )

        async def scenario():
            host, port = await front.start()
            try:
                # Exactly at the cap: served normally.
                reader, writer = await asyncio.open_connection(host, port)
                status, body, _headers = await _request(
                    reader,
                    writer,
                    "POST",
                    "/v1/lookup",
                    token,
                    {"queries": ["vaccine"]},
                    close=True,
                )
                writer.close()
                assert status == 200
                # One byte over: refused before the body is read, and the
                # connection closes (the unread body poisons framing).
                reader, writer = await asyncio.open_connection(host, port)
                oversized = json.dumps({"queries": ["vaccinee"]}).encode("utf-8")
                assert len(oversized) == len(payload) + 1
                writer.write(
                    b"POST /v1/lookup HTTP/1.1\r\nAuthorization: Bearer "
                    + token.encode("ascii")
                    + b"\r\nContent-Length: %d\r\n\r\n" % len(oversized)
                    + oversized
                )
                await writer.drain()
                raw = await reader.read(-1)  # EOF proves the server closed
                writer.close()
                assert b" 400 " in raw.split(b"\r\n", 1)[0]
                assert b"request body too large" in raw
            finally:
                await front.stop()

        asyncio.run(scenario())

    def test_keep_alive_serves_sequential_requests_on_one_connection(self, tmp_path):
        service, token = _plain_service(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=1)

        async def scenario():
            host, port = await front.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                for query in ("vaccine", "democrats", "republicans"):
                    status, body, headers = await _request(
                        reader, writer, "POST", "/v1/lookup", token, {"queries": [query]}
                    )
                    assert status == 200 and query in body["results"]
                    assert headers["connection"] == "keep-alive"
                status, _body, headers = await _request(
                    reader, writer, "GET", "/v1/stats", token, close=True
                )
                assert status == 200 and headers["connection"] == "close"
                assert await reader.read(-1) == b""  # the server hung up
                writer.close()
            finally:
                await front.stop()

        asyncio.run(scenario())

    def test_concurrent_keep_alive_connections(self, tmp_path):
        service, token = _plain_service(tmp_path)
        front = AsyncCrypTextService(service, reader_threads=2)

        async def one_client(host, port, query):
            reader, writer = await asyncio.open_connection(host, port)
            statuses = []
            for _ in range(3):
                status, body, _headers = await _request(
                    reader, writer, "POST", "/v1/lookup", token, {"queries": [query]}
                )
                statuses.append(status)
                assert query in body["results"]
            writer.close()
            return statuses

        async def scenario():
            host, port = await front.start()
            try:
                results = await asyncio.gather(
                    *(one_client(host, port, q) for q in ("vaccine", "teh", "dirty", "lie"))
                )
                assert all(statuses == [200, 200, 200] for statuses in results)
            finally:
                await front.stop()

        asyncio.run(scenario())


# --------------------------------------------------------------------------- #
# cross-process supervision
# --------------------------------------------------------------------------- #
class TestReplicaSupervisor:
    def test_check_before_start_is_an_error(self, tmp_path):
        supervisor = ReplicaSupervisor(tmp_path, workers=1)
        with pytest.raises(ResilienceError, match="not started"):
            supervisor.check()
        assert supervisor.kill_worker("worker-0") is False  # nothing running

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"status_interval": 0.0},
            {"restart_backoff": 0.0},
            {"restart_backoff": 2.0, "max_restart_backoff": 1.0},
        ],
    )
    def test_validation(self, tmp_path, kwargs):
        with pytest.raises(ConfigurationError):
            ReplicaSupervisor(tmp_path, **kwargs)

    def test_workers_converge_survive_sigkill_and_reconverge(self, tmp_path):
        leader = _leader(tmp_path)
        leader.learn_from(CORPUS, source="corpus")
        supervisor = ReplicaSupervisor(
            tmp_path,
            workers=2,
            config=CONFIG,
            poll_interval=0.05,
            status_interval=0.1,
            restart_backoff=0.1,
        )
        with supervisor:
            fingerprint = leader.dictionary.content_fingerprint()
            assert supervisor.wait_converged(
                fingerprint, timeout=60.0
            ), f"workers never converged: {supervisor.status()}"
            status = supervisor.status()
            assert all(m["healthy"] for m in status["workers"])
            assert {m["heartbeat"]["fingerprint"] for m in status["workers"]} == {
                fingerprint
            }

            # Chaos: SIGKILL one worker mid-flight, keep writing.
            assert supervisor.kill_worker("worker-0", signal.SIGKILL)
            leader.learn_from(LATER, source="corpus")
            fingerprint = leader.dictionary.content_fingerprint()
            leader_seq = leader.dictionary.wal.last_seq
            assert supervisor.wait_converged(
                fingerprint, timeout=60.0, min_applied_seq=leader_seq
            ), f"workers never re-converged after the kill: {supervisor.status()}"
            status = supervisor.status()
            worker0 = next(m for m in status["workers"] if m["name"] == "worker-0")
            assert worker0["restarts"] >= 1, "the supervisor must restart the victim"
            assert worker0["healthy"]
        # The context exit stopped everything.
        assert all(not w.alive() for w in supervisor.workers)


# --------------------------------------------------------------------------- #
# configuration surface
# --------------------------------------------------------------------------- #
class TestResilienceConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"degraded_read_policy": "shrug"},
            {"request_deadline_seconds": 0.0},
            {"request_deadline_seconds": -1.0},
            {"retry_attempts": 0},
            {"retry_attempts": 1.5},
            {"retry_base_delay": -0.01},
            {"breaker_failure_threshold": 0},
            {"breaker_recovery_seconds": 0.0},
            {"replica_catchup_batch": 0},
        ],
    )
    def test_invalid_values_fail_at_construction(self, overrides):
        with pytest.raises(ConfigurationError):
            CrypTextConfig(**overrides)

    def test_resilience_fields_round_trip(self):
        config = CrypTextConfig(
            degraded_read_policy="stale",
            request_deadline_seconds=2.5,
            retry_attempts=4,
            retry_base_delay=0.01,
            breaker_failure_threshold=7,
            breaker_recovery_seconds=12.0,
            replica_catchup_batch=128,
        )
        restored = CrypTextConfig.from_dict(config.to_dict())
        assert restored.degraded_read_policy == "stale"
        assert restored.request_deadline_seconds == 2.5
        assert restored.retry_attempts == 4
        assert restored.retry_base_delay == 0.01
        assert restored.breaker_failure_threshold == 7
        assert restored.breaker_recovery_seconds == 12.0
        assert restored.replica_catchup_batch == 128

    def test_defaults_are_valid_and_disarmed(self):
        config = CrypTextConfig()
        assert config.degraded_read_policy == "leader"
        assert config.request_deadline_seconds is None
        assert not FAULTS.has_rules
        # `armed` is also forced true by the sanitizer's passive observer
        # (CRYPTEXT_SANITIZE=1), so only assert it without one attached.
        from repro.analysis.sanitizer import active

        if active() is None:
            assert not FAULTS.armed
