"""Tests for repro.api.auth and repro.api.ratelimit."""

from __future__ import annotations

import pytest

from repro.api import RateLimiter, TokenAuthenticator
from repro.api.auth import KNOWN_SCOPES
from repro.errors import (
    AuthenticationError,
    AuthorizationError,
    RateLimitExceededError,
)


class TestTokenIssue:
    def test_issue_returns_usable_token(self):
        authenticator = TokenAuthenticator(secret="unit-test")
        token = authenticator.issue("alice")
        record = authenticator.authenticate(token.token)
        assert record["client"] == "alice"

    def test_default_scopes_exclude_admin(self):
        token = TokenAuthenticator().issue("alice")
        assert "admin" not in token.scopes
        assert "lookup" in token.scopes

    def test_scoped_token(self):
        authenticator = TokenAuthenticator()
        token = authenticator.issue("bob", scopes={"lookup"})
        assert authenticator.authorize(token.token, "lookup") == "bob"
        with pytest.raises(AuthorizationError):
            authenticator.authorize(token.token, "perturb")

    def test_admin_scope_grants_everything(self):
        authenticator = TokenAuthenticator()
        token = authenticator.issue("root", scopes={"admin"})
        for scope in KNOWN_SCOPES - {"admin"}:
            assert authenticator.authorize(token.token, scope) == "root"

    def test_unknown_scope_rejected(self):
        with pytest.raises(AuthorizationError):
            TokenAuthenticator().issue("alice", scopes={"fly"})

    def test_empty_client_rejected(self):
        with pytest.raises(AuthenticationError):
            TokenAuthenticator().issue("  ")

    def test_tokens_are_unique(self):
        authenticator = TokenAuthenticator()
        assert authenticator.issue("a").token != authenticator.issue("a").token

    def test_token_serialization(self):
        token = TokenAuthenticator().issue("alice", scopes={"lookup"})
        payload = token.to_dict()
        assert payload["client"] == "alice"
        assert payload["scopes"] == ["lookup"]


class TestAuthenticate:
    def test_missing_token(self):
        with pytest.raises(AuthenticationError):
            TokenAuthenticator().authenticate(None)
        with pytest.raises(AuthenticationError):
            TokenAuthenticator().authenticate("")

    def test_unknown_token(self):
        with pytest.raises(AuthenticationError):
            TokenAuthenticator().authenticate("forged-token")

    def test_revoked_token(self):
        authenticator = TokenAuthenticator()
        token = authenticator.issue("alice")
        assert authenticator.revoke(token.token)
        with pytest.raises(AuthenticationError):
            authenticator.authenticate(token.token)

    def test_revoke_unknown_token(self):
        assert not TokenAuthenticator().revoke("nope")

    def test_known_clients(self):
        authenticator = TokenAuthenticator()
        authenticator.issue("alice")
        authenticator.issue("bob")
        assert authenticator.known_clients() == ("alice", "bob")


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestRateLimiter:
    def test_allows_up_to_limit(self):
        limiter = RateLimiter(max_requests=3, window_seconds=60, clock=FakeClock())
        for _ in range(3):
            limiter.check("alice")
        with pytest.raises(RateLimitExceededError):
            limiter.check("alice")

    def test_limits_are_per_client(self):
        limiter = RateLimiter(max_requests=1, window_seconds=60, clock=FakeClock())
        limiter.check("alice")
        limiter.check("bob")
        with pytest.raises(RateLimitExceededError):
            limiter.check("alice")

    def test_window_slides(self):
        clock = FakeClock()
        limiter = RateLimiter(max_requests=2, window_seconds=10, clock=clock)
        limiter.check("alice")
        limiter.check("alice")
        clock.advance(11)
        limiter.check("alice")  # old requests expired

    def test_remaining(self):
        clock = FakeClock()
        limiter = RateLimiter(max_requests=5, window_seconds=10, clock=clock)
        assert limiter.remaining("alice") == 5
        limiter.check("alice")
        assert limiter.remaining("alice") == 4

    def test_reset(self):
        limiter = RateLimiter(max_requests=1, window_seconds=10, clock=FakeClock())
        limiter.check("alice")
        limiter.reset("alice")
        limiter.check("alice")
        limiter.reset()
        limiter.check("alice")

    def test_invalid_construction(self):
        with pytest.raises(RateLimitExceededError):
            RateLimiter(max_requests=0)
        with pytest.raises(RateLimitExceededError):
            RateLimiter(window_seconds=0)
