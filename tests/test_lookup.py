"""Tests for repro.core.lookup (the Look Up function, §III-B)."""

from __future__ import annotations

import pytest

from repro import CrypTextConfig
from repro.core.dictionary import PerturbationDictionary
from repro.core.lookup import LookupEngine
from repro.storage import TTLCache
from tests.conftest import TABLE1_SENTENCES


@pytest.fixture()
def table1_lookup() -> LookupEngine:
    dictionary = PerturbationDictionary.from_corpus(list(TABLE1_SENTENCES))
    return LookupEngine(dictionary)


class TestPaperQueryExample:
    def test_republicans_with_k1_d1(self, table1_lookup):
        # Paper §III-B: query "republicans" with k=1, d=1 returns
        # {republicans, repubLIEcans} (republic@@ns is 2 edits away).
        result = table1_lookup.look_up("republicans", phonetic_level=1, max_edit_distance=1)
        assert set(result.tokens) == {"republicans", "repubLIEcans"}

    def test_republicans_with_default_d3_includes_all(self, table1_lookup):
        result = table1_lookup.look_up("republicans")
        assert set(result.tokens) == {"republicans", "repubLIEcans", "republic@@ns"}

    def test_perturbations_exclude_the_query_itself(self, table1_lookup):
        result = table1_lookup.look_up("republicans")
        assert "republicans" not in result.perturbation_tokens()
        assert "repubLIEcans" in result.perturbation_tokens()

    def test_soundex_key_recorded(self, table1_lookup):
        result = table1_lookup.look_up("republicans")
        assert result.soundex_key == table1_lookup.dictionary.encoder(1).encode("republicans")


class TestMatchMetadata:
    def test_matches_sorted_by_frequency(self, cryptext_small):
        result = cryptext_small.look_up("the")
        counts = [match.count for match in result.matches]
        assert counts == sorted(counts, reverse=True)

    def test_match_fields(self, table1_lookup):
        result = table1_lookup.look_up("republicans")
        by_token = {match.token: match for match in result.matches}
        assert by_token["republicans"].is_original
        assert by_token["republicans"].edit_distance == 0
        assert by_token["repubLIEcans"].edit_distance == 1
        assert not by_token["repubLIEcans"].is_original

    def test_to_dict_round_trip_fields(self, table1_lookup):
        payload = table1_lookup.look_up("republicans").to_dict()
        assert payload["query"] == "republicans"
        assert payload["phonetic_level"] == 1
        assert payload["max_edit_distance"] == 3
        assert {match["token"] for match in payload["matches"]} == {
            "republicans",
            "repubLIEcans",
            "republic@@ns",
        }

    def test_enriched_queries_start_with_original(self, table1_lookup):
        enriched = table1_lookup.look_up("republicans").enriched_queries()
        assert enriched[0] == "republicans"
        assert len(enriched) == 3
        assert table1_lookup.look_up("republicans").enriched_queries(limit=1) == (
            "republicans",
            table1_lookup.look_up("republicans").perturbation_tokens()[0],
        )


class TestUnknownAndEdgeQueries:
    def test_unknown_word_returns_empty_or_self(self, table1_lookup):
        result = table1_lookup.look_up("zebra")
        assert result.perturbation_tokens() == ()

    def test_unencodable_query(self, table1_lookup):
        result = table1_lookup.look_up("???")
        assert result.soundex_key is None
        assert result.matches == ()

    def test_edit_distance_zero_only_exact_canonical_matches(self, cryptext_small):
        result = cryptext_small.look_up("democrats", max_edit_distance=0)
        for match in result.matches:
            assert match.edit_distance == 0


class TestCaseSensitivity:
    def test_case_insensitive_merges_variants(self):
        dictionary = PerturbationDictionary.from_corpus(
            ["the democRATs", "the DemocRATs", "the democrats"]
        )
        engine = LookupEngine(dictionary)
        sensitive = engine.look_up("democrats", case_sensitive=True)
        insensitive = engine.look_up("democrats", case_sensitive=False)
        assert len(insensitive.matches) < len(sensitive.matches)
        merged = {match.token.lower() for match in insensitive.matches}
        assert merged == {"democrats", "democrats".lower()} or "democrats" in merged

    def test_case_insensitive_sums_counts(self):
        dictionary = PerturbationDictionary.from_corpus(
            ["the democRATs", "the DemocRATs", "the democRATs"]
        )
        engine = LookupEngine(dictionary)
        result = engine.look_up("democrats", case_sensitive=False)
        total = sum(match.count for match in result.matches)
        assert total == 3


class TestCaching:
    def test_cache_hit_on_repeated_query(self):
        dictionary = PerturbationDictionary.from_corpus(list(TABLE1_SENTENCES))
        cache = TTLCache(max_entries=16, default_ttl=60)
        engine = LookupEngine(dictionary, cache=cache)
        engine.look_up("republicans")
        engine.look_up("republicans")
        assert cache.stats.hits >= 1

    def test_cache_disabled_by_config(self):
        config = CrypTextConfig(cache_enabled=False)
        dictionary = PerturbationDictionary.from_corpus(list(TABLE1_SENTENCES), config=config)
        engine = LookupEngine(dictionary, config=config)
        assert engine.cache is None
        assert engine.look_up("republicans").tokens  # still works

    def test_different_parameters_not_conflated_by_cache(self, table1_lookup):
        loose = table1_lookup.look_up("republicans", max_edit_distance=3)
        tight = table1_lookup.look_up("republicans", max_edit_distance=1)
        assert len(loose.matches) > len(tight.matches)


class TestBulkLookup:
    def test_look_up_many(self, table1_lookup):
        results = table1_lookup.look_up_many(["republicans", "dirty"])
        assert set(results) == {"republicans", "dirty"}
        assert "repubLIEcans" in results["republicans"].tokens
        assert "dirrty" in results["dirty"].tokens


class TestTranspositionOverride:
    """Per-query ``use_transpositions`` override (the PR 3 follow-up).

    "teh" and "the" share a sound bucket at phonetic level 0 and differ by
    one adjacent swap — in-bound at ``d = 1`` only under the OSA policy, so
    the override observably flips the result set.
    """

    CORPUS = ["the democrats support the vaccine mandate", "i saw the thing"]

    @pytest.fixture()
    def engine(self) -> LookupEngine:
        config = CrypTextConfig(phonetic_level=0, edit_distance=1)
        dictionary = PerturbationDictionary.from_corpus(self.CORPUS, config=config)
        dictionary.seed_lexicon(["the", "thing", "vaccine"])
        return LookupEngine(dictionary, config=config)

    def test_override_flips_the_swap_result(self, engine):
        assert "the" not in engine.look_up("teh").tokens
        assert "the" in engine.look_up("teh", use_transpositions=True).tokens
        # Explicit False equals the configured default here.
        assert engine.look_up("teh", use_transpositions=False) == engine.look_up("teh")

    def test_override_categorizes_consistently_with_its_policy(self, engine):
        result = engine.look_up("teh", use_transpositions=True)
        categories = {match.token: match.category.value for match in result.matches}
        assert categories["the"] == "adjacent_swap"
        wide = engine.look_up("teh", max_edit_distance=2)
        wide_categories = {match.token: match.category.value for match in wide.matches}
        # Same pair admitted as two plain-Levenshtein edits is not one swap.
        assert wide_categories["the"] == "mixed"

    def test_override_is_part_of_the_cache_key(self, engine):
        osa = engine.look_up("teh", use_transpositions=True)
        plain = engine.look_up("teh")
        assert osa != plain
        # Serve both again from cache: still distinct, no cross-talk.
        assert engine.look_up("teh", use_transpositions=True) == osa
        assert engine.look_up("teh") == plain

    def test_override_matches_config_level_policy(self):
        config = CrypTextConfig(
            phonetic_level=0, edit_distance=1, use_transpositions=True
        )
        dictionary = PerturbationDictionary.from_corpus(self.CORPUS, config=config)
        dictionary.seed_lexicon(["the", "thing", "vaccine"])
        configured = LookupEngine(dictionary, config=config).look_up("teh")
        overridden = self._engine_with_default_policy().look_up(
            "teh", use_transpositions=True
        )
        assert configured.tokens == overridden.tokens

    def _engine_with_default_policy(self) -> LookupEngine:
        config = CrypTextConfig(phonetic_level=0, edit_distance=1)
        dictionary = PerturbationDictionary.from_corpus(self.CORPUS, config=config)
        dictionary.seed_lexicon(["the", "thing", "vaccine"])
        return LookupEngine(dictionary, config=config)

    def test_batch_engine_honours_the_override(self):
        from repro.batch import BatchEngine

        config = CrypTextConfig(phonetic_level=0, edit_distance=1)
        dictionary = PerturbationDictionary.from_corpus(self.CORPUS, config=config)
        dictionary.seed_lexicon(["the", "thing", "vaccine"])
        engine = BatchEngine(dictionary, config=config, num_shards=2)
        try:
            sequential = engine.lookup_engine.look_up("teh", use_transpositions=True)
            (batched,) = engine.look_up_batch(["teh"], use_transpositions=True)
            assert batched == sequential
            (plain,) = engine.look_up_batch(["teh"])
            assert "the" not in plain.tokens
        finally:
            engine.close()
