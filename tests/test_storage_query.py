"""Tests for repro.storage.query (Mongo-style filter documents)."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.storage import compile_filter, matches_filter

DOCUMENT = {
    "token": "repubLIEcans",
    "count": 3,
    "is_word": False,
    "keys": {"k1": "RE14252"},
    "sources": ["twitter", "hatespeech"],
    "text": "the repubLIEcans are at it again",
}


class TestEquality:
    def test_simple_equality(self):
        assert matches_filter(DOCUMENT, {"token": "repubLIEcans"})
        assert not matches_filter(DOCUMENT, {"token": "republicans"})

    def test_missing_field_never_matches_equality(self):
        assert not matches_filter(DOCUMENT, {"missing": "x"})

    def test_dotted_path(self):
        assert matches_filter(DOCUMENT, {"keys.k1": "RE14252"})
        assert not matches_filter(DOCUMENT, {"keys.k2": "RE14252"})

    def test_empty_filter_matches_everything(self):
        assert matches_filter(DOCUMENT, {})
        assert matches_filter(DOCUMENT, None)

    def test_multiple_fields_are_conjunctive(self):
        assert matches_filter(DOCUMENT, {"count": 3, "is_word": False})
        assert not matches_filter(DOCUMENT, {"count": 3, "is_word": True})


class TestComparisons:
    def test_numeric_comparisons(self):
        assert matches_filter(DOCUMENT, {"count": {"$gt": 2}})
        assert matches_filter(DOCUMENT, {"count": {"$gte": 3}})
        assert matches_filter(DOCUMENT, {"count": {"$lt": 4}})
        assert matches_filter(DOCUMENT, {"count": {"$lte": 3}})
        assert not matches_filter(DOCUMENT, {"count": {"$gt": 3}})

    def test_ne(self):
        assert matches_filter(DOCUMENT, {"token": {"$ne": "republicans"}})
        assert not matches_filter(DOCUMENT, {"token": {"$ne": "repubLIEcans"}})

    def test_string_range_comparison(self):
        assert matches_filter(DOCUMENT, {"token": {"$gte": "rep"}})

    def test_incomparable_types_do_not_match(self):
        assert not matches_filter(DOCUMENT, {"token": {"$gt": 10}})

    def test_missing_field_fails_comparison(self):
        assert not matches_filter(DOCUMENT, {"nope": {"$gt": 1}})


class TestMembership:
    def test_in_scalar_field(self):
        assert matches_filter(DOCUMENT, {"token": {"$in": ["a", "repubLIEcans"]}})
        assert not matches_filter(DOCUMENT, {"token": {"$in": ["a", "b"]}})

    def test_in_array_field_matches_any_element(self):
        assert matches_filter(DOCUMENT, {"sources": {"$in": ["twitter"]}})
        assert not matches_filter(DOCUMENT, {"sources": {"$in": ["facebook"]}})

    def test_nin(self):
        assert matches_filter(DOCUMENT, {"token": {"$nin": ["republicans"]}})
        assert not matches_filter(DOCUMENT, {"sources": {"$nin": ["twitter"]}})
        assert matches_filter(DOCUMENT, {"missing": {"$nin": ["anything"]}})

    def test_in_requires_sequence(self):
        with pytest.raises(QueryError):
            compile_filter({"token": {"$in": "notalist"}})
        with pytest.raises(QueryError):
            compile_filter({"token": {"$nin": 5}})

    def test_all_and_elem(self):
        assert matches_filter(DOCUMENT, {"sources": {"$all": ["twitter", "hatespeech"]}})
        assert not matches_filter(DOCUMENT, {"sources": {"$all": ["twitter", "reddit"]}})
        assert matches_filter(DOCUMENT, {"sources": {"$elem": "hatespeech"}})
        assert not matches_filter(DOCUMENT, {"count": {"$elem": 3}})

    def test_all_requires_sequence(self):
        with pytest.raises(QueryError):
            compile_filter({"sources": {"$all": "twitter"}})


class TestTextOperators:
    def test_exists(self):
        assert matches_filter(DOCUMENT, {"keys": {"$exists": True}})
        assert matches_filter(DOCUMENT, {"nope": {"$exists": False}})
        assert not matches_filter(DOCUMENT, {"nope": {"$exists": True}})

    def test_contains(self):
        assert matches_filter(DOCUMENT, {"text": {"$contains": "LIE"}})
        assert not matches_filter(DOCUMENT, {"text": {"$contains": "zebra"}})
        assert not matches_filter(DOCUMENT, {"count": {"$contains": "3"}})

    def test_regex(self):
        assert matches_filter(DOCUMENT, {"token": {"$regex": r"LIE"}})
        assert matches_filter(DOCUMENT, {"text": {"$regex": r"^the\s"}})
        assert not matches_filter(DOCUMENT, {"token": {"$regex": r"^\d+$"}})

    def test_invalid_regex_rejected(self):
        with pytest.raises(QueryError):
            compile_filter({"token": {"$regex": "["}})


class TestBooleanComposition:
    def test_or(self):
        query = {"$or": [{"token": "republicans"}, {"count": {"$gte": 3}}]}
        assert matches_filter(DOCUMENT, query)

    def test_and(self):
        query = {"$and": [{"count": 3}, {"is_word": False}]}
        assert matches_filter(DOCUMENT, query)
        assert not matches_filter(DOCUMENT, {"$and": [{"count": 3}, {"is_word": True}]})

    def test_top_level_not(self):
        assert matches_filter(DOCUMENT, {"$not": {"token": "republicans"}})
        assert not matches_filter(DOCUMENT, {"$not": {"token": "repubLIEcans"}})

    def test_field_level_not(self):
        assert matches_filter(DOCUMENT, {"count": {"$not": {"$gt": 5}}})
        assert not matches_filter(DOCUMENT, {"count": {"$not": {"$gt": 2}}})

    def test_or_requires_list(self):
        with pytest.raises(QueryError):
            compile_filter({"$or": {"token": "x"}})


class TestErrors:
    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            compile_filter({"count": {"$near": 3}})

    def test_unknown_top_level_operator_rejected(self):
        with pytest.raises(QueryError):
            compile_filter({"$nor": []})

    def test_non_mapping_filter_rejected(self):
        with pytest.raises(QueryError):
            compile_filter(["not", "a", "mapping"])  # type: ignore[arg-type]
