"""Tests for MultiPlatformListener and usage merging (paper §IV future work)."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.social import MultiPlatformListener, SocialListener, SocialPlatform


@pytest.fixture(scope="module")
def reddit_platform(synthetic_posts) -> SocialPlatform:
    platform = SocialPlatform("reddit")
    platform.ingest_posts(synthetic_posts)
    return platform


@pytest.fixture(scope="module")
def multi_listener(cryptext_synthetic, twitter_platform, reddit_platform):
    return MultiPlatformListener(
        [twitter_platform, reddit_platform], cryptext_synthetic.lookup_engine
    )


class TestMultiPlatformListener:
    def test_platform_names(self, multi_listener):
        assert multi_listener.platform_names == ("reddit", "twitter")

    def test_monitor_returns_per_platform_and_merged(self, multi_listener):
        usage = multi_listener.monitor_keyword("vaccine")
        assert set(usage) == {"twitter", "reddit", "all"}
        assert usage["all"].total_posts == (
            usage["twitter"].total_posts + usage["reddit"].total_posts
        )
        assert usage["all"].perturbed_posts == (
            usage["twitter"].perturbed_posts + usage["reddit"].perturbed_posts
        )

    def test_merged_timeline_frequency_sums(self, multi_listener):
        usage = multi_listener.monitor_keyword("democrats")
        merged_total = sum(point.frequency for point in usage["all"].timeline)
        assert merged_total == usage["all"].total_posts

    def test_merged_sentiment_within_bounds(self, multi_listener):
        usage = multi_listener.monitor_keyword("vaccine")
        for point in usage["all"].timeline:
            assert -1.0 <= point.average_sentiment <= 1.0
            assert 0.0 <= point.negative_share <= 1.0

    def test_monitor_keywords_bulk(self, multi_listener):
        usage = multi_listener.monitor_keywords(["vaccine", "democrats"])
        assert set(usage) == {"vaccine", "democrats"}
        assert set(usage["vaccine"]) == {"twitter", "reddit", "all"}

    def test_empty_platform_list_rejected(self, cryptext_synthetic):
        with pytest.raises(PlatformError):
            MultiPlatformListener([], cryptext_synthetic.lookup_engine)

    def test_duplicate_platform_names_rejected(self, cryptext_synthetic, twitter_platform):
        with pytest.raises(PlatformError):
            MultiPlatformListener(
                [twitter_platform, twitter_platform], cryptext_synthetic.lookup_engine
            )


class TestMergeUsage:
    def test_merge_requires_same_keyword(self, cryptext_synthetic, twitter_platform):
        listener = SocialListener(twitter_platform, cryptext_synthetic.lookup_engine)
        first = listener.monitor_keyword("vaccine")
        second = listener.monitor_keyword("democrats")
        with pytest.raises(PlatformError):
            listener.merge_usage([first, second])

    def test_merge_requires_nonempty_input(self, cryptext_synthetic, twitter_platform):
        listener = SocialListener(twitter_platform, cryptext_synthetic.lookup_engine)
        with pytest.raises(PlatformError):
            listener.merge_usage([])

    def test_merge_single_usage_is_identity_like(self, cryptext_synthetic, twitter_platform):
        listener = SocialListener(twitter_platform, cryptext_synthetic.lookup_engine)
        usage = listener.monitor_keyword("vaccine")
        merged = listener.merge_usage([usage])
        assert merged.total_posts == usage.total_posts
        assert merged.perturbed_posts == usage.perturbed_posts
        assert [point.frequency for point in merged.timeline] == [
            point.frequency for point in usage.timeline
        ]

    def test_merge_aggregates_perturbation_counts(self, cryptext_synthetic, twitter_platform):
        listener = SocialListener(twitter_platform, cryptext_synthetic.lookup_engine)
        usage = listener.monitor_keyword("vaccine")
        merged = listener.merge_usage([usage, usage])
        for token, count in usage.per_perturbation_counts.items():
            assert merged.per_perturbation_counts[token] == 2 * count
