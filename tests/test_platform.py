"""Tests for repro.social.platform (the simulated social platform)."""

from __future__ import annotations

import pytest

from repro.datasets import build_social_corpus
from repro.errors import PlatformError
from repro.social import SocialPlatform


@pytest.fixture()
def platform() -> SocialPlatform:
    instance = SocialPlatform("twitter")
    instance.ingest_raw("the democrats push the vaccine mandate", "2021-11-02", author="a")
    instance.ingest_raw("the dem0crats lie about everything", "2021-11-03", author="b")
    instance.ingest_raw("i love my garden in november", "2021-11-03", author="c")
    instance.ingest_raw("republicans block the bill again", "2021-11-05", author="a")
    return instance


class TestIngestion:
    def test_ingest_posts_filters_by_platform(self, synthetic_posts):
        twitter = SocialPlatform("twitter")
        reddit = SocialPlatform("reddit")
        twitter_count = twitter.ingest_posts(synthetic_posts)
        reddit_count = reddit.ingest_posts(synthetic_posts)
        assert twitter_count + reddit_count == len(synthetic_posts)
        assert len(twitter) == twitter_count
        assert len(reddit) == reddit_count

    def test_ingest_all_platforms_when_not_filtering(self, synthetic_posts):
        mixed = SocialPlatform("twitter")
        count = mixed.ingest_posts(synthetic_posts, only_matching_platform=False)
        assert count == len(synthetic_posts)

    def test_ingest_raw_assigns_sequential_ids(self, platform):
        new_id = platform.ingest_raw("another vaccine post", "2021-11-06")
        assert new_id == len(platform)

    def test_ingest_empty_text_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.ingest_raw("   ", "2021-11-06")

    def test_ingest_raw_metadata_stored(self):
        platform = SocialPlatform("reddit")
        platform.ingest_raw("hello world", "2021-11-01", subreddit="politics")
        assert platform.all_posts()[0]["subreddit"] == "politics"


class TestSearch:
    def test_single_keyword(self, platform):
        result = platform.search("democrats")
        assert len(result) == 1
        assert "democrats" in result.texts[0]

    def test_search_is_case_insensitive(self, platform):
        assert len(platform.search("DEMOCRATS")) == 1

    def test_multi_keyword_union(self, platform):
        result = platform.search(["democrats", "dem0crats"])
        assert len(result) == 2

    def test_perturbed_keyword_only_matches_perturbed_post(self, platform):
        result = platform.search("dem0crats")
        assert len(result) == 1
        assert "dem0crats" in result.texts[0]

    def test_no_match(self, platform):
        assert len(platform.search("zebra")) == 0

    def test_date_range_filters(self, platform):
        assert len(platform.search("democrats", since="2021-11-03")) == 0
        assert len(platform.search(["democrats", "republicans"], since="2021-11-04")) == 1
        assert len(platform.search(["democrats", "republicans"], until="2021-11-02")) == 1

    def test_limit(self, platform):
        result = platform.search(["democrats", "dem0crats", "republicans"], limit=2)
        assert len(result) == 2

    def test_results_sorted_most_recent_first(self, platform):
        result = platform.search(["democrats", "dem0crats", "republicans"])
        dates = [str(post["created_at"]) for post in result.posts]
        assert dates == sorted(dates, reverse=True)

    def test_empty_query_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.search([])

    def test_count_matching(self, platform):
        assert platform.count_matching("republicans") == 1


class TestStream:
    def test_stream_batches_in_order(self, platform):
        batches = list(platform.stream(batch_size=3))
        assert [len(batch) for batch in batches] == [3, 1]
        ids = [post["post_id"] for batch in batches for post in batch]
        assert ids == sorted(ids)

    def test_stream_resumes_after_cursor(self, platform):
        batches = list(platform.stream(batch_size=10, after_post_id=2))
        assert len(batches) == 1
        assert [post["post_id"] for post in batches[0]] == [3, 4]

    def test_stream_empty_when_exhausted(self, platform):
        assert list(platform.stream(batch_size=10, after_post_id=99)) == []

    def test_stream_batch_size_validation(self, platform):
        with pytest.raises(PlatformError):
            list(platform.stream(batch_size=0))

    def test_posts_between(self, platform):
        posts = platform.posts_between("2021-11-02", "2021-11-03")
        assert len(posts) == 3

    def test_corpus_scale_search(self, twitter_platform):
        # The ingested synthetic corpus is searchable end to end.
        result = twitter_platform.search("vaccine")
        assert len(result) > 0
        assert all("vaccine" in text.lower() for text in result.texts)
