"""Tests for repro.social.moderation (the content-moderation use case)."""

from __future__ import annotations

import pytest

from repro.classifiers import SimulatedToxicityAPI
from repro.datasets import build_classification_dataset
from repro.errors import CrypTextError
from repro.social import ModerationPipeline


class KeywordToxicityStub:
    """Deterministic stand-in classifier: toxic iff a trigger word is present."""

    service_name = "stub_toxicity"

    def __init__(self, triggers=("worthless", "scum", "vermin")) -> None:
        self.triggers = tuple(triggers)

    def predict_label(self, text: str) -> str:
        lowered = text.lower()
        return "toxic" if any(trigger in lowered for trigger in self.triggers) else "nontoxic"


@pytest.fixture(scope="module")
def stub_pipeline(cryptext_synthetic) -> ModerationPipeline:
    return ModerationPipeline(cryptext_synthetic, KeywordToxicityStub())


@pytest.fixture(scope="module")
def api_pipeline(cryptext_synthetic) -> ModerationPipeline:
    texts, labels = build_classification_dataset("toxicity", num_samples=400, seed=77)
    api = SimulatedToxicityAPI().train(texts, labels)
    return ModerationPipeline(cryptext_synthetic, api)


class TestVerdictLogic:
    def test_overtly_toxic_post_removed(self, stub_pipeline):
        verdict = stub_pipeline.review_post(
            "you are a truly worthless person and everyone here knows it"
        )
        assert verdict.action == "remove"
        assert verdict.flagged

    def test_clean_post_allowed(self, stub_pipeline):
        verdict = stub_pipeline.review_post(
            "you are a truly wonderful person and everyone here knows it"
        )
        assert verdict.action == "allow"
        assert not verdict.flagged

    def test_evasive_post_caught_after_normalization(self, stub_pipeline):
        # The abusive keyword is perturbed, so the raw text evades the
        # classifier; normalization restores it and the post is caught.
        evasive = "you are a truly w0rthless person and everyone here knows it"
        verdict = stub_pipeline.review_post(evasive)
        assert verdict.raw_label == "nontoxic"
        assert verdict.normalized_label == "toxic"
        assert verdict.action == "remove_after_normalization"
        assert verdict.num_perturbations >= 1
        assert verdict.flagged

    def test_reason_is_informative(self, stub_pipeline):
        verdict = stub_pipeline.review_post(
            "you are a truly w0rthless person and everyone here knows it"
        )
        assert "de-perturbed" in verdict.reason or "evades" in verdict.reason

    def test_review_action_for_sensitive_perturbations(self, stub_pipeline):
        # Not toxic even after normalization, but several sensitive words are
        # perturbed -> escalate for human review.
        verdict = stub_pipeline.review_post(
            "people discuss the vacc1ne and the dem0crats man_date all day"
        )
        assert verdict.action == "review"
        assert verdict.num_perturbations >= 2
        assert verdict.perturbed_sensitive_tokens

    def test_to_dict(self, stub_pipeline):
        payload = stub_pipeline.review_post("a calm sentence about gardens").to_dict()
        assert set(payload) >= {"action", "reason", "raw_label", "normalized_label"}

    def test_threshold_validation(self, cryptext_synthetic):
        with pytest.raises(CrypTextError):
            ModerationPipeline(
                cryptext_synthetic, KeywordToxicityStub(), sensitive_review_threshold=0
            )


class TestReport:
    def test_batch_summary_counts(self, stub_pipeline):
        posts = [
            "you are a truly worthless person and everyone here knows it",
            "you are a truly w0rthless person and everyone here knows it",
            "you are a truly wonderful person and everyone here knows it",
            "a quiet post about the garden and the weather",
        ]
        report = stub_pipeline.review_posts(posts)
        summary = report.summary()
        assert summary["total"] == 4
        assert summary["remove"] == 1
        assert summary["remove_after_normalization"] == 1
        assert summary["allow"] >= 1
        assert sum(
            summary[key]
            for key in ("remove", "remove_after_normalization", "review", "allow")
        ) == 4

    def test_report_accessors_partition_verdicts(self, stub_pipeline):
        posts = [
            "you are a truly worthless person and everyone here knows it",
            "you are a truly wonderful person and everyone here knows it",
        ]
        report = stub_pipeline.review_posts(posts)
        partitions = (
            report.flagged_raw
            + report.caught_by_normalization
            + report.needs_review
            + report.allowed
        )
        assert len(partitions) == len(report.verdicts)


class TestWithSimulatedAPI:
    def test_moderation_surfaces_perturbed_toxic_traffic(self, api_pipeline, synthetic_posts):
        # On synthetic traffic, the pipeline (clean-trained toxicity API +
        # normalization + sensitive-perturbation escalation) must surface a
        # solid share of toxic posts that carry perturbations.
        toxic_perturbed = [
            post.text
            for post in synthetic_posts
            if post.toxic and post.has_perturbation
        ][:40]
        assert toxic_perturbed
        report = api_pipeline.review_posts(toxic_perturbed)
        surfaced = (
            len(report.flagged_raw)
            + len(report.caught_by_normalization)
            + len(report.needs_review)
        )
        assert surfaced / len(toxic_perturbed) >= 0.5

    def test_normalization_never_hides_toxicity(self, api_pipeline, synthetic_posts):
        # A post flagged on its raw text stays flagged: the pipeline checks
        # the raw label first, so normalization can only add detections.
        flagged_raw = [
            verdict
            for verdict in api_pipeline.review_posts(
                [post.text for post in synthetic_posts[:60]]
            ).verdicts
            if verdict.raw_label == "toxic"
        ]
        assert all(verdict.action == "remove" for verdict in flagged_raw)
