"""Tests for repro.core.soundex."""

from __future__ import annotations

import pytest

from repro.core.soundex import CustomSoundex, OriginalSoundex, soundex_key
from repro.errors import EncodingError


class TestOriginalSoundex:
    def test_classic_codes(self):
        encoder = OriginalSoundex()
        assert encoder.encode("robert") == "R163"
        assert encoder.encode("rupert") == "R163"

    def test_paper_lesbian_collision(self):
        # §III-A: original Soundex maps both "losbian" and "lesbian" to L215.
        encoder = OriginalSoundex()
        assert encoder.encode("lesbian") == "L215"
        assert encoder.encode("losbian") == "L215"

    def test_short_words_zero_padded(self):
        assert OriginalSoundex().encode("the") == "T000"

    def test_case_insensitive(self):
        encoder = OriginalSoundex()
        assert encoder.encode("Vaccine") == encoder.encode("vaccine")

    def test_no_alphabetic_content_rejected(self):
        with pytest.raises(EncodingError):
            OriginalSoundex().encode("1234")

    def test_empty_token_rejected(self):
        with pytest.raises(EncodingError):
            OriginalSoundex().encode("   ")


class TestCustomSoundexTable1:
    """The exact hash-map keys the paper's Table I illustrates."""

    def test_the_and_thee_share_TH000(self):
        encoder = CustomSoundex(phonetic_level=1)
        assert encoder.encode("the") == "TH000"
        assert encoder.encode("thee") == "TH000"

    def test_dirty_variants_share_DI630(self):
        encoder = CustomSoundex(phonetic_level=1)
        assert encoder.encode("dirty") == "DI630"
        assert encoder.encode("dirrrty") == "DI630"

    def test_republicans_variants_share_one_key(self):
        encoder = CustomSoundex(phonetic_level=1)
        expected = encoder.encode("republicans")
        assert encoder.encode("repubLIEcans") == expected
        assert encoder.encode("republic@@ns") == expected


class TestCustomSoundexVisualFolding:
    def test_leet_variants_match(self):
        assert soundex_key("democrats") == soundex_key("dem0cr@ts")
        assert soundex_key("vaccine") == soundex_key("vacc1ne")
        assert soundex_key("suicide") == soundex_key("suic1de")

    def test_separator_variants_match(self):
        assert soundex_key("muslim") == soundex_key("mus-lim")
        assert soundex_key("chinese") == soundex_key("chi-nese")
        assert soundex_key("vaccine") == soundex_key("vac.cine")

    def test_repetition_variants_match(self):
        assert soundex_key("porn") == soundex_key("porrrrn")

    def test_phonetic_respelling_matches(self):
        assert soundex_key("depression") == soundex_key("depresxion")

    def test_case_emphasis_matches(self):
        assert soundex_key("democrats") == soundex_key("democRATs")
        assert soundex_key("republicans") == soundex_key("repubLIEcans")

    def test_accented_variants_match(self):
        assert soundex_key("democrats") == soundex_key("demöcrats")


class TestPhoneticLevel:
    def test_level_separates_losbian_from_lesbian(self):
        # The whole point of fixing k+1 characters (paper §III-A).
        assert soundex_key("losbian", phonetic_level=1) != soundex_key(
            "lesbian", phonetic_level=1
        )

    def test_level_zero_behaves_like_first_char_prefix(self):
        assert soundex_key("losbian", phonetic_level=0) == soundex_key(
            "lesbian", phonetic_level=0
        )

    def test_prefix_grows_with_level(self):
        encoder0 = CustomSoundex(phonetic_level=0)
        encoder2 = CustomSoundex(phonetic_level=2)
        assert encoder0.encode("republicans").startswith("R")
        assert encoder2.encode("republicans").startswith("REP")

    def test_short_token_prefix_padded(self):
        # canonical "a" is shorter than k+1 at level 2; prefix is padded.
        code = CustomSoundex(phonetic_level=2).encode("a")
        assert len(code) >= 3 + 3  # 3-char prefix + 3 digits

    def test_negative_level_rejected(self):
        with pytest.raises(EncodingError):
            CustomSoundex(phonetic_level=-1)


class TestCanonicalization:
    def test_canonicalize_paper_examples(self):
        encoder = CustomSoundex()
        assert encoder.canonicalize("Dem0cr@ts") == "democrats"
        assert encoder.canonicalize("mus-lim") == "muslim"
        assert encoder.canonicalize("repubLIEcans") == "republiecans"

    def test_canonicalize_drops_residual_symbols(self):
        assert CustomSoundex().canonicalize("vac***cine") == "vaccine"

    def test_encode_or_none_on_unencodable(self):
        encoder = CustomSoundex()
        # "?" has no visual equivalence class and no phonetic content.
        assert encoder.encode_or_none("???") is None
        assert encoder.encode_or_none("vaccine") is not None

    def test_encode_raises_on_unencodable(self):
        with pytest.raises(EncodingError):
            CustomSoundex().encode("??,,")

    def test_leet_only_tokens_are_encodable(self):
        # Digits and symbols fold onto letters, so an all-leet token like
        # "1!!" still receives a phonetic encoding.
        assert CustomSoundex().encode_or_none("1!!") is not None

    def test_same_sound_helper(self):
        encoder = CustomSoundex()
        assert encoder.same_sound("democrats", "demokrats")
        assert not encoder.same_sound("democrats", "elephants")
        assert not encoder.same_sound("democrats", "!!!")


class TestDeterminismAndShape:
    def test_encoding_is_deterministic(self):
        encoder = CustomSoundex(phonetic_level=1)
        assert encoder.encode("republicans") == encoder.encode("republicans")

    def test_encoding_shape(self):
        code = CustomSoundex(phonetic_level=1).encode("vaccine")
        prefix, digits = code[:2], code[2:]
        assert prefix.isupper() and prefix.isalpha()
        assert digits.isdigit()
        assert len(digits) >= 3

    def test_module_helper_matches_encoder(self):
        assert soundex_key("vaccine", phonetic_level=2) == CustomSoundex(
            phonetic_level=2
        ).encode("vaccine")
