"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.core.edit_distance import (
    bounded_levenshtein,
    damerau_levenshtein_distance,
    levenshtein_distance,
    similarity_ratio,
)
from repro.core.soundex import CustomSoundex
from repro.core.sms import SMSCheck
from repro.storage import Collection, TTLCache, compile_filter
from repro.text.charmap import fold_visual_characters, visual_equivalence_class
from repro.text.tokenizer import Tokenizer, detokenize
from repro.text.unicode_fold import fold_text

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

words = st.text(alphabet=string.ascii_letters, min_size=1, max_size=12)
leet_words = st.text(
    alphabet=string.ascii_letters + "013457@$!|-._", min_size=1, max_size=12
)
sentences = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8), min_size=0, max_size=10
).map(" ".join)


# ---------------------------------------------------------------------------
# edit distance metric axioms
# ---------------------------------------------------------------------------


class TestLevenshteinProperties:
    @given(words)
    def test_identity(self, word):
        assert levenshtein_distance(word, word) == 0

    @given(words, words)
    def test_symmetry(self, first, second):
        assert levenshtein_distance(first, second) == levenshtein_distance(second, first)

    @given(words, words)
    def test_positivity_and_upper_bound(self, first, second):
        distance = levenshtein_distance(first, second)
        assert 0 <= distance <= max(len(first), len(second))
        if first != second:
            assert distance >= 1

    @given(words, words, words)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= levenshtein_distance(
            a, b
        ) + levenshtein_distance(b, c)

    @given(words, words, st.integers(min_value=0, max_value=15))
    def test_bounded_agrees_with_full(self, first, second, bound):
        full = levenshtein_distance(first, second)
        bounded = bounded_levenshtein(first, second, bound)
        if full <= bound:
            assert bounded == full
        else:
            assert bounded is None

    @given(words, words)
    def test_damerau_never_exceeds_levenshtein(self, first, second):
        assert damerau_levenshtein_distance(first, second) <= levenshtein_distance(
            first, second
        )

    @given(words, words)
    def test_similarity_ratio_bounds(self, first, second):
        assert 0.0 <= similarity_ratio(first, second) <= 1.0


# ---------------------------------------------------------------------------
# Soundex invariants
# ---------------------------------------------------------------------------


class TestSoundexProperties:
    @given(words)
    def test_deterministic(self, word):
        encoder = CustomSoundex(phonetic_level=1)
        assert encoder.encode(word) == encoder.encode(word)

    @given(words)
    def test_case_insensitive(self, word):
        encoder = CustomSoundex(phonetic_level=1)
        assert encoder.encode(word.upper()) == encoder.encode(word.lower())

    @given(leet_words)
    def test_visual_folding_invariance(self, token):
        # Encoding a token equals encoding its visually folded form.
        encoder = CustomSoundex(phonetic_level=1)
        folded = fold_visual_characters(token)
        code = encoder.encode_or_none(token)
        folded_code = encoder.encode_or_none(folded)
        assert code == folded_code

    @given(words, st.integers(min_value=0, max_value=2))
    def test_prefix_length_matches_level(self, word, level):
        encoder = CustomSoundex(phonetic_level=level)
        code = encoder.encode(word)
        prefix = code[: level + 1]
        assert len(prefix) == level + 1

    @given(words)
    def test_repetition_invariance(self, word):
        # Stretching characters after the fixed k+1 prefix never changes the
        # encoding (the "porrrrn" -> "porn" behaviour).
        encoder = CustomSoundex(phonetic_level=1)
        stretched = word[:2] + "".join(char * 2 for char in word[2:])
        assert encoder.encode(word) == encoder.encode(stretched)

    @given(words)
    def test_canonicalize_idempotent(self, word):
        encoder = CustomSoundex()
        canonical = encoder.canonicalize(word)
        assert encoder.canonicalize(canonical) == canonical


class TestCharmapProperties:
    @given(st.characters())
    def test_visual_class_total_and_idempotent(self, char):
        once = visual_equivalence_class(char)
        assert visual_equivalence_class(once) == once

    @given(st.text(alphabet=string.ascii_letters + string.digits + "@$!|-._ ", max_size=30))
    def test_fold_visual_preserves_length(self, text):
        assert len(fold_visual_characters(text)) == len(text)

    @given(st.text(max_size=30))
    def test_fold_text_never_raises(self, text):
        fold_text(text)


# ---------------------------------------------------------------------------
# SMS property invariants
# ---------------------------------------------------------------------------


class TestSMSProperties:
    @given(words)
    def test_never_a_perturbation_of_itself(self, word):
        assert not SMSCheck().is_perturbation(word, word)

    @given(words, words)
    @settings(max_examples=100)
    def test_verdict_requires_all_three_conditions(self, original, candidate):
        result = SMSCheck().evaluate(original, candidate)
        assert result.is_perturbation == (
            result.same_sound
            and result.different_spelling
            and result.edit_distance is not None
        )


# ---------------------------------------------------------------------------
# tokenizer round trips
# ---------------------------------------------------------------------------


class TestTokenizerProperties:
    @given(sentences)
    def test_spans_match_source(self, text):
        for token in Tokenizer().tokenize(text):
            assert text[token.start:token.end] == token.text

    @given(sentences)
    def test_identity_detokenization(self, text):
        tokens = Tokenizer().tokenize(text)
        replacements = [(token, token.text) for token in tokens]
        assert detokenize(text, replacements) == text

    @given(sentences, st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6))
    @settings(max_examples=50)
    def test_single_replacement_splices_correctly(self, text, replacement):
        tokens = Tokenizer().word_tokens(text)
        if not tokens:
            return
        target = tokens[0]
        rebuilt = detokenize(text, [(target, replacement)])
        assert rebuilt[: target.start] == text[: target.start]
        assert rebuilt[target.start : target.start + len(replacement)] == replacement


# ---------------------------------------------------------------------------
# storage invariants
# ---------------------------------------------------------------------------

document_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(alphabet=string.ascii_lowercase, max_size=8),
    st.booleans(),
)
documents = st.lists(
    st.fixed_dictionaries(
        {"group": st.sampled_from(["a", "b", "c"]), "value": document_values}
    ),
    min_size=0,
    max_size=25,
)


class TestStorageProperties:
    @given(documents)
    def test_indexed_find_matches_scan(self, docs):
        plain = Collection("plain")
        indexed = Collection("indexed")
        indexed.create_index("group")
        plain.insert_many(docs)
        indexed.insert_many(docs)
        for group in ("a", "b", "c"):
            scan = {doc["_id"] for doc in plain.find({"group": group})}
            fast = {doc["_id"] for doc in indexed.find({"group": group})}
            assert scan == fast

    @given(documents)
    def test_count_consistent_with_find(self, docs):
        collection = Collection("c")
        collection.insert_many(docs)
        for group in ("a", "b", "c"):
            assert collection.count({"group": group}) == len(
                collection.find({"group": group})
            )

    @given(documents, st.integers(min_value=-1000, max_value=1000))
    @settings(max_examples=50)
    def test_filter_predicate_matches_semantics(self, docs, threshold):
        predicate = compile_filter({"value": {"$gte": threshold}})
        for doc in docs:
            expected = isinstance(doc["value"], (int, bool)) and doc["value"] >= threshold
            if isinstance(doc["value"], str):
                expected = False
            assert predicate(doc) == expected


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcdef"), st.integers(min_value=0, max_value=100)),
            max_size=50,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_capacity_never_exceeded_and_values_current(self, operations, capacity):
        cache = TTLCache(max_entries=capacity, default_ttl=1000)
        latest: dict[str, int] = {}
        for key, value in operations:
            cache.set(key, value)
            latest[key] = value
        assert len(cache) <= capacity
        for key in latest:
            value = cache.get(key)
            if value is not None:
                assert value == latest[key]
