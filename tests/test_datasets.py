"""Tests for repro.datasets (synthetic corpora and labelled datasets)."""

from __future__ import annotations

import random

import pytest

from repro.datasets import (
    HUMAN_STRATEGIES,
    HumanPerturbationGenerator,
    SENTENCE_TEMPLATES,
    build_classification_dataset,
    build_perturbation_pairs,
    build_social_corpus,
    corpus_texts,
)
from repro.datasets.builders import CORPUS_START_DATE, SENSITIVE_KEYWORDS
from repro.datasets.seeds import available_topics, templates_for_topic
from repro.errors import DatasetError
from repro.core.categories import PerturbationCategory, categorize_perturbation


class TestHumanPerturbationGenerator:
    def test_emphasis_known_span(self):
        generator = HumanPerturbationGenerator(rng=random.Random(0))
        assert generator.emphasis("democrats") == "democRATs"
        assert generator.emphasis("republicans") == "repubLIEcans"

    def test_leet_changes_characters(self):
        generator = HumanPerturbationGenerator(rng=random.Random(0))
        perturbed = generator.leet("vaccine")
        assert perturbed != "vaccine"
        assert len(perturbed) == len("vaccine")

    def test_separator_inserts_mark(self):
        generator = HumanPerturbationGenerator(rng=random.Random(0))
        perturbed = generator.separator("muslim")
        assert perturbed != "muslim"
        assert any(mark in perturbed for mark in "-._")

    def test_repetition_stretches_word(self):
        generator = HumanPerturbationGenerator(rng=random.Random(0))
        assert len(generator.repetition("porn")) > len("porn")

    def test_deletion_and_doubling_lengths(self):
        generator = HumanPerturbationGenerator(rng=random.Random(0))
        assert len(generator.deletion("democrats")) == len("democrats") - 1
        assert len(generator.doubling("dirty")) == len("dirty") + 1

    def test_apply_returns_strategy_used(self):
        generator = HumanPerturbationGenerator(rng=random.Random(1))
        perturbed, strategy = generator.apply("vaccine")
        assert perturbed != "vaccine"
        assert strategy in HUMAN_STRATEGIES

    def test_apply_with_named_strategy(self):
        generator = HumanPerturbationGenerator(rng=random.Random(1))
        perturbed, strategy = generator.apply("democrats", strategy="leet")
        assert strategy == "leet"
        assert categorize_perturbation("democrats", perturbed) == PerturbationCategory.LEET_SUBSTITUTION

    def test_apply_unknown_strategy_rejected(self):
        with pytest.raises(DatasetError):
            HumanPerturbationGenerator().apply("vaccine", strategy="teleport")

    def test_generated_perturbations_share_soundex_key_mostly(self):
        from repro.core.soundex import CustomSoundex

        encoder = CustomSoundex(phonetic_level=1)
        generator = HumanPerturbationGenerator(rng=random.Random(3))
        same = 0
        total = 0
        for word in ("democrats", "republicans", "vaccine", "muslim", "depression"):
            for strategy in ("emphasis", "leet", "separator", "repetition", "doubling"):
                perturbed, used = generator.apply(word, strategy=strategy)
                if used == "none":
                    continue
                total += 1
                if encoder.encode_or_none(perturbed) == encoder.encode(word):
                    same += 1
        assert same / total >= 0.8


class TestTemplates:
    def test_templates_cover_required_topics(self):
        assert set(available_topics()) == {"politics", "health", "abuse", "technology"}

    def test_templates_for_topic(self):
        assert all(t.topic == "politics" for t in templates_for_topic("politics"))
        with pytest.raises(DatasetError):
            templates_for_topic("sports")

    def test_every_sentiment_label_is_valid(self):
        assert all(t.sentiment in ("negative", "neutral", "positive") for t in SENTENCE_TEMPLATES)

    def test_toxic_templates_exist(self):
        assert any(t.toxic for t in SENTENCE_TEMPLATES)
        assert any(not t.toxic for t in SENTENCE_TEMPLATES)


class TestBuildSocialCorpus:
    def test_deterministic_given_seed(self):
        first = build_social_corpus(num_posts=50, seed=42)
        second = build_social_corpus(num_posts=50, seed=42)
        assert [post.text for post in first] == [post.text for post in second]

    def test_different_seeds_differ(self):
        first = build_social_corpus(num_posts=50, seed=1)
        second = build_social_corpus(num_posts=50, seed=2)
        assert [post.text for post in first] != [post.text for post in second]

    def test_post_fields(self, synthetic_posts):
        post = synthetic_posts[0]
        assert post.platform in ("twitter", "reddit")
        assert post.topic in available_topics()
        assert post.sentiment in ("negative", "neutral", "positive")
        assert post.created_at >= CORPUS_START_DATE.isoformat()
        document = post.to_document()
        assert document["text"] == post.text

    def test_perturbed_pairs_consistent_with_texts(self, synthetic_posts):
        for post in synthetic_posts:
            if post.has_perturbation:
                assert post.text != post.clean_text
                for original, perturbed in post.perturbed_pairs:
                    assert perturbed in post.text
                    assert original in post.clean_text
            else:
                assert post.text == post.clean_text

    def test_negative_posts_perturbed_more_often(self, synthetic_posts):
        negative = [post for post in synthetic_posts if post.sentiment == "negative"]
        positive = [post for post in synthetic_posts if post.sentiment == "positive"]
        negative_rate = sum(post.has_perturbation for post in negative) / len(negative)
        positive_rate = sum(post.has_perturbation for post in positive) / len(positive)
        assert negative_rate > positive_rate

    def test_topic_restriction(self):
        posts = build_social_corpus(num_posts=30, seed=3, topics=["health"])
        assert all(post.topic == "health" for post in posts)

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            build_social_corpus(num_posts=0)
        with pytest.raises(DatasetError):
            build_social_corpus(num_posts=10, topics=["sports"])
        with pytest.raises(DatasetError):
            build_social_corpus(num_posts=10, platforms=[])
        with pytest.raises(DatasetError):
            build_social_corpus(num_posts=10, num_days=0)

    def test_corpus_texts_helper(self, synthetic_posts):
        published = corpus_texts(synthetic_posts)
        clean = corpus_texts(synthetic_posts, clean=True)
        assert len(published) == len(clean) == len(synthetic_posts)
        assert any(p != c for p, c in zip(published, clean))


class TestBuildClassificationDataset:
    @pytest.mark.parametrize(
        ("kind", "expected_labels"),
        [
            ("toxicity", {"toxic", "nontoxic"}),
            ("sentiment", {"negative", "neutral", "positive"}),
            ("topic", {"politics", "health", "abuse", "technology"}),
        ],
    )
    def test_labels_match_kind(self, kind, expected_labels):
        texts, labels = build_classification_dataset(kind, num_samples=200, seed=4)
        assert len(texts) == len(labels) == 200
        assert set(labels) <= expected_labels
        assert len(set(labels)) >= 2

    def test_texts_are_clean(self):
        texts, _ = build_classification_dataset("toxicity", num_samples=100, seed=4)
        # clean texts contain no leet characters
        assert not any(any(ch in text for ch in "@$013457") for text in texts)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DatasetError):
            build_classification_dataset("stance")

    def test_invalid_size_rejected(self):
        with pytest.raises(DatasetError):
            build_classification_dataset("toxicity", num_samples=0)

    def test_deterministic(self):
        assert build_classification_dataset("topic", 50, seed=1) == build_classification_dataset(
            "topic", 50, seed=1
        )


class TestBuildPerturbationPairs:
    def test_pair_count_and_shape(self):
        pairs = build_perturbation_pairs(num_pairs=100, seed=8)
        assert len(pairs) == 100
        for original, perturbed, strategy in pairs:
            assert original != perturbed
            assert strategy in HUMAN_STRATEGIES

    def test_deterministic(self):
        assert build_perturbation_pairs(50, seed=5) == build_perturbation_pairs(50, seed=5)

    def test_strategy_restriction(self):
        pairs = build_perturbation_pairs(50, seed=5, strategies=["leet"])
        assert all(strategy == "leet" for _original, _perturbed, strategy in pairs)

    def test_custom_word_pool(self):
        pairs = build_perturbation_pairs(20, seed=5, words=["vaccine", "democrats"])
        assert all(original in ("vaccine", "democrats") for original, _p, _s in pairs)

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            build_perturbation_pairs(0)
        with pytest.raises(DatasetError):
            build_perturbation_pairs(10, strategies=["teleport"])
        with pytest.raises(DatasetError):
            build_perturbation_pairs(10, words=["ab"])

    def test_sensitive_keywords_nonempty(self):
        assert "democrats" in SENSITIVE_KEYWORDS
        assert "vaccine" in SENSITIVE_KEYWORDS
