"""Tests for repro.core.normalizer (the Normalization function, §III-C)."""

from __future__ import annotations

import pytest

from repro import CrypText, CrypTextConfig
from repro.core.categories import PerturbationCategory
from repro.core.dictionary import PerturbationDictionary
from repro.core.normalizer import Normalizer
from repro.text.wordlist import EnglishLexicon


class TestBasicCorrection:
    def test_leet_token_corrected(self, cryptext_small):
        result = cryptext_small.normalize("the demokrats hate the vacc1ne")
        assert "democrats" in result.normalized_text
        assert "vaccine" in result.normalized_text

    def test_original_text_is_preserved_field(self, cryptext_small):
        text = "the demokrats hate the vacc1ne"
        result = cryptext_small.normalize(text)
        assert result.original_text == text

    def test_clean_text_unchanged(self, cryptext_small):
        text = "the democrats support the vaccine mandate"
        result = cryptext_small.normalize(text)
        assert result.normalized_text == text
        assert result.num_corrected == 0

    def test_hyphenated_perturbation_corrected(self, cryptext_small):
        result = cryptext_small.normalize("the mus-lim families arrived")
        assert "muslim" in result.normalized_text

    def test_emphasis_capitalization_lowercased(self, cryptext_small):
        result = cryptext_small.normalize("the democRATs are at it again")
        assert "democrats" in result.normalized_text
        corrections = {c.original: c for c in result.perturbed_corrections}
        assert corrections["democRATs"].category == PerturbationCategory.EMPHASIS_CAPITALIZATION

    def test_phonetic_respelling_corrected(self, cryptext_small):
        result = cryptext_small.normalize("a movie about depresxion and recovery")
        assert "depression" in result.normalized_text

    def test_whitespace_and_punctuation_preserved(self, cryptext_small):
        result = cryptext_small.normalize("wow, the demokrats... again!")
        assert result.normalized_text.startswith("wow, the ")
        assert result.normalized_text.endswith("... again!")


class TestCorrectionsMetadata:
    def test_every_word_token_gets_a_correction_record(self, cryptext_small):
        result = cryptext_small.normalize("the demokrats hate the vacc1ne")
        assert len(result.corrections) == 5

    def test_perturbed_corrections_subset(self, cryptext_small):
        result = cryptext_small.normalize("the demokrats hate the vacc1ne")
        assert set(result.perturbed_corrections).issubset(set(result.corrections))
        assert result.num_corrected == len(result.perturbed_corrections)

    def test_candidates_reported_with_scores(self, cryptext_small):
        result = cryptext_small.normalize("the demokrats won")
        correction = next(c for c in result.corrections if c.original == "demokrats")
        assert correction.candidates
        words = [candidate.word for candidate in correction.candidates]
        assert "democrats" in words
        # candidates are sorted by coherency, best first
        coherencies = [candidate.coherency for candidate in correction.candidates]
        assert coherencies == sorted(coherencies, reverse=True)

    def test_spans_point_into_original_text(self, cryptext_small):
        text = "the demokrats hate the vacc1ne"
        result = cryptext_small.normalize(text)
        for correction in result.corrections:
            assert text[correction.start:correction.end] == correction.original

    def test_to_dict_serialization(self, cryptext_small):
        payload = cryptext_small.normalize("the demokrats won").to_dict()
        assert payload["original_text"] == "the demokrats won"
        assert isinstance(payload["corrections"], list)
        assert all("candidates" in item for item in payload["corrections"])


class TestContextSensitivity:
    def test_coherency_prefers_contextual_candidate(self, cryptext_small):
        # "amaz0n" should be corrected to "amazon" (seen in context in the
        # corpus) rather than left alone.
        result = cryptext_small.normalize("my amaz0n package never arrived")
        assert "amazon" in result.normalized_text

    def test_casing_preserved_on_correction(self, cryptext_small):
        result = cryptext_small.normalize("Demokrats keep winning")
        assert result.normalized_text.startswith("Democrats")

    def test_unknown_oov_token_left_untouched(self, cryptext_small):
        result = cryptext_small.normalize("the zxqvw reports")
        assert "zxqvw" in result.normalized_text

    def test_urls_and_mentions_untouched(self, cryptext_small):
        text = "@user read https://example.com about the vacc1ne"
        result = cryptext_small.normalize(text)
        assert "@user" in result.normalized_text
        assert "https://example.com" in result.normalized_text


class TestDetectPerturbations:
    def test_detection_without_rewriting(self, cryptext_small):
        detections = cryptext_small.normalizer.detect_perturbations(
            "the demokrats hate the vacc1ne"
        )
        originals = {detection.original for detection in detections}
        assert originals == {"demokrats", "vacc1ne"}

    def test_detection_on_clean_text_is_empty(self, cryptext_small):
        assert cryptext_small.normalizer.detect_perturbations("the vaccine works") == ()

    def test_normalize_many(self, cryptext_small):
        results = cryptext_small.normalizer.normalize_many(
            ["the demokrats", "the vaccine"]
        )
        assert len(results) == 2
        assert results[0].num_corrected >= 1
        assert results[1].num_corrected == 0


class TestTranspositionPolicy:
    """One config switch drives the distance policy on every normalize path.

    "teh"/"the" share a sound bucket at phonetic level 0 and differ by one
    adjacent swap — two plain Levenshtein edits but a single OSA edit.  At
    ``d = 1`` only the transposition-aware policy may recover the word, and
    it must do so identically on the sequential and batch paths and with the
    compiled matcher on or off.
    """

    CORPUS = [
        "the democrats support the vaccine mandate",
        "i saw the thing yesterday",
    ]
    TEXT = "teh vaccine works"

    @staticmethod
    def _config(**overrides):
        return CrypTextConfig(phonetic_level=0, edit_distance=1, **overrides)

    def test_swap_recovered_only_with_transpositions(self):
        osa = CrypText.from_corpus(
            self.CORPUS, config=self._config(use_transpositions=True)
        )
        plain = CrypText.from_corpus(
            self.CORPUS, config=self._config(use_transpositions=False)
        )
        assert osa.normalize(self.TEXT).normalized_text == "the vaccine works"
        assert plain.normalize(self.TEXT).normalized_text == self.TEXT

    def test_sequential_and_batch_paths_agree(self):
        system = CrypText.from_corpus(
            self.CORPUS, config=self._config(use_transpositions=True)
        )
        sequential = system.normalize(self.TEXT)
        (batched,) = system.batch.normalize_batch([self.TEXT])
        assert batched == sequential
        assert batched.normalized_text == "the vaccine works"

    @pytest.mark.parametrize("use_transpositions", [True, False])
    def test_compiled_and_linear_candidates_identical(self, use_transpositions):
        compiled = CrypText.from_corpus(
            self.CORPUS,
            config=self._config(
                use_transpositions=use_transpositions, compiled_buckets=True
            ),
        )
        linear = CrypText.from_corpus(
            self.CORPUS,
            config=self._config(
                use_transpositions=use_transpositions, compiled_buckets=False
            ),
        )
        for token in ("teh", "vacicne", "mandaet", "demorcats", "unseenword"):
            fast = compiled.normalizer._retrieve_candidates(token)
            slow = linear.normalizer._retrieve_candidates(token)
            assert fast == slow
        assert compiled.normalize(self.TEXT) == linear.normalize(self.TEXT)


class TestLexiconCasingPreserved:
    """Mixed-case lexicon forms must not be flagged as emphasis."""

    LEXICON_WORDS = ("McDonald", "iPhone")
    CORPUS = ["i love my iPhone", "lunch at McDonald today"]

    @pytest.fixture()
    def normalizer(self):
        lexicon = EnglishLexicon(words=self.LEXICON_WORDS)
        dictionary = PerturbationDictionary.from_corpus(self.CORPUS, lexicon=lexicon)
        return Normalizer(dictionary, lexicon=lexicon)

    def test_lexicon_casing_left_untouched(self, normalizer):
        result = normalizer.normalize("my iPhone broke at McDonald today")
        assert result.normalized_text == "my iPhone broke at McDonald today"
        assert result.num_corrected == 0

    def test_inflections_keep_their_stem_casing(self, normalizer):
        # "iPhones"/"McDonalds" pass is_word via the suffix fallback; the
        # casing guard must extend to them the same way — including the
        # stem transforms ("iPhoning" strips "ing" and restores the "e").
        result = normalizer.normalize(
            "two McDonalds and my iPhones while iPhoning and iPhoned"
        )
        assert (
            result.normalized_text
            == "two McDonalds and my iPhones while iPhoning and iPhoned"
        )
        assert result.num_corrected == 0

    def test_emphasis_capitalization_still_corrected(self, cryptext_small):
        # The fix must not reintroduce "democRATs" (no recorded casing).
        result = cryptext_small.normalize("the democRATs are at it again")
        corrections = {c.original: c for c in result.perturbed_corrections}
        assert "democrats" in result.normalized_text
        assert (
            corrections["democRATs"].category
            == PerturbationCategory.EMPHASIS_CAPITALIZATION
        )

    def test_other_casings_of_cased_word_follow_existing_rules(self, normalizer):
        # All-caps and capitalized variants were never emphasis; a scrambled
        # casing that is not the lexicon form still is.
        assert normalizer.normalize("IPHONE").num_corrected == 0
        assert normalizer.normalize("Iphone").num_corrected == 0
        scrambled = normalizer.normalize("iPhONE")
        assert scrambled.num_corrected == 1
        assert scrambled.normalized_text == "iphone"

    def test_cased_forms_accessor(self):
        lexicon = EnglishLexicon(words=self.LEXICON_WORDS)
        assert lexicon.cased_forms("mcdonald") == frozenset({"McDonald"})
        assert lexicon.is_lexicon_casing("iPhone")
        assert not lexicon.is_lexicon_casing("iPhONE")
        assert lexicon.cased_forms("vaccine") == frozenset()


class TestWithoutTrainedScorer:
    def test_fallback_ranking_still_corrects(self, small_corpus):
        system = CrypText.from_corpus(small_corpus, train_scorer=False)
        assert system.normalizer.scorer is None
        result = system.normalize("the demokrats hate the vacc1ne")
        assert "democrats" in result.normalized_text
        assert "vaccine" in result.normalized_text


class TestRoundTrip:
    def test_perturb_then_normalize_recovers_most_tokens(self, cryptext_synthetic):
        text = "the democrats and republicans debate the vaccine mandate"
        perturbed = cryptext_synthetic.perturb(text, ratio=0.5)
        recovered = cryptext_synthetic.normalize(perturbed.perturbed_text)
        original_tokens = text.split()
        recovered_tokens = recovered.normalized_text.lower().split()
        agreement = sum(
            1 for original, restored in zip(original_tokens, recovered_tokens)
            if original == restored
        )
        assert agreement / len(original_tokens) >= 0.7
