"""Shared fixtures.

Building a CrypText system (dictionary + lexicon seeding + coherency scorer)
is the expensive part of the suite, so corpus-backed fixtures are
session-scoped and treated as read-only by the tests that use them; tests
that need to mutate state build their own small instances.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import active, maybe_enable_from_env

# Before any repro import that constructs locks: under CRYPTEXT_SANITIZE=1
# every tracked_lock()/tracked_rlock() from here on comes out instrumented.
maybe_enable_from_env()

from repro.obs.registry import maybe_arm_from_env

# Same discipline for observability: CRYPTEXT_OBS=1 arms the metrics
# registry for the whole run (spans, request traces, slow-query log).
maybe_arm_from_env()

from repro import CrypText, CrypTextConfig
from repro.datasets import build_social_corpus, corpus_texts
from repro.social import SocialPlatform

#: The three sentences of the paper's Table I.
TABLE1_SENTENCES = (
    "the dirrty republicans",
    "thee dirty repubLIEcans",
    "the dirty republic@@ns",
)


@pytest.fixture(scope="session")
def small_corpus() -> list[str]:
    """A handful of hand-written sentences with known perturbations."""
    return [
        "the dirrty republicans",
        "thee dirty repubLIEcans",
        "the dirty republic@@ns",
        "the democrats support the vaccine mandate",
        "the demokrats hate the vacc1ne",
        "the democRATs push their agenda",
        "thinking about suic1de again tonight",
        "that movie was about depresxion and recovery",
        "mus-lim families moved into the neighborhood",
        "stop the vac-cine mandate now",
        "the dem0cr@ts and the repubLIEcans argue online",
        "i ordered from amazon yesterday",
        "the amaz0n package never arrived",
    ]


@pytest.fixture(scope="session")
def synthetic_posts():
    """A seeded synthetic social corpus (read-only)."""
    return build_social_corpus(num_posts=500, seed=20230116)


@pytest.fixture(scope="session")
def cryptext_small(small_corpus) -> CrypText:
    """CrypText built from the small hand-written corpus (read-only)."""
    return CrypText.from_corpus(small_corpus)


@pytest.fixture(scope="session")
def cryptext_synthetic(synthetic_posts) -> CrypText:
    """CrypText built from the synthetic social corpus (read-only)."""
    return CrypText.from_corpus(corpus_texts(synthetic_posts))


@pytest.fixture(scope="session")
def twitter_platform(synthetic_posts) -> SocialPlatform:
    """Simulated Twitter platform holding the synthetic posts (read-only)."""
    platform = SocialPlatform("twitter")
    platform.ingest_posts(synthetic_posts)
    return platform


@pytest.fixture()
def default_config() -> CrypTextConfig:
    """A fresh default configuration."""
    return CrypTextConfig()


@pytest.fixture(scope="session", autouse=True)
def _assert_sanitizer_clean():
    """Fail the sanitized run if any lock-order violation was recorded.

    Collect-then-assert (rather than raising at the violation site) lets a
    run surface *every* inversion instead of dying on the first, and keeps
    the check out of the way when CRYPTEXT_SANITIZE is unset.
    """
    yield
    sanitizer = active()
    if sanitizer is None:
        return
    report = sanitizer.report()
    assert report.clean, "\n" + report.describe()
