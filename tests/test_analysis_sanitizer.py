"""The runtime lock-order sanitizer, provoked with real locks and threads.

Every test drives a *private* :class:`LockOrderSanitizer` (wrapping locks
by hand) rather than the process-global one, so a sanitized run of this
suite (``CRYPTEXT_SANITIZE=1``) never records these deliberate violations
against the session's own report.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import hierarchy
from repro.analysis.sanitizer import (
    LockOrderSanitizer,
    _TrackedLock,
    active,
    maybe_enable_from_env,
    tracked_lock,
    tracked_rlock,
)
from repro.resilience.faults import FaultInjector


def make_lock(name: str, sanitizer: LockOrderSanitizer, *, reentrant: bool = False):
    inner = threading.RLock() if reentrant else threading.Lock()
    return _TrackedLock(inner, name, sanitizer, reentrant=reentrant)


class TestHierarchyDeclaration:
    def test_order_allows_follows_ranks(self):
        assert hierarchy.order_allows("dictionary.write", "wal.segment")
        assert not hierarchy.order_allows("wal.segment", "dictionary.write")
        assert hierarchy.order_allows("wal.segment", "wal.segment")

    def test_unranked_locks_are_unconstrained(self):
        assert hierarchy.order_allows("no.such.lock", "dictionary.write")
        assert hierarchy.order_allows("dictionary.write", "no.such.lock")

    def test_rank_of(self):
        assert hierarchy.rank_of("maintenance.save") == 10
        assert hierarchy.rank_of("missing") is None

    def test_ranks_are_unique(self):
        ranks = list(hierarchy.LOCK_RANKS.values())
        assert len(ranks) == len(set(ranks))

    def test_hot_path_locks_are_ranked(self):
        assert hierarchy.HOT_PATH_LOCKS <= set(hierarchy.LOCK_RANKS)

    def test_sanitizer_io_allowlist_names_are_ranked(self):
        assert {name for _point, name in hierarchy.SANITIZER_IO_ALLOWLIST} <= set(
            hierarchy.LOCK_RANKS
        )


class TestCycleDetection:
    def test_real_two_lock_cycle_is_detected(self):
        """Thread 1 takes A then B; thread 2 takes B then A.

        Run sequentially so the test cannot actually deadlock — the point
        of the dynamic graph is that the *potential* is detected even on
        interleavings that happen to survive.
        """
        sanitizer = LockOrderSanitizer(ranks={}, capture_stacks=False)
        lock_a = make_lock("x.alpha", sanitizer)
        lock_b = make_lock("x.beta", sanitizer)

        def a_then_b():
            with lock_a:
                with lock_b:
                    pass

        def b_then_a():
            with lock_b:
                with lock_a:
                    pass

        for target in (a_then_b, b_then_a):
            worker = threading.Thread(target=target, daemon=True)
            worker.start()
            worker.join(timeout=5.0)
            assert not worker.is_alive()

        report = sanitizer.report()
        cycles = [v for v in report.violations if v.kind == "cycle"]
        assert len(cycles) == 1
        assert "potential deadlock" in cycles[0].detail
        assert report.acquisitions == 4
        assert set(report.edges["x.alpha"]) == {"x.beta"}
        assert set(report.edges["x.beta"]) == {"x.alpha"}

    def test_consistent_order_is_clean(self):
        sanitizer = LockOrderSanitizer(ranks={}, capture_stacks=False)
        lock_a = make_lock("x.alpha", sanitizer)
        lock_b = make_lock("x.beta", sanitizer)
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        assert sanitizer.report().clean

    def test_three_lock_cycle_through_intermediate(self):
        sanitizer = LockOrderSanitizer(ranks={}, capture_stacks=False)
        lock_a = make_lock("x.alpha", sanitizer)
        lock_b = make_lock("x.beta", sanitizer)
        lock_c = make_lock("x.gamma", sanitizer)
        with lock_a:
            with lock_b:
                pass
        with lock_b:
            with lock_c:
                pass
        with lock_c:
            with lock_a:
                pass  # closes a -> b -> c -> a
        cycles = [v for v in sanitizer.report().violations if v.kind == "cycle"]
        assert len(cycles) == 1

    def test_self_deadlock_on_non_reentrant_lock(self):
        sanitizer = LockOrderSanitizer(ranks={}, capture_stacks=False)
        lock = make_lock("x.alpha", sanitizer)
        with lock:
            # Second acquire would block forever; non-blocking keeps the
            # test alive while still tripping the attempt-time check.
            assert not lock.acquire(blocking=False)
        violations = sanitizer.report().violations
        assert [v.detail for v in violations] == [
            "re-acquiring non-reentrant lock 'x.alpha' already held by this "
            "thread (self-deadlock)"
        ]


class TestHierarchyEnforcement:
    def test_deliberate_inversion_is_detected(self):
        """The acceptance case: a deliberately injected lock-order inversion."""
        sanitizer = LockOrderSanitizer(capture_stacks=True)
        wal = make_lock("wal.segment", sanitizer)
        write = make_lock("dictionary.write", sanitizer, reentrant=True)
        with wal:
            with write:  # wal.segment (110) must never wrap dictionary.write (100)
                pass
        report = sanitizer.report()
        kinds = {v.kind for v in report.violations}
        assert "hierarchy" in kinds
        violation = next(v for v in report.violations if v.kind == "hierarchy")
        assert violation.lock == "dictionary.write"
        assert violation.held == ("wal.segment",)
        assert "inverts the declared lock hierarchy" in violation.detail
        assert violation.stack  # capture_stacks records the acquiring frame

    def test_declared_order_is_clean(self):
        sanitizer = LockOrderSanitizer(capture_stacks=False)
        write = make_lock("dictionary.write", sanitizer, reentrant=True)
        wal = make_lock("wal.segment", sanitizer)
        with write:
            with wal:
                pass
        assert sanitizer.report().clean

    def test_duplicate_violations_dedup(self):
        sanitizer = LockOrderSanitizer(capture_stacks=False)
        wal = make_lock("wal.segment", sanitizer)
        write = make_lock("dictionary.write", sanitizer, reentrant=True)
        for _ in range(5):
            with wal:
                with write:
                    pass
        hierarchy_violations = [
            v for v in sanitizer.report().violations if v.kind == "hierarchy"
        ]
        assert len(hierarchy_violations) == 1

    def test_rlock_reentry_is_not_a_violation(self):
        sanitizer = LockOrderSanitizer(capture_stacks=False)
        write = make_lock("dictionary.write", sanitizer, reentrant=True)
        with write:
            with write:
                assert sanitizer.held_names() == ("dictionary.write",)
        report = sanitizer.report()
        assert report.clean
        assert report.acquisitions == 1  # re-entry adds no new acquisition


class TestIoUnderLock:
    def test_io_while_holding_unrelated_lock_is_flagged(self):
        sanitizer = LockOrderSanitizer(capture_stacks=False)
        cache = make_lock("storage.cache", sanitizer, reentrant=True)
        faults = FaultInjector()
        faults.attach_observer(sanitizer.note_io)
        with cache:
            faults.hit("wal.append")
        report = sanitizer.report()
        assert report.io_events == 1
        io = [v for v in report.violations if v.kind == "io-under-lock"]
        assert len(io) == 1
        assert io[0].held == ("storage.cache",)
        assert "wal.append" in io[0].detail

    def test_allowlisted_pairs_are_clean(self):
        sanitizer = LockOrderSanitizer(capture_stacks=False)
        write = make_lock("dictionary.write", sanitizer, reentrant=True)
        wal = make_lock("wal.segment", sanitizer)
        faults = FaultInjector()
        faults.attach_observer(sanitizer.note_io)
        with write:
            with wal:
                faults.hit("wal.append")
                faults.hit("wal.fsync")
        report = sanitizer.report()
        assert report.io_events == 2
        assert report.clean

    def test_io_with_no_lock_held_is_clean(self):
        sanitizer = LockOrderSanitizer(capture_stacks=False)
        faults = FaultInjector()
        faults.attach_observer(sanitizer.note_io)
        faults.hit("wal.append")
        assert sanitizer.report().clean

    def test_observer_arms_and_detach_disarms(self):
        sanitizer = LockOrderSanitizer(capture_stacks=False)
        faults = FaultInjector()
        assert not faults.armed
        faults.attach_observer(sanitizer.note_io)
        assert faults.armed and not faults.has_rules
        faults.detach_observer()
        assert not faults.armed

    def test_observer_survives_reset(self):
        sanitizer = LockOrderSanitizer(capture_stacks=False)
        faults = FaultInjector()
        faults.attach_observer(sanitizer.note_io)
        faults.arm("wal.append", fail=1)
        faults.reset()
        assert faults.armed  # the observer keeps guards reporting
        faults.hit("wal.append")  # no rule left: observed, never raises
        assert sanitizer.report().io_events == 1


class TestHeldTimes:
    def test_percentiles_from_fake_clock(self):
        ticks = iter(range(100))
        sanitizer = LockOrderSanitizer(
            ranks={}, clock=lambda: float(next(ticks)), capture_stacks=False
        )
        lock = make_lock("x.alpha", sanitizer)
        for _ in range(4):
            with lock:
                pass
        times = sanitizer.held_time_percentiles()["x.alpha"]
        assert times["count"] == 4.0
        assert times["p50"] == 1.0  # each hold spans exactly one tick
        assert times["max"] == 1.0

    def test_report_describe_mentions_counts(self):
        sanitizer = LockOrderSanitizer(ranks={}, capture_stacks=False)
        lock = make_lock("x.alpha", sanitizer)
        with lock:
            pass
        text = sanitizer.report().describe()
        assert "1 acquisitions" in text and "0 violation(s)" in text


class TestActivation:
    def test_factories_use_the_active_sanitizer(self, monkeypatch):
        from repro.analysis import sanitizer as mod

        private = LockOrderSanitizer(capture_stacks=False)
        monkeypatch.setattr(mod, "_ACTIVE", private)
        lock = tracked_lock("dictionary.write")
        rlock = tracked_rlock("dictionary.snapshot")
        assert isinstance(lock, _TrackedLock)
        assert isinstance(rlock, _TrackedLock)
        with rlock:
            with lock:
                pass
        assert private.report().acquisitions == 2

    def test_factories_return_plain_locks_when_disabled(self, monkeypatch):
        from repro.analysis import sanitizer as mod

        monkeypatch.setattr(mod, "_ACTIVE", None)
        lock = tracked_lock("dictionary.write")
        assert not isinstance(lock, _TrackedLock)
        with lock:  # plain threading.Lock still works as a context manager
            pass

    def test_maybe_enable_ignores_unset_env(self):
        before = active()
        assert maybe_enable_from_env({}) is None
        assert maybe_enable_from_env({"CRYPTEXT_SANITIZE": "0"}) is None
        assert active() is before

    @pytest.mark.skipif(
        active() is not None,
        reason="global sanitizer already enabled by CRYPTEXT_SANITIZE",
    )
    def test_enable_disable_roundtrip(self):
        from repro.analysis.sanitizer import disable, enable
        from repro.resilience.faults import FAULTS

        try:
            first = enable()
            assert active() is first
            assert enable() is first  # idempotent
            assert FAULTS.armed  # the observer arms the guards
        finally:
            disable()
        assert active() is None
        assert not FAULTS.armed
