"""Tests for repro.core.edit_distance."""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.edit_distance import (
    bounded_levenshtein,
    bounded_osa,
    damerau_levenshtein_distance,
    levenshtein_distance,
    similarity_ratio,
)
from repro.errors import CrypTextError


class TestLevenshtein:
    @pytest.mark.parametrize(
        ("first", "second", "expected"),
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("democrats", "democrats", 0),
            ("democrats", "demokrats", 1),
            ("republicans", "republiecans", 1),
            ("vaccine", "vacine", 1),
            ("muslim", "mus-lim", 1),
        ],
    )
    def test_known_distances(self, first, second, expected):
        assert levenshtein_distance(first, second) == expected

    def test_symmetric(self):
        assert levenshtein_distance("abcdef", "azced") == levenshtein_distance(
            "azced", "abcdef"
        )

    def test_non_string_rejected(self):
        with pytest.raises(CrypTextError):
            levenshtein_distance("a", 3)  # type: ignore[arg-type]


class TestBoundedLevenshtein:
    def test_agrees_with_full_distance_when_within_bound(self):
        pairs = [
            ("democrats", "demokrats"),
            ("republicans", "republiecans"),
            ("vaccine", "vaccccine"),
            ("depression", "depresxion"),
            ("kitten", "sitting"),
        ]
        for first, second in pairs:
            full = levenshtein_distance(first, second)
            assert bounded_levenshtein(first, second, bound=5) == full

    def test_returns_none_beyond_bound(self):
        assert bounded_levenshtein("vaccine", "elephant", 2) is None
        assert bounded_levenshtein("a", "aaaaaa", 3) is None

    def test_bound_zero_only_accepts_equal_strings(self):
        assert bounded_levenshtein("same", "same", 0) == 0
        assert bounded_levenshtein("same", "sane", 0) is None

    def test_length_difference_shortcut(self):
        assert bounded_levenshtein("ab", "abcdefgh", 3) is None

    def test_negative_bound_rejected(self):
        with pytest.raises(CrypTextError):
            bounded_levenshtein("a", "b", -1)

    def test_empty_strings(self):
        assert bounded_levenshtein("", "", 0) == 0
        assert bounded_levenshtein("", "ab", 3) == 2
        assert bounded_levenshtein("", "abcd", 3) is None


class TestDamerau:
    def test_transposition_counts_as_one(self):
        # TextBugger's swap example from the paper: democrats -> demorcats.
        assert damerau_levenshtein_distance("democrats", "demorcats") == 1
        assert levenshtein_distance("democrats", "demorcats") == 2

    def test_equal_strings(self):
        assert damerau_levenshtein_distance("same", "same") == 0

    def test_never_exceeds_levenshtein(self):
        pairs = [
            ("republicans", "rwpublicans"),
            ("vaccine", "vacicne"),
            ("mandate", "madnate"),
            ("depression", "depresison"),
        ]
        for first, second in pairs:
            assert damerau_levenshtein_distance(first, second) <= levenshtein_distance(
                first, second
            )

    def test_empty_cases(self):
        assert damerau_levenshtein_distance("", "abc") == 3
        assert damerau_levenshtein_distance("abc", "") == 3


class TestBoundedOSA:
    def test_transposition_costs_one(self):
        assert bounded_osa("the", "teh", 1) == 1
        assert bounded_levenshtein("the", "teh", 1) is None

    def test_agrees_with_full_osa_when_within_bound(self):
        pairs = [
            ("democrats", "demorcats"),
            ("republicans", "rwpublicans"),
            ("vaccine", "vacicne"),
            ("mandate", "madnate"),
            ("depression", "depresison"),
            ("kitten", "sitting"),
        ]
        for first, second in pairs:
            full = damerau_levenshtein_distance(first, second)
            assert bounded_osa(first, second, bound=5) == full

    def test_returns_none_beyond_bound(self):
        assert bounded_osa("vaccine", "elephant", 2) is None
        assert bounded_osa("a", "aaaaaa", 3) is None

    def test_bound_zero_only_accepts_equal_strings(self):
        assert bounded_osa("same", "same", 0) == 0
        assert bounded_osa("same", "asme", 0) is None

    def test_length_difference_shortcut(self):
        assert bounded_osa("ab", "abcdefgh", 3) is None

    def test_negative_bound_rejected(self):
        with pytest.raises(CrypTextError):
            bounded_osa("a", "b", -1)

    def test_empty_strings(self):
        assert bounded_osa("", "", 0) == 0
        assert bounded_osa("", "ab", 3) == 2
        assert bounded_osa("", "abcd", 3) is None

    def test_symmetric(self):
        assert bounded_osa("abcdef", "azced", 4) == bounded_osa("azced", "abcdef", 4)

    @settings(max_examples=300, deadline=None)
    @given(
        st.text(alphabet=string.ascii_lowercase + "013@é", max_size=12),
        st.text(alphabet=string.ascii_lowercase + "013@é", max_size=12),
        st.integers(min_value=0, max_value=5),
    )
    def test_matches_unbounded_osa(self, first, second, bound):
        full = damerau_levenshtein_distance(first, second)
        expected = full if full <= bound else None
        assert bounded_osa(first, second, bound) == expected


class TestSimilarityRatio:
    def test_identical_strings(self):
        assert similarity_ratio("vaccine", "vaccine") == 1.0

    def test_empty_strings(self):
        assert similarity_ratio("", "") == 1.0

    def test_single_edit(self):
        assert similarity_ratio("vaccine", "vacc1ne") == pytest.approx(6 / 7)

    def test_bounds(self):
        assert 0.0 <= similarity_ratio("abc", "xyz") <= 1.0
