"""Tests for repro.viz.html_report (the standalone HTML report)."""

from __future__ import annotations

import pytest

from repro.classifiers import RobustnessPoint
from repro.errors import VisualizationError
from repro.social import SocialListener
from repro.viz import build_html_report, build_word_cloud, write_html_report


@pytest.fixture(scope="module")
def word_clouds(cryptext_small):
    return {
        "republicans": build_word_cloud(cryptext_small.look_up("republicans")),
        "democrats": build_word_cloud(cryptext_small.look_up("democrats")),
    }


@pytest.fixture(scope="module")
def keyword_usages(cryptext_synthetic, twitter_platform):
    listener = SocialListener(twitter_platform, cryptext_synthetic.lookup_engine)
    return {"vaccine": listener.monitor_keyword("vaccine")}


@pytest.fixture(scope="module")
def benchmark_results():
    return {
        "perspective_toxicity": [
            RobustnessPoint("perspective_toxicity", 0.0, 0.95, 100),
            RobustnessPoint("perspective_toxicity", 0.25, 0.88, 100),
        ]
    }


class TestBuildHtmlReport:
    def test_full_report_contains_every_section(
        self, word_clouds, keyword_usages, benchmark_results
    ):
        report = build_html_report(
            title="CrypText demo report",
            word_clouds=word_clouds,
            keyword_usages=keyword_usages,
            benchmark_results=benchmark_results,
        )
        assert report.startswith("<!DOCTYPE html>")
        assert "CrypText demo report" in report
        assert "perturbations of" in report
        assert "repubLIEcans" in report
        assert "<svg" in report  # timeline bar chart
        assert "perspective_toxicity" in report

    def test_word_cloud_only_report(self, word_clouds):
        report = build_html_report(word_clouds=word_clouds)
        assert "republicans" in report
        assert "<svg" not in report

    def test_original_and_perturbations_styled_differently(self, word_clouds):
        report = build_html_report(word_clouds=word_clouds)
        assert 'class="original"' in report
        assert 'class="perturbation"' in report

    def test_tokens_are_html_escaped(self):
        # A token containing markup characters must be escaped, not injected.
        from repro.viz import WordCloudItem

        item = WordCloudItem(
            token="repub<b>licans",
            weight=3,
            size=20.0,
            x=0.0,
            y=1.0,
            z=0.0,
            is_original=False,
            category="mixed",
        )
        report = build_html_report(word_clouds={"republicans": [item]})
        assert "repub<b>licans" not in report
        assert "repub&lt;b&gt;licans" in report

    def test_empty_report_rejected(self):
        with pytest.raises(VisualizationError):
            build_html_report()

    def test_empty_timeline_section_renders_placeholder(
        self, cryptext_small, twitter_platform
    ):
        listener = SocialListener(twitter_platform, cryptext_small.lookup_engine)
        report = build_html_report(
            keyword_usages={"zebra": listener.monitor_keyword("zebra")}
        )
        assert "(no data)" in report


class TestWriteHtmlReport:
    def test_write_creates_file(self, tmp_path, word_clouds):
        path = write_html_report(
            tmp_path / "reports" / "cryptext.html", word_clouds=word_clouds
        )
        assert path.exists()
        content = path.read_text(encoding="utf-8")
        assert content.startswith("<!DOCTYPE html>")

    def test_write_rejects_empty_report(self, tmp_path):
        with pytest.raises(VisualizationError):
            write_html_report(tmp_path / "empty.html")
