"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import json

import pytest

from repro.cli import DB_FILE_NAME, build_parser, main

#: A tiny corpus keeps CLI invocations fast; 120 posts still contain
#: perturbations of the showcase keywords.
FAST = ["--posts", "120", "--seed", "3"]


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestParser:
    def test_parser_knows_all_commands(self):
        parser = build_parser()
        for command in ("build", "lookup", "normalize", "perturb", "listen", "stats"):
            args = parser.parse_args(_minimal_invocation(command))
            assert args.command == command

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


def _minimal_invocation(command: str) -> list[str]:
    if command == "build":
        return ["build", "--out", "/tmp/db"]
    if command == "lookup":
        return ["lookup", "vaccine"]
    if command in ("normalize", "perturb"):
        return [command, "some text"]
    if command == "listen":
        return ["listen", "vaccine"]
    return ["stats"]


class TestLookupCommand:
    def test_lookup_prints_perturbations(self, capsys):
        code, out, _err = run_cli(capsys, "lookup", "democrats", *FAST)
        assert code == 0
        assert out.startswith("democrats:")

    def test_lookup_json_output(self, capsys):
        code, out, _err = run_cli(capsys, "--json", "lookup", "vaccine", *FAST)
        assert code == 0
        payload = json.loads(out)
        assert "vaccine" in payload
        assert payload["vaccine"]["query"] == "vaccine"

    def test_lookup_multiple_words(self, capsys):
        code, out, _err = run_cli(capsys, "lookup", "democrats", "vaccine", *FAST)
        assert code == 0
        assert "democrats:" in out and "vaccine:" in out


class TestNormalizePerturbCommands:
    def test_normalize_restores_paper_example(self, capsys):
        code, out, _err = run_cli(
            capsys, "normalize", "Thinking about suic1de", *FAST, "--explain"
        )
        assert code == 0
        assert "suicide" in out.lower()

    def test_perturb_respects_ratio_zero(self, capsys):
        text = "the democrats support the vaccine mandate"
        code, out, _err = run_cli(capsys, "perturb", text, "--ratio", "0.0", *FAST)
        assert code == 0
        assert out.strip().splitlines()[0] == text

    def test_perturb_json_contains_replacements(self, capsys):
        code, out, _err = run_cli(
            capsys,
            "--json",
            "perturb",
            "the democrats support the vaccine mandate",
            "--ratio",
            "1.0",
            "--fill-target",
            *FAST,
        )
        assert code == 0
        payload = json.loads(out)
        assert "replacements" in payload


class TestStatsAndBuildCommands:
    def test_stats_reports_counts(self, capsys):
        code, out, _err = run_cli(capsys, "stats", *FAST)
        assert code == 0
        assert "raw tokens" in out

    def test_build_then_lookup_from_db(self, capsys, tmp_path):
        db_dir = tmp_path / "db"
        code, out, _err = run_cli(
            capsys, "build", "--posts", "150", "--seed", "5", "--out", str(db_dir)
        )
        assert code == 0
        assert (db_dir / DB_FILE_NAME).exists()
        code, out, _err = run_cli(capsys, "lookup", "democrats", "--db", str(db_dir))
        assert code == 0
        assert out.startswith("democrats:")

    def test_missing_db_is_a_clean_error(self, capsys, tmp_path):
        code, _out, err = run_cli(
            capsys, "lookup", "democrats", "--db", str(tmp_path / "nowhere")
        )
        assert code == 2
        assert "error:" in err


class TestListenCommand:
    def test_listen_reports_timeline(self, capsys):
        code, out, _err = run_cli(
            capsys, "listen", "vaccine", "--posts", "200", "--seed", "3"
        )
        assert code == 0
        assert "keyword 'vaccine'" in out


class TestReplicaCommand:
    def _build_db(self, capsys, tmp_path):
        code, _out, _err = run_cli(
            capsys, "build", "--out", str(tmp_path), "--snapshot", *FAST
        )
        assert code == 0

    def test_status_reports_chain_and_journal(self, capsys, tmp_path):
        self._build_db(capsys, tmp_path)
        code, out, _err = run_cli(
            capsys, "--json", "replica", "status", "--db", str(tmp_path)
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["chain"]["replay_pending"] == 0
        assert payload["chain"]["tip_wal_seq"] == 0

    def test_run_converges_followers(self, capsys, tmp_path):
        self._build_db(capsys, tmp_path)
        code, out, _err = run_cli(
            capsys, "--json", "replica", "run", "--db", str(tmp_path),
            "--followers", "2",
        )
        assert code == 0
        payload = json.loads(out)
        followers = payload["replication"]["followers"]
        assert len(followers) == 2
        assert all(member["tokens"] > 0 for member in followers)
        assert all(member["replication_lag_seqs"] == 0 for member in followers)

    def test_run_requires_db(self, capsys):
        code, _out, err = run_cli(capsys, "replica", "run")
        assert code == 2
        assert "--db" in err
