"""Tests for repro.core.metaphone (the alternative phonetic encoder)."""

from __future__ import annotations

import pytest

from repro.core.metaphone import MetaphoneEncoder, _metaphone_transform
from repro.errors import EncodingError


class TestTransformRules:
    @pytest.mark.parametrize(
        ("word", "expected"),
        [
            ("phone", "FN"),        # PH -> F
            ("shine", "XN"),        # SH -> X
            ("this", "0S"),         # TH -> theta
            ("nation", "NXN"),      # TIO -> X
            ("knight", "KNT"),      # GH silent before consonant/end
            ("judge", "J"),         # DGE -> J, collapsed with the initial J
            ("quick", "K"),         # Q -> K, CK -> K, duplicates collapsed
            ("vote", "FT"),         # V -> F
            ("zebra", "SBR"),       # Z -> S
            ("box", "BKS"),         # X -> KS
        ],
    )
    def test_known_mappings(self, word, expected):
        assert _metaphone_transform(word) == expected

    def test_empty_word(self):
        assert _metaphone_transform("") == ""

    def test_leading_vowel_kept(self):
        assert _metaphone_transform("apple").startswith("A")

    def test_duplicates_collapsed(self):
        assert _metaphone_transform("bbb") == "B"


class TestMetaphoneEncoder:
    def test_perturbation_pairs_share_codes(self):
        encoder = MetaphoneEncoder(phonetic_level=1)
        for original, perturbed in (
            ("democrats", "dem0cr@ts"),
            ("democrats", "democRATs"),
            ("vaccine", "vacc1ne"),
            ("muslim", "mus-lim"),
            ("porn", "porrrrn"),
            ("suicide", "suic1de"),
        ):
            assert encoder.encode(original) == encoder.encode(perturbed), (
                original,
                perturbed,
            )

    def test_unrelated_words_differ(self):
        encoder = MetaphoneEncoder(phonetic_level=1)
        assert encoder.encode("democrats") != encoder.encode("elephants")
        assert encoder.encode("vaccine") != encoder.encode("mandate")

    def test_prefix_follows_phonetic_level(self):
        assert MetaphoneEncoder(phonetic_level=0).encode("republicans").startswith("R")
        assert MetaphoneEncoder(phonetic_level=2).encode("republicans").startswith("REP")

    def test_losbian_lesbian_separated_like_custom_soundex(self):
        encoder = MetaphoneEncoder(phonetic_level=1)
        assert encoder.encode("losbian") != encoder.encode("lesbian")

    def test_same_sound_helper(self):
        encoder = MetaphoneEncoder()
        assert encoder.same_sound("vaccine", "vacc1ne")
        assert not encoder.same_sound("vaccine", "elephant")
        assert not encoder.same_sound("vaccine", "???")

    def test_unencodable_token(self):
        encoder = MetaphoneEncoder()
        assert encoder.encode_or_none("???") is None
        with pytest.raises(EncodingError):
            encoder.encode("??,,")

    def test_max_code_length_truncates(self):
        short = MetaphoneEncoder(phonetic_level=1, max_code_length=2)
        long = MetaphoneEncoder(phonetic_level=1, max_code_length=0)
        assert len(short.encode("congratulations")) <= 2 + 2
        assert len(long.encode("congratulations")) >= len(short.encode("congratulations"))

    def test_invalid_parameters(self):
        with pytest.raises(EncodingError):
            MetaphoneEncoder(phonetic_level=-1)
        with pytest.raises(EncodingError):
            MetaphoneEncoder(max_code_length=-1)

    def test_deterministic_and_case_insensitive(self):
        encoder = MetaphoneEncoder()
        assert encoder.encode("Vaccine") == encoder.encode("vaccine")
        assert encoder.encode("vaccine") == encoder.encode("vaccine")

    def test_finer_than_soundex_on_distinct_words(self):
        # Metaphone distinguishes some word pairs the Soundex digit classes
        # merge (richer consonant alphabet), e.g. "very" vs "fire" share
        # Soundex digits but not Metaphone symbols with the canonical prefix.
        from repro.core.soundex import CustomSoundex

        soundex = CustomSoundex(phonetic_level=0)
        metaphone = MetaphoneEncoder(phonetic_level=0)
        merged_by_soundex = [
            ("cat", "cad"),   # t/d share Soundex class 3
            ("safe", "save"), # f/v share Soundex class 1
        ]
        finer = sum(
            1
            for first, second in merged_by_soundex
            if soundex.encode(first) == soundex.encode(second)
            and metaphone.encode(first) != metaphone.encode(second)
        )
        assert finer >= 1
