"""Tests for the observability layer (repro.obs).

Covers the four contracts the subsystem makes:

* the shared fixed-bucket histogram's percentile estimates are monotone,
  range-bounded, and exact on identical samples (hypothesis properties);
* the registry's armed guard, request tracing, and slow-query ring buffer;
* the exposition surfaces — ``/v1/metrics`` on both fronts is frozen to a
  known family set and the Prometheus text grammar, and ``/v1/stats``
  keeps its key schema;
* trace contexts cross the asyncio front's worker-thread boundary, so a
  slow request's log entry carries per-stage timings.
"""

from __future__ import annotations

import asyncio
import json
import math
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CrypText
from repro.analysis import sanitizer as sanitizer_mod
from repro.api import AsyncCrypTextService, CrypTextService, RateLimiter
from repro.obs import CONTENT_TYPE, DEFAULT_BUCKETS, Histogram, render_text
from repro.obs.adapters import replication_samples, sanitizer_samples, system_samples
from repro.replication import Follower, ReplicaSet
from repro.obs.registry import OBS
from repro.wal import ChangeLog, wal_directory_for

CORPUS = [
    "the dirrty republicans",
    "thee dirty repubLIEcans",
    "the dirty republic@@ns",
    "stop the vac-cine mandate now",
    "the demokrats hate the vacc1ne",
]


@pytest.fixture(autouse=True)
def _fresh_registry():
    """Process-global registry: drop state around every test, restore arming."""
    was_armed = OBS.armed
    threshold = OBS.slow_query_ms
    OBS.reset()
    yield
    OBS.reset()
    if was_armed:
        OBS.arm(slow_query_ms=threshold)


@pytest.fixture()
def service() -> CrypTextService:
    # Per-test system: the service shares the system's TTLCache, so a
    # shared fixture would serve later lookups from cache and skip the
    # pipeline spans these tests assert on.
    return CrypTextService(
        CrypText.from_corpus(CORPUS),
        rate_limiter=RateLimiter(max_requests=10000, window_seconds=60),
    )


@pytest.fixture()
def token(service) -> str:
    return service.issue_token("obs").token


# ---------------------------------------------------------------------- #
# histogram properties
# ---------------------------------------------------------------------- #
class TestHistogramProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_percentiles_monotone_and_range_bounded(self, values):
        hist = Histogram()
        for value in values:
            hist.observe(value)
        p50, p95, p99 = hist.percentile(0.5), hist.percentile(0.95), hist.percentile(0.99)
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(math.fsum(values))
        assert p50 <= p95 <= p99 <= hist.max
        assert hist.min <= p50
        assert min(values) <= p50 <= max(values)

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=1e-6, max_value=20.0, allow_nan=False),
        st.integers(min_value=1, max_value=64),
    )
    def test_identical_samples_estimate_exactly(self, value, repeats):
        hist = Histogram()
        for _ in range(repeats):
            hist.observe(value)
        for fraction in (0.5, 0.95, 0.99, 1.0):
            assert hist.percentile(fraction) == pytest.approx(value, rel=1e-9)

    def test_empty_histogram_reports_zeros(self):
        hist = Histogram()
        snap = hist.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.0
        assert snap["min"] == snap["max"] == 0.0
        assert snap["buckets"][-1] == (math.inf, 0)

    def test_snapshot_buckets_are_cumulative(self):
        hist = Histogram(buckets=(1.0, 2.0, 3.0))
        for value in (0.5, 1.5, 1.7, 2.5, 99.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == [(1.0, 1), (2.0, 3), (3.0, 4), (math.inf, 5)]

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_percentile_fraction_validated(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.0)
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_default_buckets_cover_fake_clock_holds(self):
        # The sanitizer's fake-clock test records exact 1.0s holds; 1.0 is
        # a bucket bound, so the bucket-mean estimate must be exact.
        assert 1.0 in DEFAULT_BUCKETS
        hist = Histogram()
        for _ in range(5):
            hist.observe(1.0)
        assert hist.percentile(0.5) == 1.0


# ---------------------------------------------------------------------- #
# registry: arming, tracing, slow-query log
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_disarmed_by_default_and_scoped_restores(self):
        assert OBS.armed is False
        with OBS.scoped(slow_query_ms=5.0):
            assert OBS.armed is True
            assert OBS.slow_query_ms == 5.0
        assert OBS.armed is False

    def test_counters_gauges_histograms_collect(self):
        OBS.inc("cryptext_demo_total", (("kind", "a"),), 2.0)
        OBS.set_gauge("cryptext_demo_gauge", 7.0)
        with OBS.span("demo"):
            pass
        samples = {name: (kind, value) for name, kind, _h, _l, value in OBS.collect()}
        assert samples["cryptext_demo_total"] == ("counter", 2.0)
        assert samples["cryptext_demo_gauge"] == ("gauge", 7.0)
        assert samples["cryptext_stage_seconds"][0] == "histogram"
        assert samples["cryptext_stage_seconds"][1]["count"] == 1

    def test_request_records_route_and_status(self):
        with OBS.scoped():
            with OBS.request("/v1/demo") as trace:
                trace.status = 201
        samples = OBS.collect()
        counters = {
            tuple(sorted(labels.items())): value
            for name, _k, _h, labels, value in samples
            if name == "cryptext_requests_total"
        }
        assert counters[(("route", "/v1/demo"), ("status", "201"))] == 1.0

    def test_nested_request_counted_once(self):
        with OBS.scoped():
            with OBS.request("/v1/outer"):
                with OBS.request("/v1/inner"):
                    pass
        routes = [
            labels["route"]
            for name, _k, _h, labels, _v in OBS.collect()
            if name == "cryptext_requests_total"
        ]
        assert routes == ["/v1/outer"]

    def test_slow_query_log_threshold(self):
        with OBS.scoped(slow_query_ms=10_000.0):
            with OBS.request("/v1/fast"):
                pass
        assert OBS.slow_queries() == []
        with OBS.scoped(slow_query_ms=0.0):
            with OBS.request("/v1/slow"):
                with OBS.span("stage.one"):
                    pass
        entries = OBS.slow_queries()
        assert [entry["route"] for entry in entries] == ["/v1/slow"]
        assert [stage["stage"] for stage in entries[0]["stages"]] == ["stage.one"]
        assert entries[0]["status"] == 200

    def test_status_summary_keys(self):
        assert set(OBS.status()) == {
            "armed",
            "slow_query_ms",
            "slow_queries",
            "slow_query_capacity",
            "traced_requests",
        }

    def test_snapshot_is_json_safe(self):
        with OBS.scoped():
            with OBS.span("jsonable"):
                pass
        encoded = json.dumps(OBS.snapshot())
        assert '"+Inf"' in encoded


# ---------------------------------------------------------------------- #
# exposition format
# ---------------------------------------------------------------------- #
#: Every metric family a plain armed service (no WAL, no scheduler, no
#: replica set, sanitizer off) exposes after lookup+normalize traffic.
#: Frozen: extending the catalog is fine, but it must be deliberate —
#: update this set and the README table together.
PLAIN_SERVICE_FAMILIES = {
    "cryptext_obs_armed",
    "cryptext_requests_total",
    "cryptext_request_seconds",
    "cryptext_stage_seconds",
    "cryptext_dictionary_tokens",
    "cryptext_dictionary_occurrences",
    "cryptext_compiled_cache_events_total",
    "cryptext_compiled_cache_size",
    "cryptext_compiled_cache_capacity",
    "cryptext_kernel_hits_total",
}

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[+-]?[0-9][0-9eE.+-]*)$"
)


def _families(text: str) -> set[str]:
    names = {
        line.split("{")[0].split(" ")[0]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    return {re.sub(r"_(bucket|sum|count)$", "", name) for name in names}


class TestExpositionFormat:
    def test_metrics_endpoint_family_set_is_frozen(self, service, token):
        with OBS.scoped():
            assert service.lookup(token, ["republicans"]).ok
            assert service.normalize(token, ["the dirrty republicans"]).ok
            response = service.metrics(token)
        assert response.status == 200
        assert response.text is not None
        expected = set(PLAIN_SERVICE_FAMILIES)
        if sanitizer_mod.active() is not None:
            # Sanitized runs add the lock held-time bridge by design.
            expected.add("cryptext_lock_held_seconds")
        assert _families(response.text) == expected

    def test_exposition_grammar(self, service, token):
        with OBS.scoped():
            service.lookup(token, ["republicans"])
            text = service.metrics(token).text
        assert text.endswith("\n")
        seen_types: dict[str, str] = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ", 3)
                assert kind in {"counter", "gauge", "histogram"}
                assert name not in seen_types, "family emitted twice"
                seen_types[name] = kind
            elif line.startswith("# HELP "):
                continue
            else:
                assert _SAMPLE_LINE.match(line), f"bad sample line: {line!r}"

    def test_histogram_families_emit_bucket_sum_count(self, service, token):
        with OBS.scoped():
            service.lookup(token, ["republicans"])
            text = service.metrics(token).text
        assert 'cryptext_request_seconds_bucket{route="/v1/lookup",le="+Inf"}' in text
        assert "cryptext_request_seconds_sum{" in text
        assert "cryptext_request_seconds_count{" in text
        # Cumulative: the +Inf bucket equals the count.
        inf = re.search(
            r'cryptext_request_seconds_bucket\{route="/v1/lookup",le="\+Inf"\} (\d+)',
            text,
        )
        count = re.search(
            r'cryptext_request_seconds_count\{route="/v1/lookup"\} (\d+)', text
        )
        assert inf and count and inf.group(1) == count.group(1)

    def test_label_escaping(self):
        text = render_text(
            [("cryptext_demo", "gauge", 'help "quoted"', {"k": 'a"b\\c\nd'}, 1.0)]
        )
        assert 'cryptext_demo{k="a\\"b\\\\c\\nd"} 1' in text

    def test_metrics_requires_stats_scope(self, service):
        limited = service.issue_token("limited", scopes={"normalize"}).token
        assert service.metrics(None).status == 401
        assert service.metrics(limited).status == 403

    def test_stats_body_schema_is_frozen(self, service, token):
        body = service.stats(token).body
        assert set(body) == {
            "stats",
            "compiled_cache",
            "recovery",
            "maintenance",
            "observability",
        }
        assert set(body["observability"]) == set(OBS.status())


# ---------------------------------------------------------------------- #
# async front: exposition + trace propagation across worker threads
# ---------------------------------------------------------------------- #
class TestAsyncFront:
    def test_metrics_route_serves_exposition_text(self, service, token):
        front = AsyncCrypTextService(service, reader_threads=1)
        with OBS.scoped():
            async def scenario():
                response = await front.dispatch(
                    "POST", "/v1/lookup", token, {"queries": ["republicans"]}
                )
                assert response.status == 200
                return await front.dispatch("GET", "/v1/metrics", token, None)

            response = asyncio.run(scenario())
        assert response.status == 200
        assert response.text is not None
        assert "version=0.0.4" in CONTENT_TYPE
        assert "cryptext_requests_total" in response.text

    def test_trace_crosses_the_worker_thread_pool(self, service, token):
        front = AsyncCrypTextService(service, reader_threads=2)
        with OBS.scoped(slow_query_ms=0.0):
            async def scenario():
                response = await front.dispatch(
                    "POST", "/v1/lookup", token, {"queries": ["republicans"]}
                )
                assert response.status == 200

            asyncio.run(scenario())
            entries = [
                entry for entry in OBS.slow_queries() if entry["route"] == "/v1/lookup"
            ]
        assert len(entries) == 1  # opened on the loop, finished once
        stages = [stage["stage"] for stage in entries[0]["stages"]]
        # The lookup span ran inside a worker thread; its timing landed on
        # the trace the event loop opened — the contextvar crossed over.
        assert "lookup" in stages
        assert entries[0]["status"] == 200

    def test_dispatch_counts_each_request_once(self, service, token):
        front = AsyncCrypTextService(service, reader_threads=1)
        with OBS.scoped():
            async def scenario():
                for _ in range(3):
                    await front.dispatch(
                        "POST", "/v1/lookup", token, {"queries": ["republicans"]}
                    )

            asyncio.run(scenario())
            counts = {
                (labels["route"], labels["status"]): value
                for name, _k, _h, labels, value in OBS.collect()
                if name == "cryptext_requests_total"
            }
        assert counts[("/v1/lookup", "200")] == 3.0

    def test_error_routes_finish_the_trace(self, service, token):
        front = AsyncCrypTextService(service, reader_threads=1)
        with OBS.scoped():
            async def scenario():
                return await front.dispatch("GET", "/v1/nowhere", token, None)

            response = asyncio.run(scenario())
            assert response.status == 404
            counts = {
                (labels["route"], labels["status"])
                for name, _k, _h, labels, _v in OBS.collect()
                if name == "cryptext_requests_total"
            }
        assert ("/v1/nowhere", "404") in counts


# ---------------------------------------------------------------------- #
# sanitizer bridge
# ---------------------------------------------------------------------- #
class TestSanitizerBridge:
    def test_sanitizer_samples_absent_when_inactive(self):
        if sanitizer_mod.active() is not None:
            pytest.skip("sanitized run: the bridge is live by construction")
        assert sanitizer_samples() == []

    def test_lock_held_seconds_samples_when_active(self):
        owned = sanitizer_mod.active() is None
        sanitizer = sanitizer_mod.enable()
        try:
            lock = sanitizer_mod.tracked_lock("wal.segment")
            with lock:
                pass
            samples = sanitizer_samples()
        finally:
            if owned:
                sanitizer_mod.disable()
        names = {(name, labels.get("lock")) for name, _k, _h, labels, _v in samples}
        assert ("cryptext_lock_held_seconds", "wal.segment") in names
        held = sanitizer.held_time_percentiles()["wal.segment"]
        assert held["count"] >= 1.0
        assert held["p50"] <= held["p95"] <= held["p99"] <= held["max"]


# ---------------------------------------------------------------------- #
# adapters
# ---------------------------------------------------------------------- #
class TestAdapters:
    def test_system_samples_cover_dictionary_and_cache(self, cryptext_small):
        names = {name for name, _k, _h, _l, _v in system_samples(cryptext_small)}
        assert {
            "cryptext_dictionary_tokens",
            "cryptext_dictionary_occurrences",
            "cryptext_compiled_cache_events_total",
            "cryptext_compiled_cache_size",
            "cryptext_compiled_cache_capacity",
        } <= names

    def test_journaled_system_adds_wal_gauges(self, tmp_path):
        system = CrypText.empty(seed_lexicon=False)
        wal = ChangeLog(wal_directory_for(tmp_path))
        system.dictionary.attach_wal(wal)
        try:
            system.learn_from(CORPUS, source="corpus")
            names = {name for name, _k, _h, _l, _v in system_samples(system)}
        finally:
            wal.close()
        assert {
            "cryptext_wal_last_seq",
            "cryptext_wal_segments",
            "cryptext_wal_bytes",
        } <= names

    def test_replication_samples_cover_lag_and_breakers(self, tmp_path):
        leader = CrypText.empty(seed_lexicon=False)
        wal = ChangeLog(wal_directory_for(tmp_path))
        leader.dictionary.attach_wal(wal)
        follower = Follower(tmp_path, name="scraped")
        try:
            leader.learn_from(CORPUS, source="corpus")
            follower.catch_up()
            replica_set = ReplicaSet(leader, [follower])
            replica_set.look_up("republicans")
            samples = replication_samples(replica_set)
        finally:
            follower.close()
            wal.close()
        by_name = {}
        for name, _kind, _help, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert {
            "cryptext_replication_leader_seq",
            "cryptext_replication_lag_seqs",
            "cryptext_replication_lag_seconds",
            "cryptext_replica_reads_total",
            "cryptext_follower_fresh",
            "cryptext_breaker_state",
        } <= set(by_name)
        # The caught-up follower is level with the leader and closed-breaker.
        assert by_name["cryptext_replication_lag_seqs"][0][1] == 0.0
        states = {
            labels["state"]: value
            for labels, value in by_name["cryptext_breaker_state"]
        }
        assert states == {"closed": 1.0, "open": 0.0, "half_open": 0.0}

    def test_disarmed_service_traffic_records_nothing(self, service, token):
        assert OBS.armed is False
        assert service.lookup(token, ["republicans"]).ok
        samples = [s for s in OBS.collect() if s[0] != "cryptext_obs_armed"]
        assert samples == []
