"""Tests for repro.text.wordlist."""

from __future__ import annotations

import pytest

from repro.text.wordlist import EnglishLexicon, WORD_GROUPS, default_lexicon


class TestDefaultLexicon:
    def test_contains_paper_keywords(self):
        lexicon = default_lexicon()
        for word in ("democrats", "republicans", "vaccine", "suicide", "muslim",
                     "chinese", "amazon", "porn", "depression", "lesbian"):
            assert word in lexicon

    def test_case_insensitive_membership(self):
        lexicon = default_lexicon()
        assert "Democrats" in lexicon
        assert "VACCINE" in lexicon

    def test_perturbed_tokens_are_not_words(self):
        lexicon = default_lexicon()
        for token in ("demokrats", "vacc1ne", "repubLIEcans", "mus-lim"):
            assert token not in lexicon

    def test_non_string_is_not_member(self):
        assert 42 not in default_lexicon()

    def test_reasonable_size(self):
        # The bundled lexicon is intentionally compact but must cover the
        # function words, topical vocabulary, and paper examples.
        assert len(default_lexicon()) > 800

    def test_cached_instance_is_reused(self):
        assert default_lexicon() is default_lexicon()


class TestGroups:
    def test_all_bundled_groups_present(self):
        lexicon = EnglishLexicon()
        assert set(lexicon.group_names) == set(WORD_GROUPS)

    def test_group_lookup(self):
        lexicon = EnglishLexicon()
        assert "democrats" in lexicon.group("politics")
        assert "vaccine" in lexicon.group("health")

    def test_unknown_group_rejected(self):
        with pytest.raises(KeyError):
            EnglishLexicon(include_groups=["nope"])
        with pytest.raises(KeyError):
            EnglishLexicon().group("nope")

    def test_group_restriction(self):
        lexicon = EnglishLexicon(include_groups=["politics"])
        assert "democrats" in lexicon
        assert "vaccine" not in lexicon

    def test_extra_words_form_their_own_group(self):
        lexicon = EnglishLexicon(words=["flibbertigibbet"])
        assert "flibbertigibbet" in lexicon
        assert "flibbertigibbet" in lexicon.group("extra")

    def test_groups_mapping_is_a_copy(self):
        lexicon = EnglishLexicon()
        groups = lexicon.groups()
        groups["politics"] = frozenset()
        assert "democrats" in lexicon.group("politics")


class TestSampleSpace:
    def test_sample_space_union(self):
        lexicon = EnglishLexicon()
        space = lexicon.sample_space("politics", "health")
        assert "democrats" in space
        assert "vaccine" in space

    def test_sample_space_sorted_and_deterministic(self):
        lexicon = EnglishLexicon()
        assert list(lexicon.sample_space("politics")) == sorted(lexicon.sample_space("politics"))
        assert lexicon.sample_space("politics") == lexicon.sample_space("politics")

    def test_sample_space_default_is_whole_lexicon(self):
        lexicon = EnglishLexicon()
        assert len(lexicon.sample_space()) == len(lexicon)

    def test_iteration_yields_sorted_words(self):
        lexicon = EnglishLexicon(include_groups=["paper_examples"])
        listed = list(lexicon)
        assert listed == sorted(listed)
        assert "democrats" in listed
