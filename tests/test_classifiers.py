"""Tests for repro.classifiers (Naive Bayes, logistic regression, simulated APIs)."""

from __future__ import annotations

import pytest

from repro.classifiers import (
    LogisticRegressionClassifier,
    MultinomialNaiveBayes,
    NgramVectorizer,
    RobustnessEvaluator,
    SimulatedCategoryAPI,
    SimulatedSentimentAPI,
    SimulatedToxicityAPI,
)
from repro.datasets import build_classification_dataset
from repro.errors import ClassifierError

TRAIN_TEXTS = [
    "i hate you worthless pathetic loser",
    "you are scum and trash and everyone hates you",
    "these vermin should be eliminated from our country",
    "shut up you disgusting idiot nobody wants you",
    "what a wonderful sunny day for a walk",
    "i love this community it is so supportive",
    "the new library opens downtown next week",
    "thanks for the help with the garden project",
]
TRAIN_LABELS = ["toxic", "toxic", "toxic", "toxic", "nontoxic", "nontoxic", "nontoxic", "nontoxic"]


def _vectors(texts, vectorizer=None):
    vectorizer = vectorizer or NgramVectorizer(char_ngrams=None)
    return vectorizer.fit_transform(texts), vectorizer


class TestNaiveBayes:
    def test_learns_simple_separation(self):
        vectors, vectorizer = _vectors(TRAIN_TEXTS)
        model = MultinomialNaiveBayes().fit(vectors, TRAIN_LABELS)
        toxic_vector = vectorizer.transform_one("you pathetic worthless scum")
        clean_vector = vectorizer.transform_one("wonderful sunny day in the garden")
        assert model.predict(toxic_vector) == "toxic"
        assert model.predict(clean_vector) == "nontoxic"

    def test_probabilities_sum_to_one(self):
        vectors, vectorizer = _vectors(TRAIN_TEXTS)
        model = MultinomialNaiveBayes().fit(vectors, TRAIN_LABELS)
        probabilities = model.predict_proba(vectorizer.transform_one("i hate you"))
        assert sum(probabilities.values()) == pytest.approx(1.0)
        assert set(probabilities) == {"toxic", "nontoxic"}

    def test_score_on_training_data(self):
        vectors, _ = _vectors(TRAIN_TEXTS)
        model = MultinomialNaiveBayes().fit(vectors, TRAIN_LABELS)
        assert model.score(vectors, TRAIN_LABELS) >= 0.9

    def test_empty_vector_falls_back_to_prior(self):
        vectors, _ = _vectors(TRAIN_TEXTS)
        labels = ["toxic"] * 6 + ["nontoxic"] * 2
        model = MultinomialNaiveBayes().fit(vectors, labels)
        assert model.predict({}) == "toxic"

    def test_validation_errors(self):
        with pytest.raises(ClassifierError):
            MultinomialNaiveBayes(alpha=0)
        with pytest.raises(ClassifierError):
            MultinomialNaiveBayes().fit([], [])
        with pytest.raises(ClassifierError):
            MultinomialNaiveBayes().fit([{}], ["a", "b"])
        with pytest.raises(ClassifierError):
            MultinomialNaiveBayes().predict({})

    def test_classes_sorted(self):
        vectors, _ = _vectors(TRAIN_TEXTS)
        model = MultinomialNaiveBayes().fit(vectors, TRAIN_LABELS)
        assert model.classes == ("nontoxic", "toxic")


class TestLogisticRegression:
    def test_learns_simple_separation(self):
        vectors, vectorizer = _vectors(TRAIN_TEXTS)
        model = LogisticRegressionClassifier(epochs=60, seed=3).fit(vectors, TRAIN_LABELS)
        assert model.predict(vectorizer.transform_one("you worthless pathetic idiot")) == "toxic"
        assert model.predict(vectorizer.transform_one("lovely garden project thanks")) == "nontoxic"

    def test_probabilities_sum_to_one(self):
        vectors, vectorizer = _vectors(TRAIN_TEXTS)
        model = LogisticRegressionClassifier(epochs=20).fit(vectors, TRAIN_LABELS)
        probabilities = model.predict_proba(vectorizer.transform_one("i hate you"))
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_training_is_deterministic_given_seed(self):
        vectors, vectorizer = _vectors(TRAIN_TEXTS)
        first = LogisticRegressionClassifier(epochs=10, seed=7).fit(vectors, TRAIN_LABELS)
        second = LogisticRegressionClassifier(epochs=10, seed=7).fit(vectors, TRAIN_LABELS)
        probe = vectorizer.transform_one("hate trash day")
        assert first.predict_proba(probe) == second.predict_proba(probe)

    def test_predict_many_matches_predict(self):
        vectors, vectorizer = _vectors(TRAIN_TEXTS)
        model = LogisticRegressionClassifier(epochs=20).fit(vectors, TRAIN_LABELS)
        probes = [vectorizer.transform_one(text) for text in TRAIN_TEXTS]
        assert model.predict_many(probes) == [model.predict(probe) for probe in probes]

    def test_validation_errors(self):
        with pytest.raises(ClassifierError):
            LogisticRegressionClassifier(learning_rate=0)
        with pytest.raises(ClassifierError):
            LogisticRegressionClassifier(epochs=0)
        with pytest.raises(ClassifierError):
            LogisticRegressionClassifier().predict({})
        with pytest.raises(ClassifierError):
            LogisticRegressionClassifier().fit([], [])


class TestSimulatedAPIs:
    @pytest.fixture(scope="class")
    def toxicity_data(self):
        return build_classification_dataset("toxicity", num_samples=400, seed=5)

    @pytest.fixture(scope="class")
    def sentiment_data(self):
        return build_classification_dataset("sentiment", num_samples=400, seed=6)

    @pytest.fixture(scope="class")
    def topic_data(self):
        return build_classification_dataset("topic", num_samples=400, seed=7)

    def test_toxicity_api_response_shape(self, toxicity_data):
        texts, labels = toxicity_data
        api = SimulatedToxicityAPI().train(texts, labels)
        prediction = api.analyze("you are a worthless pathetic loser")
        assert prediction.label in ("toxic", "nontoxic")
        assert "TOXICITY" in prediction.raw["attributeScores"]
        assert 0.0 <= prediction.raw["attributeScores"]["TOXICITY"]["summaryScore"]["value"] <= 1.0

    def test_toxicity_api_clean_accuracy(self, toxicity_data):
        texts, labels = toxicity_data
        api = SimulatedToxicityAPI().train(texts[:300], labels[:300])
        assert api.accuracy_on(texts[300:], labels[300:]) >= 0.8

    def test_sentiment_api_response_shape(self, sentiment_data):
        texts, labels = sentiment_data
        api = SimulatedSentimentAPI().train(texts[:200], labels[:200])
        prediction = api.analyze("i love this wonderful community")
        assert prediction.label in ("negative", "neutral", "positive")
        assert -1.0 <= prediction.raw["documentSentiment"]["score"] <= 1.0

    def test_category_api_response_shape(self, topic_data):
        texts, labels = topic_data
        api = SimulatedCategoryAPI().train(texts, labels)
        prediction = api.analyze("the senate will debate the election bill")
        assert prediction.label in {"politics", "health", "abuse", "technology"}
        assert prediction.raw["categories"][0]["name"].startswith("/")

    def test_untrained_api_rejected(self):
        with pytest.raises(ClassifierError):
            SimulatedToxicityAPI().predict_label("hello")

    def test_train_length_mismatch(self):
        with pytest.raises(ClassifierError):
            SimulatedToxicityAPI().train(["a"], ["toxic", "nontoxic"])


class TestRobustnessEvaluator:
    def test_accuracy_degrades_with_ratio(self, cryptext_synthetic):
        texts, labels = build_classification_dataset("toxicity", num_samples=300, seed=9)
        api = SimulatedToxicityAPI().train(texts[:200], labels[:200])
        evaluator = RobustnessEvaluator(
            lambda text, ratio: cryptext_synthetic.perturb(text, ratio=ratio).perturbed_text,
            ratios=(0.0, 0.5),
        )
        points = evaluator.evaluate(api, texts[200:], labels[200:])
        by_ratio = {point.ratio: point.accuracy for point in points}
        assert by_ratio[0.5] <= by_ratio[0.0]

    def test_point_metadata(self, cryptext_small):
        texts, labels = build_classification_dataset("toxicity", num_samples=60, seed=2)
        api = SimulatedToxicityAPI().train(texts, labels)
        evaluator = RobustnessEvaluator(
            lambda text, ratio: cryptext_small.perturb(text, ratio=ratio).perturbed_text,
            ratios=(0.0, 0.25),
        )
        points = evaluator.evaluate(api, texts[:20], labels[:20])
        assert [point.ratio for point in points] == [0.0, 0.25]
        assert all(point.num_samples == 20 for point in points)
        assert all(point.service == "perspective_toxicity" for point in points)
        assert all(0.0 <= point.accuracy <= 1.0 for point in points)

    def test_evaluate_many_pairs_apis_with_datasets(self, cryptext_small):
        tox_texts, tox_labels = build_classification_dataset("toxicity", 80, seed=1)
        topic_texts, topic_labels = build_classification_dataset("topic", 80, seed=2)
        tox_api = SimulatedToxicityAPI().train(tox_texts, tox_labels)
        topic_api = SimulatedCategoryAPI().train(topic_texts, topic_labels)
        evaluator = RobustnessEvaluator(
            lambda text, ratio: cryptext_small.perturb(text, ratio=ratio).perturbed_text,
            ratios=(0.0,),
        )
        results = evaluator.evaluate_many(
            [tox_api, topic_api],
            [(tox_texts[:20], tox_labels[:20]), (topic_texts[:20], topic_labels[:20])],
        )
        assert set(results) == {"perspective_toxicity", "cloud_categories"}

    def test_validation(self, cryptext_small):
        with pytest.raises(ClassifierError):
            RobustnessEvaluator(lambda text, ratio: text, ratios=())
        evaluator = RobustnessEvaluator(lambda text, ratio: text)
        texts, labels = build_classification_dataset("toxicity", 20, seed=1)
        api = SimulatedToxicityAPI().train(texts, labels)
        with pytest.raises(ClassifierError):
            evaluator.evaluate(api, [], [])
        with pytest.raises(ClassifierError):
            evaluator.evaluate(api, ["a"], ["toxic", "nontoxic"])
