"""Tests for repro.storage.document_store."""

from __future__ import annotations

import pytest

from repro.errors import DocumentNotFoundError, DuplicateKeyError, QueryError, StorageError
from repro.storage import Collection, DocumentStore


@pytest.fixture()
def tokens() -> Collection:
    collection = Collection("tokens")
    collection.insert_many(
        [
            {"token": "democrats", "count": 10, "is_word": True, "keys": {"k1": "DE52632"}},
            {"token": "demokrats", "count": 2, "is_word": False, "keys": {"k1": "DE52632"}},
            {"token": "vaccine", "count": 7, "is_word": True, "keys": {"k1": "VA250"}},
            {"token": "vacc1ne", "count": 1, "is_word": False, "keys": {"k1": "VA250"}},
        ]
    )
    return collection


class TestInsert:
    def test_insert_assigns_ids(self):
        collection = Collection("c")
        first = collection.insert_one({"a": 1})
        second = collection.insert_one({"a": 2})
        assert first != second
        assert len(collection) == 2

    def test_insert_with_explicit_id(self):
        collection = Collection("c")
        assert collection.insert_one({"_id": "x", "a": 1}) == "x"
        assert collection.get("x")["a"] == 1

    def test_duplicate_id_rejected(self):
        collection = Collection("c")
        collection.insert_one({"_id": 1})
        with pytest.raises(DuplicateKeyError):
            collection.insert_one({"_id": 1})

    def test_non_mapping_rejected(self):
        with pytest.raises(StorageError):
            Collection("c").insert_one(["not", "a", "doc"])  # type: ignore[arg-type]

    def test_inserted_document_is_copied(self):
        collection = Collection("c")
        original = {"a": [1, 2]}
        doc_id = collection.insert_one(original)
        original["a"].append(3)
        assert collection.get(doc_id)["a"] == [1, 2]


class TestFind:
    def test_find_all(self, tokens):
        assert len(tokens.find()) == 4

    def test_find_with_filter(self, tokens):
        results = tokens.find({"is_word": True})
        assert {doc["token"] for doc in results} == {"democrats", "vaccine"}

    def test_find_with_operators(self, tokens):
        results = tokens.find({"count": {"$gte": 7}})
        assert {doc["token"] for doc in results} == {"democrats", "vaccine"}

    def test_find_one(self, tokens):
        assert tokens.find_one({"token": "vaccine"})["count"] == 7
        assert tokens.find_one({"token": "nope"}) is None

    def test_sort_and_limit(self, tokens):
        results = tokens.find(sort="count", reverse=True, limit=2)
        assert [doc["token"] for doc in results] == ["democrats", "vaccine"]

    def test_projection(self, tokens):
        results = tokens.find({"token": "vaccine"}, projection=["count"])
        assert set(results[0]) == {"_id", "count"}

    def test_returned_documents_are_copies(self, tokens):
        doc = tokens.find_one({"token": "vaccine"})
        doc["count"] = 999
        assert tokens.find_one({"token": "vaccine"})["count"] == 7

    def test_get_missing_raises(self, tokens):
        with pytest.raises(DocumentNotFoundError):
            tokens.get("missing-id")

    def test_count(self, tokens):
        assert tokens.count() == 4
        assert tokens.count({"is_word": False}) == 2

    def test_distinct(self, tokens):
        assert set(tokens.distinct("is_word")) == {True, False}

    def test_aggregate_counts(self, tokens):
        counts = tokens.aggregate_counts("is_word")
        assert counts == {True: 2, False: 2}

    def test_contains_and_iter(self, tokens):
        doc_id = tokens.find_one({"token": "vaccine"})["_id"]
        assert doc_id in tokens
        assert len(list(iter(tokens))) == 4


class TestIndexes:
    def test_index_accelerated_find_matches_scan(self, tokens):
        scan = tokens.find({"keys.k1": "VA250"})
        tokens.create_index("keys.k1")
        indexed = tokens.find({"keys.k1": "VA250"})
        assert {doc["token"] for doc in scan} == {doc["token"] for doc in indexed}

    def test_index_with_in_filter(self, tokens):
        tokens.create_index("token")
        results = tokens.find({"token": {"$in": ["vaccine", "vacc1ne"]}})
        assert {doc["token"] for doc in results} == {"vaccine", "vacc1ne"}

    def test_index_maintained_on_insert_and_delete(self, tokens):
        tokens.create_index("token")
        tokens.insert_one({"token": "mandate", "count": 5, "is_word": True, "keys": {"k1": "MA533"}})
        assert tokens.find_one({"token": "mandate"}) is not None
        tokens.delete_many({"token": "mandate"})
        assert tokens.find_one({"token": "mandate"}) is None

    def test_multikey_index(self):
        collection = Collection("posts")
        collection.create_index("tags", multi=True)
        collection.insert_one({"text": "a", "tags": ["vaccine", "mandate"]})
        collection.insert_one({"text": "b", "tags": ["politics"]})
        results = collection.find({"tags": {"$in": ["vaccine"]}})
        assert len(results) == 1 and results[0]["text"] == "a"

    def test_index_fields_listing(self, tokens):
        tokens.create_index("token")
        assert "token" in tokens.index_fields
        tokens.drop_index("token")
        assert "token" not in tokens.index_fields


class TestUpdateDelete:
    def test_update_set(self, tokens):
        assert tokens.update_one({"token": "vaccine"}, {"$set": {"count": 11}})
        assert tokens.find_one({"token": "vaccine"})["count"] == 11

    def test_update_inc(self, tokens):
        tokens.update_one({"token": "vaccine"}, {"$inc": {"count": 3}})
        assert tokens.find_one({"token": "vaccine"})["count"] == 10

    def test_update_add_to_set(self, tokens):
        tokens.update_one({"token": "vaccine"}, {"$addToSet": {"sources": "twitter"}})
        tokens.update_one({"token": "vaccine"}, {"$addToSet": {"sources": "twitter"}})
        assert tokens.find_one({"token": "vaccine"})["sources"] == ["twitter"]

    def test_update_push_appends(self, tokens):
        tokens.update_one({"token": "vaccine"}, {"$push": {"log": "a"}})
        tokens.update_one({"token": "vaccine"}, {"$push": {"log": "a"}})
        assert tokens.find_one({"token": "vaccine"})["log"] == ["a", "a"]

    def test_update_missing_without_upsert(self, tokens):
        assert not tokens.update_one({"token": "nope"}, {"$set": {"count": 1}})

    def test_upsert_creates_document(self, tokens):
        assert tokens.update_one({"token": "booster"}, {"$set": {"count": 1}}, upsert=True)
        assert tokens.find_one({"token": "booster"})["count"] == 1

    def test_unknown_update_operator_rejected(self, tokens):
        with pytest.raises(QueryError):
            tokens.update_one({"token": "vaccine"}, {"$rename": {"count": "n"}})

    def test_delete_many(self, tokens):
        assert tokens.delete_many({"is_word": False}) == 2
        assert len(tokens) == 2

    def test_delete_all(self, tokens):
        assert tokens.delete_many() == 4
        assert len(tokens) == 0

    def test_clear_keeps_indexes(self, tokens):
        tokens.create_index("token")
        tokens.clear()
        assert len(tokens) == 0
        assert "token" in tokens.index_fields

    def test_replace_one_missing_raises(self, tokens):
        with pytest.raises(DocumentNotFoundError):
            tokens.replace_one("nope", {"token": "x"})


class TestDocumentStore:
    def test_collections_are_created_lazily(self):
        store = DocumentStore("db")
        assert "tokens" not in store
        store.collection("tokens").insert_one({"a": 1})
        assert "tokens" in store
        assert store.collection_names() == ("tokens",)

    def test_getitem_alias(self):
        store = DocumentStore()
        store["posts"].insert_one({"a": 1})
        assert len(store["posts"]) == 1

    def test_drop_collection(self):
        store = DocumentStore()
        store["posts"].insert_one({"a": 1})
        store.drop_collection("posts")
        assert "posts" not in store

    def test_stats(self):
        store = DocumentStore()
        store["tokens"].insert_one({"a": 1})
        store["tokens"].create_index("a")
        stats = store.stats()
        assert stats["tokens"]["documents"] == 1
        assert stats["tokens"]["indexes"] == ["a"]

    def test_apply_helper(self):
        store = DocumentStore()
        store["tokens"].insert_many([{"a": 1}, {"a": 2}])
        assert store.apply("tokens", len) == 2
