"""Fixture: swallowed-exception hits and non-hits (only parsed)."""


class Swallower:
    def __init__(self):
        self.errors = 0

    def swallows_silently(self, work):
        try:
            work()
        except Exception:  # EXPECT: swallowed-exception
            pass

    def bare_returns_none(self, work):
        try:
            work()
        except:  # EXPECT: swallowed-exception
            return None

    def swallows_in_loop(self, jobs):
        for job in jobs:
            try:
                job()
            except (ValueError, Exception):  # EXPECT: swallowed-exception
                continue

    def counts_ok(self, work):
        try:
            work()
        except Exception:
            self.errors += 1

    def narrow_ok(self, work):
        try:
            work()
        except ValueError:
            pass

    def reports_failure_ok(self, work):
        try:
            work()
        except Exception:
            return False

    def reraises_ok(self, work):
        try:
            work()
        except Exception:
            raise

    def pragma_ok(self, work):
        try:
            work()
        except Exception:  # lint: allow=swallowed-exception (fixture: deliberate best-effort)
            pass
