"""Fixture: dead-import hits and non-hits (only parsed)."""

from __future__ import annotations

import json
import os  # EXPECT: dead-import
from pathlib import Path  # EXPECT: dead-import
from typing import Mapping, Sequence


def dump(payload: Mapping[str, int], keys: Sequence[str]) -> str:
    # Mapping/Sequence are used only inside (stringified) annotations —
    # the textual check must still count them as referenced.
    return json.dumps({key: payload[key] for key in keys})
