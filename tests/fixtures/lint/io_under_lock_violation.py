"""Fixture: io-under-lock hits and non-hits (never executed, only parsed)."""

import time

from repro.analysis.sanitizer import tracked_rlock


class HotIO:
    def __init__(self):
        self._lock = tracked_rlock("storage.cache")
        self._save_lock = tracked_rlock("maintenance.save")

    def blocking_reads_under_hot_lock(self, path):
        with self._lock:
            handle = open(path)  # EXPECT: io-under-lock
            text = path.read_text()  # EXPECT: io-under-lock
            time.sleep(0.1)  # EXPECT: io-under-lock
        return handle, text

    def io_outside_lock_ok(self, path):
        text = path.read_text()
        with self._lock:
            size = len(text)
        return size

    def slow_path_lock_ok(self, path):
        # maintenance.save is not a hot-path lock: a save *is* IO.
        with self._save_lock:
            path.write_text("checkpoint")
