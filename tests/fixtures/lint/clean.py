"""Fixture: a module every rule should pass untouched (only parsed)."""

from __future__ import annotations

import threading

from repro.analysis.sanitizer import tracked_lock, tracked_rlock


class WellBehaved:
    def __init__(self):
        self._write_lock = tracked_rlock("dictionary.write")
        self._wal_lock = tracked_lock("wal.segment")
        self._stop = threading.Event()
        self.applied = 0
        self.errors = 0

    def journal_then_apply(self, record):
        with self._write_lock:
            with self._wal_lock:
                frame = record
            self.applied += 1
        return frame

    def tolerant_poll(self, work):
        try:
            work()
        except ValueError:
            self.errors += 1

    def spawn(self, target):
        return threading.Thread(target=target, daemon=True)


async def offloads(loop, path):
    return await loop.run_in_executor(None, path.read_text)
