"""Fixture: mutable-default hits and non-hits (only parsed)."""


def list_default(items=[]):  # EXPECT: mutable-default
    return items


def dict_default(mapping={}):  # EXPECT: mutable-default
    return mapping


def ctor_default(acc=list()):  # EXPECT: mutable-default
    return acc


def kwonly_default(*, seen=set()):  # EXPECT: mutable-default
    return seen


def immutable_defaults_ok(items=None, name="x", count=0, flags=(), bits=frozenset()):
    return items, name, count, flags, bits
