"""Fixture: lock-order hits and non-hits (never executed, only parsed)."""

import threading

from repro.analysis.sanitizer import tracked_lock, tracked_rlock


class Inverted:
    def __init__(self):
        self._wal_lock = tracked_lock("wal.segment")
        self._write_lock = tracked_rlock("dictionary.write")
        self._plain = threading.Lock()  # EXPECT: lock-order
        self._mystery = tracked_lock("no.such.rank")  # EXPECT: lock-order

    def inverted_nesting(self):
        with self._wal_lock:
            with self._write_lock:  # EXPECT: lock-order
                pass

    def declared_order_ok(self):
        with self._write_lock:
            with self._wal_lock:
                pass

    def self_deadlock(self):
        with self._wal_lock:
            with self._wal_lock:  # EXPECT: lock-order
                pass

    def reentrant_reentry_ok(self):
        with self._write_lock:
            with self._write_lock:
                pass

    def manual_acquire_inverted(self):
        with self._wal_lock:
            self._write_lock.acquire()  # EXPECT: lock-order
            try:
                pass
            finally:
                self._write_lock.release()
