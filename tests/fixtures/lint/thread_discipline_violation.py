"""Fixture: thread-discipline hits and non-hits (only parsed)."""

import threading
from threading import Thread


def spawn_implicit_daemon_flag(target):
    worker = threading.Thread(target=target)  # EXPECT: thread-discipline
    worker.start()
    return worker


def spawn_bare_name(target):
    return Thread(target=target, name="worker")  # EXPECT: thread-discipline


def spawn_daemon_ok(target):
    worker = threading.Thread(target=target, daemon=True)
    worker.start()
    return worker


def spawn_explicit_foreground_ok(target):
    # daemon=False is fine: the author stated the shutdown contract.
    return threading.Thread(target=target, daemon=False)
