"""Fixture: async-blocking hits and non-hits (only parsed)."""

import asyncio
import os
import time


async def sleeps_on_the_loop():
    time.sleep(0.1)  # EXPECT: async-blocking


async def opens_on_the_loop(path):
    with open(path) as handle:  # EXPECT: async-blocking
        return handle.read()


async def path_io_on_the_loop(path):
    os.fsync(3)  # EXPECT: async-blocking
    return path.read_text()  # EXPECT: async-blocking


async def blocks_on_future(future):
    return future.result()  # EXPECT: async-blocking


async def offloaded_ok(loop, path):
    await asyncio.sleep(0)
    return await loop.run_in_executor(None, path.read_text)


async def nested_sync_helper_ok(loop, path):
    def read_it():
        return open(path).read()

    return await loop.run_in_executor(None, read_it)


def sync_function_ok(path):
    time.sleep(0.1)
    return open(path).read()
