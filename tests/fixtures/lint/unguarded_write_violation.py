"""Fixture: unguarded-write hits and non-hits (only parsed)."""

from repro.analysis.sanitizer import tracked_lock


class Counter:
    def __init__(self):
        self._lock = tracked_lock("storage.cache")
        self.total = 0
        self.label = ""

    def add(self, amount):
        with self._lock:
            self.total += amount

    def racy_reset(self):
        self.total = 0  # EXPECT: unguarded-write

    def unshared_attr_ok(self, label):
        # `label` is never written under the lock, so no guard is implied.
        self.label = label

    def _clear_locked(self):
        # *_locked methods run under the caller's hold by convention.
        self.total = 0

    def pragma_ok(self):  # lint: allow=unguarded-write (fixture: single-threaded teardown)
        self.total = 0


class NoLocksAnywhere:
    def __init__(self):
        self.value = 0

    def bump(self):
        # The class declares no lock, so the rule does not apply at all.
        self.value += 1
