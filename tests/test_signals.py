"""Tests for repro.classifiers.signals (perturbation-presence features)."""

from __future__ import annotations

from repro.classifiers import (
    MultinomialNaiveBayes,
    NgramVectorizer,
    PerturbationSignalExtractor,
    combine_feature_vectors,
)
from repro.datasets import build_robustness_dataset


class TestFeatureExtraction:
    def test_clean_text_features(self, cryptext_small):
        extractor = PerturbationSignalExtractor(cryptext_small.normalizer)
        features = extractor.extract("the democrats support the vaccine mandate")
        assert features["sig:num_perturbations"] == 0.0
        assert features["sig:clean"] == 1.0

    def test_perturbed_text_features(self, cryptext_small):
        extractor = PerturbationSignalExtractor(cryptext_small.normalizer)
        features = extractor.extract("the demokrats push the vacc1ne mandate")
        assert features["sig:num_perturbations"] >= 2.0
        assert 0.0 < features["sig:perturbation_ratio"] <= 1.0
        assert features["sig:num_sensitive_restored"] >= 1.0
        assert "sig:clean" not in features

    def test_category_features_present(self, cryptext_small):
        extractor = PerturbationSignalExtractor(cryptext_small.normalizer)
        features = extractor.extract("thinking about suic1de again")
        assert any(name.startswith("sig:category:") for name in features)

    def test_custom_prefix(self, cryptext_small):
        extractor = PerturbationSignalExtractor(cryptext_small.normalizer, prefix="p")
        features = extractor.extract("the demokrats")
        assert all(name.startswith("p:") for name in features)

    def test_extract_many(self, cryptext_small):
        extractor = PerturbationSignalExtractor(cryptext_small.normalizer)
        batch = extractor.extract_many(["the demokrats", "the democrats"])
        assert len(batch) == 2
        assert batch[0]["sig:num_perturbations"] > batch[1]["sig:num_perturbations"]

    def test_features_from_precomputed_result(self, cryptext_small):
        extractor = PerturbationSignalExtractor(cryptext_small.normalizer)
        result = cryptext_small.normalize("the demokrats push their agenda")
        assert extractor.features_from_result(result) == extractor.extract(
            "the demokrats push their agenda"
        )


class TestCombineFeatureVectors:
    def test_disjoint_keys_union(self):
        combined = combine_feature_vectors({"a": 1.0}, {"b": 2.0})
        assert combined == {"a": 1.0, "b": 2.0}

    def test_shared_keys_summed(self):
        combined = combine_feature_vectors({"a": 1.0, "b": 1.0}, {"b": 2.0})
        assert combined == {"a": 1.0, "b": 3.0}

    def test_inputs_not_mutated(self):
        base = {"a": 1.0}
        extra = {"a": 2.0}
        combine_feature_vectors(base, extra)
        assert base == {"a": 1.0} and extra == {"a": 2.0}


class TestSignalIsPredictive:
    """§III-C use case 2: perturbation presence signals adversarial content."""

    def test_toxic_posts_carry_more_perturbation_signal(
        self, cryptext_synthetic, synthetic_posts
    ):
        # In the wild (and in the synthetic corpus that mirrors it), abusive
        # posts are perturbed more often than benign ones, so the extracted
        # signal is higher on average for toxic posts.
        extractor = PerturbationSignalExtractor(cryptext_synthetic.normalizer)
        toxic = [post.text for post in synthetic_posts if post.toxic][:60]
        benign = [post.text for post in synthetic_posts if not post.toxic][:60]
        toxic_signal = sum(
            extractor.extract(text)["sig:num_perturbations"] for text in toxic
        ) / len(toxic)
        benign_signal = sum(
            extractor.extract(text)["sig:num_perturbations"] for text in benign
        ) / len(benign)
        assert toxic_signal > benign_signal

    def test_signal_only_classifier_beats_chance(self, cryptext_synthetic, synthetic_posts):
        # A Naive Bayes model that sees *only* the perturbation signals (no
        # text features at all) predicts toxicity above chance on a balanced
        # sample — the signal genuinely carries class information.
        extractor = PerturbationSignalExtractor(cryptext_synthetic.normalizer)
        toxic = [post.text for post in synthetic_posts if post.toxic][:50]
        benign = [post.text for post in synthetic_posts if not post.toxic][:50]
        toxic_vectors = [extractor.extract(text) for text in toxic]
        benign_vectors = [extractor.extract(text) for text in benign]
        train_vectors = toxic_vectors[:35] + benign_vectors[:35]
        train_labels = ["toxic"] * 35 + ["nontoxic"] * 35
        test_vectors = toxic_vectors[35:] + benign_vectors[35:]
        test_labels = ["toxic"] * len(toxic_vectors[35:]) + ["nontoxic"] * len(
            benign_vectors[35:]
        )
        model = MultinomialNaiveBayes().fit(train_vectors, train_labels)
        correct = sum(
            1
            for vector, label in zip(test_vectors, test_labels)
            if model.predict(vector) == label
        )
        assert correct / len(test_labels) > 0.5

    def test_signals_combine_with_ngram_features(self, cryptext_synthetic):
        # The two feature families share no names, so combining them never
        # loses information and classifiers accept the merged vectors.
        texts, labels = build_robustness_dataset("toxicity", num_samples=80, seed=55)
        vectorizer = NgramVectorizer(word_ngrams=(1, 1), char_ngrams=None)
        base_vectors = vectorizer.fit_transform(texts)
        extractor = PerturbationSignalExtractor(cryptext_synthetic.normalizer)
        merged = [
            combine_feature_vectors(vector, extractor.extract(text))
            for vector, text in zip(base_vectors, texts)
        ]
        assert all(
            set(base) <= set(combined) for base, combined in zip(base_vectors, merged)
        )
        model = MultinomialNaiveBayes().fit(merged, labels)
        assert model.predict(merged[0]) in ("toxic", "nontoxic")
