"""Tests for repro.config."""

from __future__ import annotations

import pytest

from repro.config import (
    CrypTextConfig,
    DEFAULT_CONFIG,
    DEFAULT_EDIT_DISTANCE,
    DEFAULT_PHONETIC_LEVEL,
    SUPPORTED_PHONETIC_LEVELS,
)
from repro.errors import ConfigurationError


class TestDefaults:
    def test_paper_defaults(self):
        assert DEFAULT_CONFIG.phonetic_level == DEFAULT_PHONETIC_LEVEL == 1
        assert DEFAULT_CONFIG.edit_distance == DEFAULT_EDIT_DISTANCE == 3

    def test_max_phonetic_level_covers_paper_hashmaps(self):
        assert DEFAULT_CONFIG.max_phonetic_level == 2
        assert set(SUPPORTED_PHONETIC_LEVELS) == {0, 1, 2}

    def test_default_ratio_in_paper_demo_range(self):
        assert DEFAULT_CONFIG.perturbation_ratio in (0.15, 0.25, 0.5)


class TestValidation:
    def test_invalid_phonetic_level_rejected(self):
        with pytest.raises(ConfigurationError):
            CrypTextConfig(phonetic_level=5)

    def test_negative_edit_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            CrypTextConfig(edit_distance=-1)

    def test_non_integer_edit_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            CrypTextConfig(edit_distance=1.5)  # type: ignore[arg-type]

    def test_phonetic_level_above_max_rejected(self):
        with pytest.raises(ConfigurationError):
            CrypTextConfig(phonetic_level=2, max_phonetic_level=1)

    def test_ratio_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            CrypTextConfig(perturbation_ratio=1.5)
        with pytest.raises(ConfigurationError):
            CrypTextConfig(perturbation_ratio=-0.1)

    def test_cache_settings_validated(self):
        with pytest.raises(ConfigurationError):
            CrypTextConfig(cache_ttl_seconds=0)
        with pytest.raises(ConfigurationError):
            CrypTextConfig(cache_max_entries=0)

    def test_crawler_and_lm_settings_validated(self):
        with pytest.raises(ConfigurationError):
            CrypTextConfig(crawler_batch_size=0)
        with pytest.raises(ConfigurationError):
            CrypTextConfig(lm_order=0)
        with pytest.raises(ConfigurationError):
            CrypTextConfig(normalizer_max_candidates=0)


class TestOverridesAndSerialization:
    def test_with_overrides_returns_new_validated_config(self):
        config = CrypTextConfig()
        updated = config.with_overrides(edit_distance=2, perturbation_ratio=0.5)
        assert updated.edit_distance == 2
        assert updated.perturbation_ratio == 0.5
        # the original is untouched (frozen dataclass semantics)
        assert config.edit_distance == 3

    def test_with_overrides_validates(self):
        with pytest.raises(ConfigurationError):
            CrypTextConfig().with_overrides(edit_distance=-2)

    def test_round_trip_to_from_dict(self):
        config = CrypTextConfig(edit_distance=2, seed=99, extra={"note": "x"})
        restored = CrypTextConfig.from_dict(config.to_dict())
        assert restored == config

    def test_from_dict_collects_unknown_keys_into_extra(self):
        config = CrypTextConfig.from_dict({"edit_distance": 1, "future_knob": True})
        assert config.edit_distance == 1
        assert config.extra["future_knob"] is True

    def test_config_is_hashable_and_frozen(self):
        config = CrypTextConfig()
        with pytest.raises(AttributeError):
            config.edit_distance = 5  # type: ignore[misc]
