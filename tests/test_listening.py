"""Tests for repro.social.listening (Social Listening, §III-E)."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.sentiment import SentimentAnalyzer
from repro.social import SocialListener, SocialPlatform


@pytest.fixture(scope="module")
def listener(cryptext_synthetic, twitter_platform) -> SocialListener:
    return SocialListener(
        platform=twitter_platform, lookup=cryptext_synthetic.lookup_engine
    )


class TestKeywordExpansion:
    def test_expansion_returns_perturbations(self, listener):
        expanded = listener.expand_keyword("vaccine")
        assert expanded
        assert "vaccine" not in expanded

    def test_expansion_respects_cap(self, cryptext_synthetic, twitter_platform):
        capped = SocialListener(
            platform=twitter_platform,
            lookup=cryptext_synthetic.lookup_engine,
            max_perturbations=2,
        )
        assert len(capped.expand_keyword("vaccine")) <= 2

    def test_negative_cap_rejected(self, cryptext_synthetic, twitter_platform):
        with pytest.raises(PlatformError):
            SocialListener(
                platform=twitter_platform,
                lookup=cryptext_synthetic.lookup_engine,
                max_perturbations=-1,
            )


class TestMonitorKeyword:
    def test_usage_report_fields(self, listener):
        usage = listener.monitor_keyword("vaccine")
        assert usage.keyword == "vaccine"
        assert usage.total_posts > 0
        assert 0 <= usage.perturbed_posts <= usage.total_posts
        assert 0.0 <= usage.perturbed_share <= 1.0
        assert usage.timeline

    def test_timeline_is_sorted_and_aggregates_frequency(self, listener):
        usage = listener.monitor_keyword("vaccine")
        dates = [point.date for point in usage.timeline]
        assert dates == sorted(dates)
        assert sum(point.frequency for point in usage.timeline) == usage.total_posts

    def test_timeline_sentiment_bounds(self, listener):
        usage = listener.monitor_keyword("democrats")
        for point in usage.timeline:
            assert -1.0 <= point.average_sentiment <= 1.0
            assert 0.0 <= point.negative_share <= 1.0

    def test_per_perturbation_counts_exclude_case_variants(self, listener):
        usage = listener.monitor_keyword("vaccine")
        assert all(token.lower() != "vaccine" for token in usage.per_perturbation_counts)
        assert sum(usage.per_perturbation_counts.values()) >= usage.perturbed_posts * 0

    def test_date_window_restricts_results(self, listener):
        full = listener.monitor_keyword("vaccine")
        windowed = listener.monitor_keyword("vaccine", since="2021-11-10", until="2021-11-20")
        assert windowed.total_posts <= full.total_posts

    def test_unknown_keyword(self, listener):
        usage = listener.monitor_keyword("zebra")
        assert usage.total_posts == 0
        assert usage.timeline == ()

    def test_monitor_many(self, listener):
        usage = listener.monitor_keywords(["vaccine", "democrats"])
        assert set(usage) == {"vaccine", "democrats"}

    def test_to_dict(self, listener):
        payload = listener.monitor_keyword("vaccine").to_dict()
        assert payload["keyword"] == "vaccine"
        assert isinstance(payload["timeline"], list)
        assert "perturbed_share" in payload


class TestKeywordEnrichment:
    """The §III-B use case: perturbation-enriched search finds more negative content."""

    @pytest.mark.parametrize("keyword", ["democrats", "republicans", "vaccine"])
    def test_enriched_search_finds_more_posts(self, listener, keyword):
        comparison = listener.keyword_enrichment_comparison(keyword)
        assert comparison["enriched_matches"] >= comparison["plain_matches"]

    @pytest.mark.parametrize("keyword", ["democrats", "republicans", "vaccine"])
    def test_enriched_search_skews_more_negative(self, listener, keyword):
        comparison = listener.keyword_enrichment_comparison(keyword)
        assert (
            comparison["enriched_negative_share"]
            >= comparison["plain_negative_share"]
        )

    def test_comparison_fields(self, listener):
        comparison = listener.keyword_enrichment_comparison("vaccine")
        assert set(comparison) >= {
            "keyword",
            "num_perturbations",
            "plain_matches",
            "enriched_matches",
            "plain_negative_share",
            "enriched_negative_share",
            "negative_share_gain",
        }
        assert comparison["negative_share_gain"] == pytest.approx(
            comparison["enriched_negative_share"] - comparison["plain_negative_share"]
        )


class TestCustomSentimentAnalyzer:
    def test_injected_analyzer_used(self, cryptext_synthetic, twitter_platform):
        everything_negative = SentimentAnalyzer(lexicon={"the": -3.0, "a": -3.0})
        listener = SocialListener(
            platform=twitter_platform,
            lookup=cryptext_synthetic.lookup_engine,
            sentiment=everything_negative,
        )
        usage = listener.monitor_keyword("vaccine")
        # Function words are near-universal, so with this lexicon the overall
        # sentiment of the monitored posts must skew clearly negative.
        assert usage.timeline
        total = sum(point.average_sentiment for point in usage.timeline)
        assert total < 0
