"""Experiment ``ablation_k_d`` — the phonetic level ``k`` and distance bound ``d``.

The paper fixes ``k=1, d=3`` as the Look Up / Normalization defaults and lets
advanced users tune both.  This ablation quantifies that choice: over a set
of labelled ground-truth pairs (original word, human-written perturbation),
it sweeps ``k`` in {0, 1, 2} and ``d`` in {1, 2, 3, 4} and measures

* **recall** — how often Look Up retrieves the perturbed form when queried
  with the original word, and
* **bucket size** — how many candidate tokens the query returns (a proxy for
  precision / downstream ranking cost).

Larger ``d`` and smaller ``k`` raise recall but blow up the bucket; the
paper's default sits at the knee.
"""

from __future__ import annotations

from repro import CrypText, CrypTextConfig
from repro.datasets import build_perturbation_pairs

from conftest import record_result

K_VALUES = (0, 1, 2)
D_VALUES = (1, 2, 3, 4)
NUM_PAIRS = 150


def _build_system_with_pairs(pairs) -> CrypText:
    """A system whose dictionary has observed exactly the ground-truth pairs."""
    system = CrypText.empty(config=CrypTextConfig(cache_enabled=False))
    for original, perturbed, _strategy in pairs:
        system.dictionary.add_token(perturbed, source="groundtruth")
        system.dictionary.add_token(original, source="groundtruth")
    return system


def test_ablation_phonetic_level_and_distance(benchmark):
    pairs = build_perturbation_pairs(num_pairs=NUM_PAIRS, seed=29)
    system = _build_system_with_pairs(pairs)

    def sweep():
        grid = {}
        for k in K_VALUES:
            for d in D_VALUES:
                recalled = 0
                bucket_sizes = 0
                for original, perturbed, _strategy in pairs:
                    result = system.look_up(
                        original, phonetic_level=k, max_edit_distance=d
                    )
                    bucket_sizes += len(result.matches)
                    if perturbed in result.tokens:
                        recalled += 1
                grid[(k, d)] = {
                    "recall": recalled / len(pairs),
                    "avg_bucket_size": bucket_sizes / len(pairs),
                }
        return grid

    grid = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # shape: recall is monotone non-decreasing in d at fixed k
    for k in K_VALUES:
        recalls = [grid[(k, d)]["recall"] for d in D_VALUES]
        assert recalls == sorted(recalls)
    # shape: looser phonetic prefixes (smaller k) never lose recall at fixed d
    for d in D_VALUES:
        assert grid[(0, d)]["recall"] >= grid[(2, d)]["recall"]
    # the paper's default (k=1, d=3) achieves solid recall
    assert grid[(1, 3)]["recall"] >= 0.6
    # and average bucket size grows as k shrinks (coarser buckets)
    assert grid[(0, 4)]["avg_bucket_size"] >= grid[(2, 4)]["avg_bucket_size"]

    rows = [
        {
            "k": k,
            "d": d,
            "recall": round(values["recall"], 3),
            "avg_bucket_size": round(values["avg_bucket_size"], 2),
        }
        for (k, d), values in sorted(grid.items())
    ]
    record_result(
        "ablation_k_d",
        {
            "description": "Look Up recall / bucket size vs phonetic level k and bound d",
            "num_pairs": NUM_PAIRS,
            "default": {"k": 1, "d": 3},
            "rows": rows,
        },
    )
    print("\nAblation (k, d) — recall / avg bucket size:")
    for row in rows:
        print(
            f"  k={row['k']} d={row['d']}: recall={row['recall']:.2f} "
            f"bucket={row['avg_bucket_size']:.1f}"
        )
