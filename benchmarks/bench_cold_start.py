"""Cold-start benchmark: warm-start snapshot load vs full trie recompilation.

Every process start used to pay Soundex bucketing plus trie compilation for
every sound bucket before the compiled matcher could serve (PR 2/3).  The
warm-start snapshot subsystem (:mod:`repro.storage.snapshot`) persists the
dictionary documents together with the frozen trie structures — each
distinct token sequence serialized once through its level-shared
:class:`~repro.core.matcher.TrieFamily` — so a restart hydrates instead of
recompiling.  This benchmark measures both start paths over a synthetic
dictionary of near-variant tokens (the heavily skewed bucket shape real
sound buckets have):

* **cold** — load the JSONL token dump, then compile the Look Up and
  Normalization tries for every bucket at every materialized phonetic
  level (what a restart had to do before snapshots);
* **warm** — one :meth:`PerturbationDictionary.load_snapshot` call
  (documents + trie families in a single checksummed file).

Every run first asserts the two engines return byte-identical results —
on the golden regression corpus end to end (shared guard with the tier-1
suite) and on a sweep of fresh queries over the benchmark dictionary —
and that level-shared trie families compile strictly fewer tries than
one-per-level on the golden corpus.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_cold_start.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_cold_start.py --smoke    # CI guard

The full run writes ``benchmarks/results/cold_start.json`` and asserts the
acceptance criterion (warm-start load >= 3x faster than recompilation on a
10k-entry dictionary); the smoke run asserts the same floor plus the
equality and family-sharing guards so a regression fails the job.

Since the v2 sharded layout landed, every run also times resolving that
layout both ways — eager full parse vs the ``mmap``'d structure-only open
followers use — and the smoke run holds a >= 3x floor on the mapped open
(cold start as O(page faults), not O(snapshot bytes)).
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import string
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))  # for tests.test_golden_regression

from repro import CrypText
from repro.config import CrypTextConfig
from repro.core.dictionary import PerturbationDictionary
from repro.core.lookup import LookupEngine
from repro.storage import dump_collection, load_collection
from repro.storage.snapshot import resolve_snapshot

RESULTS_PATH = Path(__file__).parent / "results" / "cold_start.json"

#: Long stems make sound buckets dense with near-variants — the skewed
#: shape the paper reports for real sound buckets, and the workload where
#: trie compilation (per character) costs the most relative to snapshot
#: hydration (per shared node).
STEMS = (
    "misinformation", "neighborhood", "perturbation", "demonstration",
    "vaccination", "surveillance", "totalitarian", "encyclopedia",
)
ALPHABET = string.ascii_lowercase + "013457@$-"


def _perturb(word: str, rng: random.Random, max_edits: int = 2) -> str:
    characters = list(word)
    for _ in range(rng.randint(0, max_edits)):
        operation = rng.randint(0, 2)
        position = rng.randrange(len(characters))
        if operation == 0:
            characters[position] = rng.choice(ALPHABET)
        elif operation == 1:
            characters.insert(position, rng.choice(ALPHABET))
        elif len(characters) > 1:
            del characters[position]
    return "".join(characters)


def build_dictionary(size: int, seed: int, config: CrypTextConfig) -> PerturbationDictionary:
    """A dictionary of ``size`` distinct near-variant tokens."""
    rng = random.Random(seed)
    dictionary = PerturbationDictionary(config=config)
    seen: set[str] = set()
    while len(seen) < size:
        token = _perturb(rng.choice(STEMS), rng)
        if token in seen:
            continue
        seen.add(token)
        dictionary.add_token(token, source="bench")
    return dictionary


def _timed(run):
    """Run ``run`` with the GC frozen (allocation-heavy phases otherwise
    trigger full collections over every previously built dictionary)."""
    gc.collect()
    gc.freeze()
    start = time.perf_counter()
    result = run()
    elapsed = time.perf_counter() - start
    gc.unfreeze()
    return elapsed, result


def compile_every_bucket(dictionary: PerturbationDictionary) -> int:
    """The recompilation a snapshot-less restart pays: every bucket, every
    level, both hot-path trie variants (raw Look Up + canonical-English
    Normalization)."""
    compiled = 0
    for level in dictionary.phonetic_levels:
        keys = {
            document["keys"][f"k{level}"] for document in dictionary.collection
        }
        for key in keys:
            bucket = dictionary.compiled_bucket(key, phonetic_level=level)
            bucket.family.trie(False, False, bucket.entries)
            bucket.family.trie(True, True, bucket.entries)
            compiled += 1
    return compiled


def measure(size: int, seed: int, work_dir: Path, queries: int = 300) -> dict:
    """Time cold vs warm start over one dictionary; assert result equality."""
    config = CrypTextConfig(cache_max_entries=65536, cache_enabled=False)
    source = build_dictionary(size, seed, config)
    db_path = work_dir / f"tokens_{size}.jsonl"
    snapshot_path = work_dir / f"snapshot_{size}.json"
    dump_collection(source.collection, db_path)
    save_elapsed, save_report = _timed(lambda: source.save_snapshot(snapshot_path))

    cold = PerturbationDictionary(config=config)
    load_elapsed, _ = _timed(lambda: load_collection(cold.collection, db_path))
    compile_elapsed, buckets = _timed(lambda: compile_every_bucket(cold))

    # Two loads into fresh dictionaries; keep the faster one (first-touch
    # page-cache noise otherwise understates the steady-state warm start).
    warm_times = []
    warm = None
    for _ in range(2):
        candidate = PerturbationDictionary(config=config)
        elapsed, report = _timed(lambda: candidate.load_snapshot(snapshot_path, strict=True))
        assert report.loaded and report.hydrated_tries, report
        warm_times.append(elapsed)
        warm = candidate
    warm_elapsed = min(warm_times)

    rng = random.Random(seed + 1)
    probes = [_perturb(rng.choice(STEMS), rng) for _ in range(queries)]
    cold_engine = LookupEngine(cold, config=config)
    warm_engine = LookupEngine(warm, config=config)
    sweep_cold, cold_results = _timed(lambda: [cold_engine.look_up(q) for q in probes])
    sweep_warm, warm_results = _timed(lambda: [warm_engine.look_up(q) for q in probes])
    assert cold_results == warm_results, (
        f"warm-start engine diverged from cold-compiled engine (size={size})"
    )

    # v2 sharded layout: eager full-parse resolution vs the mmap'd
    # structure-only open followers use (family payloads stay unparsed on
    # disk until a bucket is actually queried).  First open only — the
    # process-wide shard cache makes every later open nearly free.
    v2_path = work_dir / f"snapshot_v2_{size}.json"
    source.save_snapshot(v2_path, shards=4)
    v2_eager_elapsed, _ = _timed(lambda: resolve_snapshot(v2_path, strict=True))
    v2_mapped_elapsed, _ = _timed(
        lambda: resolve_snapshot(v2_path, strict=True, mapped=True)
    )

    cold_total = load_elapsed + compile_elapsed
    return {
        "entries": size,
        "buckets": buckets,
        "families": save_report.families,
        "snapshot_bytes": snapshot_path.stat().st_size,
        "save_seconds": save_elapsed,
        "cold_load_seconds": load_elapsed,
        "cold_compile_seconds": compile_elapsed,
        "cold_total_seconds": cold_total,
        "warm_load_seconds": warm_elapsed,
        "query_sweep_cold_seconds": sweep_cold,
        "query_sweep_warm_seconds": sweep_warm,
        "speedup": cold_total / warm_elapsed,
        "speedup_vs_compile_only": compile_elapsed / warm_elapsed,
        "v2_eager_resolve_seconds": v2_eager_elapsed,
        "v2_mapped_resolve_seconds": v2_mapped_elapsed,
        "mmap_speedup": v2_eager_elapsed / v2_mapped_elapsed,
    }


def check_golden_corpus() -> int:
    """Cold-vs-warm equality on the golden regression corpus.

    Delegates to the tier-1 test helper (one implementation, two guards);
    any observable divergence between a snapshot-hydrated system and a
    freshly compiled one raises.  Returns the comparison count.
    """
    from tests.test_golden_regression import compare_cold_and_warm_systems

    return compare_cold_and_warm_systems(distances=(1, 3))


def check_family_sharing() -> tuple[int, int]:
    """Level-shared families must compile strictly fewer tries than
    one-per-level on the golden corpus; returns (buckets, families)."""
    import tempfile

    from tests.test_golden_regression import GOLDEN_BUILD_CORPUS

    system = CrypText.from_corpus(GOLDEN_BUILD_CORPUS)
    with tempfile.TemporaryDirectory() as tmp:
        report = system.save_snapshot(Path(tmp) / "golden.snapshot.json")
    assert report.families < report.buckets, (
        f"level sharing regressed: {report.families} trie families for "
        f"{report.buckets} bucket views (expected strictly fewer)"
    )
    return report.buckets, report.families


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[1_000, 10_000],
        help="dictionary sizes to sweep",
    )
    parser.add_argument("--queries", type=int, default=300, help="equality-sweep queries")
    parser.add_argument("--seed", type=int, default=20230116)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI guard: golden equality + family sharing + the 10k speedup floor",
    )
    args = parser.parse_args(argv)

    import tempfile

    compared = check_golden_corpus()
    print(f"golden corpus: {compared} cold/warm comparisons ok", file=sys.stderr)
    buckets, families = check_family_sharing()
    print(
        f"golden corpus: {buckets} bucket views share {families} trie families",
        file=sys.stderr,
    )

    # The golden systems above leave cyclic garbage (engines, caches) that
    # would otherwise be traced by every young-gen collection inside the
    # timed phases below.
    gc.collect()

    sizes = [10_000] if args.smoke else list(args.sizes)
    report = {"sizes": {}}
    with tempfile.TemporaryDirectory() as tmp:
        work_dir = Path(tmp)
        for size in sizes:
            row = measure(size, args.seed, work_dir, queries=args.queries)
            report["sizes"][str(size)] = row
            print(
                f"entries {size:6d}: cold {row['cold_total_seconds']:.2f}s "
                f"(load {row['cold_load_seconds']:.2f} + compile "
                f"{row['cold_compile_seconds']:.2f}), warm "
                f"{row['warm_load_seconds']:.2f}s -> {row['speedup']:.1f}x "
                f"({row['buckets']} buckets, {row['families']} families, "
                f"{row['snapshot_bytes'] / 1e6:.1f} MB snapshot)",
                file=sys.stderr,
            )
            print(
                f"entries {size:6d}: v2 resolve eager "
                f"{row['v2_eager_resolve_seconds']:.3f}s, mmap "
                f"{row['v2_mapped_resolve_seconds']:.3f}s -> "
                f"{row['mmap_speedup']:.1f}x",
                file=sys.stderr,
            )
    report["golden_comparisons"] = compared
    report["golden_buckets"] = buckets
    report["golden_families"] = families

    if args.smoke:
        speedup = report["sizes"]["10000"]["speedup"]
        assert speedup >= 3.0, (
            f"warm-start regressed: snapshot load is only {speedup:.2f}x faster "
            f"than recompilation on a 10k-entry dictionary (need >= 3x)"
        )
        print(f"smoke: warm start {speedup:.1f}x faster (>= 3x ok)", file=sys.stderr)
        mmap_speedup = report["sizes"]["10000"]["mmap_speedup"]
        assert mmap_speedup >= 3.0, (
            f"mmap cold start regressed: the v2 mapped open is only "
            f"{mmap_speedup:.2f}x faster than the eager parse on a 10k-entry "
            f"dictionary (need >= 3x)"
        )
        print(f"smoke: v2 mmap open {mmap_speedup:.1f}x faster (>= 3x ok)", file=sys.stderr)
        return 0

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH}", file=sys.stderr)

    if 10_000 in args.sizes:
        speedup = report["sizes"]["10000"]["speedup"]
        assert speedup >= 3.0, (
            f"acceptance criterion failed: warm start is {speedup:.2f}x faster "
            f"than recompilation on a 10k-entry dictionary (need >= 3x)"
        )
        print(f"acceptance: warm start {speedup:.1f}x (>= 3x ok)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
