"""Replicated-read benchmark: follower offload, convergence, staleness.

The replication subsystem (:mod:`repro.replication`) makes three claims
worth guarding:

* **reads offload from the leader** — with N fresh followers behind a
  :class:`ReplicaSet`, almost every read routes to a replica (the leader
  serves reads only as the fallback), so a write-heavy leader stops
  competing with its readers (floor: >= 95% of reads land on followers);
* **replicas answer exactly like the leader** — every routed Look Up and
  normalization must be field-identical to the leader's own answer once
  the followers have caught up;
* **staleness stays bounded under write load** — followers tailing a
  leader that is actively ingesting remain inside the configured
  ``max_staleness_seconds`` and converge to the leader's exact content
  fingerprint when the stream stops.

Routing through the replica set costs one lock + round-robin pick per
read; the benchmark also measures that overhead and asserts replicated
read throughput stays within 2.5x of direct leader reads (CPython threads
serialize CPU-bound lookups regardless of core count, so wall-clock
*scaling* is only reported — the floor is offload + bounded overhead,
which holds on any machine including single-core CI runners).

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_replicated_reads.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_replicated_reads.py --smoke   # CI guard

The full run writes ``benchmarks/results/replicated_reads.json``; both
modes assert the offload floor, answer equality, and the staleness bound,
so a regression fails the job.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from repro.config import CrypTextConfig
from repro.core.pipeline import CrypText
from repro.replication import Follower, ReplicaSet
from repro.storage import SNAPSHOT_FILE_NAME
from repro.wal import ChangeLog, wal_directory_for

from bench_cold_start import STEMS, _perturb, _timed, build_dictionary

RESULTS_PATH = Path(__file__).parent / "results" / "replicated_reads.json"

#: CI floor: fraction of reads that must land on followers.
OFFLOAD_FLOOR = 0.95
#: CI ceiling: routed reads may cost at most this factor over direct reads.
OVERHEAD_CEILING = 2.5
#: Staleness bound the followers must hold under write load (seconds).
STALENESS_BOUND = 2.0


def _build_leader(size: int, seed: int, work_dir: Path) -> CrypText:
    config = CrypTextConfig(cache_enabled=False)
    leader = CrypText.empty(config=config, seed_lexicon=False)
    built = build_dictionary(size, seed, config)
    leader.dictionary.attach_wal(ChangeLog(wal_directory_for(work_dir)))
    leader.dictionary.add_corpus(
        (document["token"] for document in built.collection), source="bench"
    )
    leader.save_snapshot(work_dir / SNAPSHOT_FILE_NAME)
    return leader


def _read_throughput(target, queries, workers: int) -> float:
    """Aggregate look_up calls/second from ``workers`` client threads."""
    def client(chunk):
        for query in chunk:
            target.look_up(query)

    chunks = [queries[index::workers] for index in range(workers)]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        elapsed, _ = _timed(
            lambda: list(pool.map(client, chunks))
        )
    return len(queries) / elapsed


def measure(size: int, followers: int, reads: int, seed: int, work_dir: Path) -> dict:
    rng = random.Random(seed)
    leader = _build_leader(size, seed, work_dir)
    replicas = [
        Follower(
            work_dir,
            config=leader.config,
            name=f"follower-{index}",
        )
        for index in range(followers)
    ]
    for replica in replicas:
        replica.catch_up()
    replica_set = ReplicaSet(leader, replicas, max_staleness_seconds=STALENESS_BOUND)
    # Tail in the background for the whole run so freshness reflects the
    # real deployment (an idle poll round still renews the staleness lease).
    replica_set.start(poll_interval=0.05)

    queries = [_perturb(rng.choice(STEMS), rng) for _ in range(reads)]
    workers = max(2, min(4, os.cpu_count() or 1))

    # Answer equality: the routed answer is the leader's answer.
    for query in queries[:200]:
        routed = replica_set.look_up(query)
        direct = leader.look_up(query)
        assert routed == direct, query

    direct_rps = _read_throughput(leader, queries, workers)
    routed_rps = _read_throughput(replica_set, queries, workers)

    status = replica_set.status()
    routed_total = status["routed_to_followers"] + status["routed_to_leader"]
    offload = status["routed_to_followers"] / routed_total

    # Staleness under write load: followers tail a writing leader.
    stream_words = iter(f"streamword{index}z" for index in range(10_000))
    deadline = time.monotonic() + 2.0
    writes = 0
    max_seen_lag = 0.0
    while time.monotonic() < deadline:
        leader.learn_from([f"the {next(stream_words)} spreads"], source="stream")
        writes += 1
        for replica in replicas:
            lag = replica.lag_seconds()
            if lag is not None:
                max_seen_lag = max(max_seen_lag, lag)
        time.sleep(0.002)
    replica_set.stop()
    for replica in replicas:
        replica.catch_up()
        assert replica.is_fresh(STALENESS_BOUND), replica.stats()
        assert (
            replica.system.dictionary.content_fingerprint()
            == leader.dictionary.content_fingerprint()
        ), replica.name
    replica_set.close()

    return {
        "entries": size,
        "followers": followers,
        "reads": reads,
        "client_threads": workers,
        "cpu_count": os.cpu_count(),
        "direct_reads_per_second": direct_rps,
        "routed_reads_per_second": routed_rps,
        "routing_overhead_factor": direct_rps / routed_rps,
        "offload_fraction": offload,
        "writes_during_tail": writes,
        "max_observed_lag_seconds": max_seen_lag,
        "staleness_bound_seconds": STALENESS_BOUND,
    }


def check_floors(row: dict) -> None:
    assert row["offload_fraction"] >= OFFLOAD_FLOOR, (
        f"only {row['offload_fraction']:.1%} of reads offloaded to followers "
        f"(floor {OFFLOAD_FLOOR:.0%})"
    )
    assert row["routing_overhead_factor"] <= OVERHEAD_CEILING, (
        f"replica routing cost {row['routing_overhead_factor']:.2f}x direct reads "
        f"(ceiling {OVERHEAD_CEILING}x)"
    )
    assert row["max_observed_lag_seconds"] <= STALENESS_BOUND, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--size", type=int, default=10_000, help="leader dictionary entries"
    )
    parser.add_argument(
        "--followers", type=int, nargs="+", default=[2, 4],
        help="follower counts to sweep",
    )
    parser.add_argument("--reads", type=int, default=4_000)
    parser.add_argument("--seed", type=int, default=20230116)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI guard: 2 followers over a small leader, floors asserted",
    )
    args = parser.parse_args(argv)

    import tempfile

    if args.smoke:
        size, counts, reads = 2_000, [2], 800
    else:
        size, counts, reads = args.size, list(args.followers), args.reads

    report: dict = {"followers": {}}
    with tempfile.TemporaryDirectory() as tmp:
        for count in counts:
            work_dir = Path(tmp) / f"replicas_{count}"
            row = measure(size, count, reads, args.seed, work_dir)
            check_floors(row)
            report["followers"][str(count)] = row
            print(
                f"followers {count}: {row['offload_fraction']:.1%} offload, "
                f"direct {row['direct_reads_per_second']:.0f} r/s, "
                f"routed {row['routed_reads_per_second']:.0f} r/s, "
                f"max lag {row['max_observed_lag_seconds']*1000:.0f}ms "
                f"over {row['writes_during_tail']} writes",
                file=sys.stderr,
            )

    if not args.smoke:
        RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
        RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
        print(f"wrote {RESULTS_PATH}", file=sys.stderr)
    print("replicated-read floors hold", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
