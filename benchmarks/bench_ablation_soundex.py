"""Experiment ``ablation_soundex`` — customized vs original SOUNDEX.

Paper §III-A motivates two changes to the classic algorithm: folding
visually-similar characters ("l"->"1", "a"->"@", "S"->"5") and replacing the
fixed-first-letter rule with a ``k+1``-character prefix (so "losbian" and
"lesbian", which the original maps to the same ``L215``, are separated).

The ablation measures both effects on labelled perturbation pairs:

* **perturbation recall** — share of (word, perturbation) pairs that share an
  encoding, for the original algorithm vs the customized one;
* **false merges** — distinct English words collapsed into one bucket, which
  the ``k+1`` prefix reduces.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.soundex import CustomSoundex, OriginalSoundex
from repro.datasets import build_perturbation_pairs
from repro.text.wordlist import default_lexicon

from conftest import record_result

NUM_PAIRS = 200


def test_ablation_soundex_variants(benchmark):
    pairs = build_perturbation_pairs(num_pairs=NUM_PAIRS, seed=31)
    original = OriginalSoundex()
    custom_k0 = CustomSoundex(phonetic_level=0)
    custom_k1 = CustomSoundex(phonetic_level=1)
    lexicon_words = sorted(default_lexicon().words)

    def run_ablation():
        recall = {}
        for name, encoder in (
            ("original_soundex", original),
            ("custom_k0", custom_k0),
            ("custom_k1", custom_k1),
        ):
            matched = 0
            for word, perturbed, _strategy in pairs:
                try:
                    left = encoder.encode(word)
                except Exception:  # noqa: BLE001 - original soundex rejects symbol-only tokens
                    continue
                right = (
                    encoder.encode_or_none(perturbed)
                    if hasattr(encoder, "encode_or_none")
                    else _safe_encode(encoder, perturbed)
                )
                if right is not None and left == right:
                    matched += 1
            recall[name] = matched / len(pairs)

        merges = {}
        for name, encoder in (
            ("original_soundex", original),
            ("custom_k1", custom_k1),
        ):
            buckets: dict[str, set[str]] = defaultdict(set)
            for word in lexicon_words:
                code = _safe_encode(encoder, word)
                if code is not None:
                    buckets[code].add(word)
            merges[name] = {
                "buckets": len(buckets),
                "words_in_shared_buckets": sum(
                    len(words) for words in buckets.values() if len(words) > 1
                ),
                "largest_bucket": max(len(words) for words in buckets.values()),
            }
        return recall, merges

    recall, merges = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    # shape: the customized encoding recognizes more human perturbations than
    # the classic algorithm (visual folding is the main win)
    assert recall["custom_k1"] >= recall["original_soundex"]
    assert recall["custom_k0"] >= recall["original_soundex"]
    # the paper's "losbian"/"lesbian" separation
    assert OriginalSoundex().encode("losbian") == OriginalSoundex().encode("lesbian")
    assert CustomSoundex(phonetic_level=1).encode("losbian") != CustomSoundex(
        phonetic_level=1
    ).encode("lesbian")
    # the k+1 prefix yields finer buckets over the English lexicon
    assert merges["custom_k1"]["buckets"] >= merges["original_soundex"]["buckets"]

    record_result(
        "ablation_soundex",
        {
            "description": "Customized vs original Soundex on perturbation pairs and lexicon buckets",
            "perturbation_recall": {name: round(value, 3) for name, value in recall.items()},
            "lexicon_buckets": merges,
            "losbian_lesbian": {
                "original": OriginalSoundex().encode("lesbian"),
                "custom_losbian": CustomSoundex(phonetic_level=1).encode("losbian"),
                "custom_lesbian": CustomSoundex(phonetic_level=1).encode("lesbian"),
            },
        },
    )
    print("\nAblation Soundex — perturbation-pair recall:")
    for name, value in recall.items():
        print(f"  {name:<18} {value:.2f}")
    print(f"  lexicon buckets: original={merges['original_soundex']['buckets']} "
          f"custom_k1={merges['custom_k1']['buckets']}")


def _safe_encode(encoder, token):
    try:
        return encoder.encode(token)
    except Exception:  # noqa: BLE001 - tokens without phonetic content
        return None
