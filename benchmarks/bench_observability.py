"""Observability overhead benchmark: the disarmed metrics hot path.

The metrics registry (:mod:`repro.obs.registry`) is compiled into the
lookup/normalize pipeline, the batch engine, the WAL append/fsync path,
the replication tailer, and both service fronts.  Its contract mirrors
the fault-injection registry's: **zero cost disarmed** — every call site
guards with ``if OBS.armed:``, one attribute read and a falsy branch —
and **bounded cost armed** — a span is one ``perf_counter`` pair plus a
histogram observe under a leaf lock.

This benchmark holds both halves of that contract to a number:

* **per-guard cost** — microbenchmark the disarmed guard against an
  empty loop of the same shape, isolating the marginal nanoseconds per
  instrumented call site;
* **per-span cost** — microbenchmark an armed span end to end (enter,
  clock twice, histogram observe on exit);
* **real workloads** — journaled ingest (one ``wal.append`` guard per
  append plus one per fsync) and service lookups (pipeline + request
  guards per call), timed end to end while counting how many guards and
  spans executed;
* **the floor** — disarmed, ``guards x per_guard_cost`` must be at most
  5% of each workload's elapsed time; armed, ``spans x per_span_cost``
  must also stay within 5% — spans sit around operations that do real
  work, so timing them must stay marginal;
* **sanity** — an armed run actually records (the stage histograms hold
  exactly the spans the workload counted), so the disarmed numbers are
  measuring real machinery, not dead code.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_observability.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_observability.py --smoke    # CI guard

The full run writes ``benchmarks/results/observability.json``; both
modes assert the overhead floors, so a regression that puts work on the
disarmed path (a dict lookup, a lock, a trace check) fails the job.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from repro.api import CrypTextService, RateLimiter
from repro.config import CrypTextConfig
from repro.core.pipeline import CrypText
from repro.obs.registry import OBS, STAGE_SECONDS
from repro.wal import ChangeLog, wal_directory_for

RESULTS_PATH = Path(__file__).parent / "results" / "observability.json"

#: A workload's guard/span traffic may cost at most this fraction of its
#: runtime.
OVERHEAD_CEILING = 0.05

STEMS = (
    "vaccine", "republicans", "democrats", "depression", "neighborhood",
    "mandate", "moderators", "amazon", "listening", "perturbation",
)


#: Microbenchmark repeats; the best run is the cost (scheduler spikes on a
#: shared CI box only ever inflate a measurement, never deflate it).
_MICRO_REPEATS = 3


def _guard_cost_seconds(iterations: int) -> float:
    """Marginal cost of one disarmed ``if OBS.armed:`` guard."""
    assert not OBS.armed, "the guard must be measured disarmed"
    registry = OBS
    best = float("inf")
    for _ in range(_MICRO_REPEATS):
        start = time.perf_counter()
        for _ in range(iterations):
            if registry.armed:
                with registry.span("bench"):
                    pass
        guarded = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(iterations):
            pass
        empty = time.perf_counter() - start
        best = min(best, (guarded - empty) / iterations)
    return max(best, 1e-10)


def _span_cost_seconds(iterations: int) -> float:
    """End-to-end cost of one armed span (clock pair + histogram observe)."""
    best = float("inf")
    with OBS.scoped():
        for repeat in range(_MICRO_REPEATS):
            start = time.perf_counter()
            for _ in range(iterations):
                with OBS.span("bench.span"):
                    pass
            best = min(best, (time.perf_counter() - start) / iterations)
        recorded = OBS.histogram(STAGE_SECONDS, (("stage", "bench.span"),)).count
    assert recorded == _MICRO_REPEATS * iterations, "every armed span must record"
    OBS.reset()
    return max(best, 1e-10)


def _build_corpus(rounds: int) -> list[str]:
    return [
        f"the {STEMS[i % len(STEMS)]} and the {STEMS[(i + 3) % len(STEMS)]} online"
        for i in range(rounds)
    ]


def _ingest_workload(work_dir: Path, rounds: int) -> dict[str, object]:
    """Journaled ingest: ``wal.append`` + ``wal.fsync`` guards per append."""
    config = CrypTextConfig(cache_enabled=False)
    leader = CrypText.empty(config=config, seed_lexicon=False)
    leader.dictionary.attach_wal(ChangeLog(wal_directory_for(work_dir)))
    texts = _build_corpus(rounds)
    start = time.perf_counter()
    for text in texts:
        leader.learn_from([text], source="bench")
    elapsed = time.perf_counter() - start
    appends = leader.dictionary.wal.last_seq
    assert appends >= rounds, "every round must journal at least one record"
    # Each append crosses the wal.append guard and at least the batched
    # fsync guard; count both to bound the ratio from above.
    return {"leader": leader, "elapsed": elapsed, "guards": 2 * appends}


def _lookup_workload(system: CrypText, rounds: int) -> dict[str, object]:
    """Service lookups: request guard + pipeline span guard per call."""
    service = CrypTextService(
        system, rate_limiter=RateLimiter(max_requests=10 * rounds, window_seconds=60)
    )
    token = service.issue_token("bench").token
    start = time.perf_counter()
    for index in range(rounds):
        # The leader is built with cache_enabled=False, so every call does
        # real matching work — the honest denominator for the ratio.
        response = service.lookup(token, [STEMS[index % len(STEMS)]])
        assert response.status == 200, response.body
    elapsed = time.perf_counter() - start
    # Guards crossed per call: the @_traced request wrapper plus the
    # pipeline look_up span site.
    return {"elapsed": elapsed, "guards": 2 * rounds}


def _armed_lookup_workload(system: CrypText, rounds: int) -> dict[str, object]:
    """The same lookups armed: spans must record and stay marginal."""
    service = CrypTextService(
        system, rate_limiter=RateLimiter(max_requests=10 * rounds, window_seconds=60)
    )
    token = service.issue_token("bench-armed").token
    with OBS.scoped():
        start = time.perf_counter()
        for index in range(rounds):
            response = service.lookup(token, [STEMS[index % len(STEMS)]])
            assert response.status == 200, response.body
        elapsed = time.perf_counter() - start
        lookup_spans = OBS.histogram(STAGE_SECONDS, (("stage", "lookup"),)).count
        requests = sum(
            value
            for (name, labels), value in OBS._counters.items()
            if name == "cryptext_requests_total"
        )
    OBS.reset()
    assert lookup_spans == rounds, (
        f"armed run must record one lookup span per call "
        f"(got {lookup_spans} for {rounds} calls)"
    )
    assert requests == rounds, "armed run must trace every request exactly once"
    return {"elapsed": elapsed, "spans": 2 * rounds}


def _check(
    name: str, elapsed: float, events: int, per_event: float, kind: str
) -> dict[str, object]:
    overhead = events * per_event
    ratio = overhead / elapsed if elapsed > 0 else 0.0
    assert ratio <= OVERHEAD_CEILING, (
        f"{name}: {kind} traffic costs {ratio:.2%} of the workload "
        f"({events} x {per_event * 1e9:.1f}ns over {elapsed * 1e3:.1f}ms); "
        f"the ceiling is {OVERHEAD_CEILING:.0%} — something put real work on "
        f"the {kind} path"
    )
    return {
        "elapsed_seconds": elapsed,
        f"{kind}s_executed": events,
        f"{kind}_overhead_seconds": overhead,
        "overhead_ratio": ratio,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI; asserts the overhead ceilings, writes nothing",
    )
    args = parser.parse_args(argv)

    ingest_rounds = 60 if args.smoke else 400
    lookup_rounds = 80 if args.smoke else 600
    micro_iterations = 200_000 if args.smoke else 2_000_000

    OBS.reset()
    per_guard = _guard_cost_seconds(micro_iterations)
    per_span = _span_cost_seconds(micro_iterations // 10)
    print(
        f"disarmed guard: {per_guard * 1e9:.1f}ns, "
        f"armed span: {per_span * 1e9:.1f}ns per call site",
        file=sys.stderr,
    )

    report: dict[str, object] = {
        "per_guard_seconds": per_guard,
        "per_span_seconds": per_span,
    }
    with tempfile.TemporaryDirectory(prefix="bench-observability-") as scratch:
        work_dir = Path(scratch)
        ingest = _ingest_workload(work_dir, ingest_rounds)
        leader = ingest.pop("leader")
        report["ingest_disarmed"] = _check(
            "journaled ingest", ingest["elapsed"], ingest["guards"], per_guard, "guard"
        )
        lookup = _lookup_workload(leader, lookup_rounds)
        report["lookup_disarmed"] = _check(
            "service lookups", lookup["elapsed"], lookup["guards"], per_guard, "guard"
        )
        armed = _armed_lookup_workload(leader, lookup_rounds)
        report["lookup_armed"] = _check(
            "armed service lookups", armed["elapsed"], armed["spans"], per_span, "span"
        )

    for name in ("ingest_disarmed", "lookup_disarmed", "lookup_armed"):
        entry = report[name]
        events = entry.get("guards_executed", entry.get("spans_executed"))
        print(
            f"{name}: {events} instrumented sites over "
            f"{entry['elapsed_seconds'] * 1e3:.1f}ms -> "
            f"{entry['overhead_ratio']:.4%} overhead",
            file=sys.stderr,
        )

    if args.smoke:
        print(
            "smoke ok: observability overhead within the 5% ceiling "
            "disarmed and armed",
            file=sys.stderr,
        )
        return 0

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
