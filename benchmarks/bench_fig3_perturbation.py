"""Experiment ``fig3`` — Figure 3: perturbing a tweet at a chosen ratio.

Figure 3 of the paper shows CrypText perturbing a tweet with the manipulated
tokens highlighted, at a user-selected manipulation ratio (the demo offers
15%, 25%, 50%).  This benchmark perturbs a batch of clean posts at each of
the showcase ratios, measures throughput, and records achieved ratios and
example outputs — every replacement being an observed human-written token.
"""

from __future__ import annotations

from conftest import PAPER_RATIOS, record_result

EXAMPLE_TWEET = (
    "the democrats and republicans keep fighting about the vaccine mandate "
    "while people lose their jobs"
)


def test_fig3_perturbation(benchmark, cryptext_system, synthetic_posts):
    clean_texts = [post.clean_text for post in synthetic_posts[:80]]
    ratios = [ratio for ratio in PAPER_RATIOS if ratio > 0]

    def perturb_all():
        return {
            ratio: cryptext_system.perturber.perturb_many(clean_texts, ratio=ratio)
            for ratio in ratios
        }

    outcomes_by_ratio = benchmark(perturb_all)

    summary = {}
    for ratio, outcomes in outcomes_by_ratio.items():
        replaced = sum(len(outcome.replacements) for outcome in outcomes)
        requested = sum(outcome.requested_replacements for outcome in outcomes)
        observed = all(
            replacement.perturbed in cryptext_system.dictionary
            for outcome in outcomes
            for replacement in outcome.replacements
        )
        assert observed, "every replacement must be an observed human-written token"
        summary[str(ratio)] = {
            "requested_replacements": requested,
            "performed_replacements": replaced,
            "fill_rate": replaced / requested if requested else 0.0,
        }

    # higher ratios must lead to strictly more manipulation overall
    performed = [summary[str(ratio)]["performed_replacements"] for ratio in ratios]
    assert performed == sorted(performed)

    # For the showcase tweet, fill the requested budget so every ratio shows
    # visible highlights (the GUI of Figure 3 does the same when the randomly
    # sampled tokens happen to have no observed perturbation).
    example = {
        str(ratio): cryptext_system.perturber.perturb(
            EXAMPLE_TWEET, ratio=ratio, fill_target=True
        ).to_dict()
        for ratio in ratios
    }
    record_result(
        "fig3",
        {
            "description": "Perturbation of clean posts at the paper's showcase ratios",
            "ratios": summary,
            "example_tweet": example,
        },
    )
    print("\nFigure 3 — perturbation at showcase ratios:")
    for ratio in ratios:
        print(
            f"  r={ratio:<5} requested={summary[str(ratio)]['requested_replacements']:>4} "
            f"performed={summary[str(ratio)]['performed_replacements']:>4}"
        )
        print(f"    example: {example[str(ratio)]['perturbed_text']}")
