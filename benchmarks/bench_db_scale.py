"""Experiment ``db_stats`` — §I headline: dictionary scale and continual growth.

The paper's headline figures: "a dictionary of over 2M human-written tokens
that are categorized into over 400K unique phonetic sounds", continually
enriched by a Twitter stream crawler.  The scaled-down equivalent here runs
the crawler over the simulated platform and tracks how the dictionary grows
round by round: raw-token count, unique phonetic-sound count, and their
ratio (the paper's is roughly 5 tokens per sound).
"""

from __future__ import annotations

from repro.core.dictionary import PerturbationDictionary
from repro.social import StreamCrawler

from conftest import record_result


def test_db_scale_growth(benchmark, twitter_platform):
    def crawl_everything():
        dictionary = PerturbationDictionary()
        dictionary.seed_lexicon()
        crawler = StreamCrawler(twitter_platform, dictionary, batch_size=250)
        reports = crawler.crawl_all()
        return dictionary, reports

    dictionary, reports = benchmark.pedantic(crawl_everything, rounds=1, iterations=1)

    stats = dictionary.stats()
    level = dictionary.config.phonetic_level
    tokens_per_sound = stats.tokens_per_key[level]

    # shape: the dictionary grows every round, and raw tokens always
    # outnumber distinct phonetic sounds (paper: 2M tokens vs 400K sounds)
    sizes = [report.dictionary_size for report in reports]
    assert sizes == sorted(sizes)
    assert all(report.new_tokens >= 0 for report in reports)
    assert stats.total_tokens > stats.unique_keys[level]
    assert tokens_per_sound > 1.0
    assert stats.perturbation_tokens > 0

    growth_rows = [report.to_dict() for report in reports]
    record_result(
        "db_stats",
        {
            "description": "Dictionary growth under the stream crawler (scaled down)",
            "final_total_tokens": stats.total_tokens,
            "final_unique_sounds": stats.unique_keys[level],
            "tokens_per_sound": tokens_per_sound,
            "paper_total_tokens": 2_000_000,
            "paper_unique_sounds": 400_000,
            "paper_tokens_per_sound": 5.0,
            "lexicon_tokens": stats.lexicon_tokens,
            "perturbation_tokens": stats.perturbation_tokens,
            "growth_per_round": growth_rows,
        },
    )
    print("\nDictionary scale (scaled-down reproduction of the 2M/400K headline):")
    print(f"  total tokens        : {stats.total_tokens}")
    print(f"  unique sounds (k=1) : {stats.unique_keys[level]}")
    print(f"  tokens per sound    : {tokens_per_sound:.2f}  (paper ~5.0)")
    for report in reports:
        print(
            f"  round {report.round_index}: +{report.new_tokens} tokens "
            f"(total {report.dictionary_size})"
        )
