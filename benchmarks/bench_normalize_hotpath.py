"""Normalization hot-path benchmark: compiled candidate retrieval vs linear.

Normalization retrieves, for every out-of-vocabulary token, the English
words sharing its Soundex bucket within edit distance ``d`` (paper §III-C).
This benchmark measures single-token candidate-retrieval throughput
(tokens/sec) of the two strategies over synthetic sound buckets of
100 / 1 000 / 10 000 entries at d ∈ {1, 2, 3}, under both distance
policies:

* **linear** — one banded DP (``bounded_levenshtein`` or ``bounded_osa``)
  per English entry of the bucket (the ``compiled_buckets=False`` path);
* **compiled** — one trie traversal per token over the
  :class:`~repro.core.matcher.CompiledBucket` (shared DP rows across common
  prefixes, dead-state pruning, length pre-partition), filtered to English
  words afterwards.

Both strategies run through the *real* ``Normalizer._retrieve_candidates``
code path — only the bucket source is stubbed — so encoding, matching,
dedup and ranking are all timed exactly as production runs them.  Every
timed configuration first asserts the two strategies return identical
candidate lists, and both modes replay a small corpus end to end asserting
sequential ``Normalizer``, ``BatchEngine.normalize_batch`` and the
linear-scan fallback produce byte-identical results (including the
"teh" -> "the" transposition recovery at ``d = 1``).

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_normalize_hotpath.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_normalize_hotpath.py --smoke    # CI guard

The full run writes ``benchmarks/results/normalize_hotpath.json`` and
asserts the acceptance criterion (compiled >= 2x linear on 10k-entry
buckets under both policies); the smoke run asserts the end-to-end
equalities plus a conservative speedup bound so divergence or a hot-path
regression fails the job.
"""

from __future__ import annotations

import argparse
import json
import random
import string
import sys
import time
from pathlib import Path

from repro import CrypText, CrypTextConfig
from repro.core.dictionary import DictionaryEntry, PerturbationDictionary
from repro.core.matcher import CompiledBucket
from repro.core.normalizer import Normalizer

RESULTS_PATH = Path(__file__).parent / "results" / "normalize_hotpath.json"

STEMS = (
    "vaccine", "republicans", "democrats", "depression", "neighborhood",
    "mandate", "suicide", "amazon", "listening", "perturbation",
)
ALPHABET = string.ascii_lowercase + "013457@$-"

END_TO_END_CORPUS = [
    "the dirrty republicans",
    "thee dirty repubLIEcans",
    "the democrats support the vaccine mandate",
    "the demokrats hate the vacc1ne",
    "stop the vac-cine mandate now",
    "i ordered from amazon yesterday",
    "the amaz0n package never arrived",
]
END_TO_END_TEXTS = [
    "the demokrats hate the vacc1ne",
    "stop the vac-cine mandate",
    "my amaz0n order is late",
    "the republic@@ns argue online",
    "clean text stays clean",
]


def _perturb(word: str, rng: random.Random, max_edits: int = 3) -> str:
    characters = list(word)
    for _ in range(rng.randint(0, max_edits)):
        operation = rng.randint(0, 3)
        position = rng.randrange(len(characters))
        if operation == 0:
            characters[position] = rng.choice(ALPHABET)
        elif operation == 1:
            characters.insert(position, rng.choice(ALPHABET))
        elif operation == 2 and position + 1 < len(characters):
            # Adjacent swap — the perturbation class the OSA policy scores
            # differently, so both policies see representative inputs.
            characters[position], characters[position + 1] = (
                characters[position + 1], characters[position],
            )
        elif len(characters) > 1:
            del characters[position]
    return "".join(characters)


def build_bucket(size: int, rng: random.Random) -> list[DictionaryEntry]:
    """A synthetic sound bucket: ``size`` distinct near-variants of the stems.

    Alternate entries are flagged as English words — Normalization only
    targets lexicon words, so the linear scan pays for half the bucket while
    the compiled traversal matches all of it and filters afterwards (the
    real trade the two paths make).
    """
    tokens: dict[str, None] = {}
    while len(tokens) < size:
        tokens[_perturb(rng.choice(STEMS), rng)] = None
    return [
        DictionaryEntry(
            token=token,
            canonical=token,
            keys={},
            count=1 + (index % 7),
            is_word=index % 2 == 0,
            sources=(),
        )
        for index, token in enumerate(tokens)
    ]


def build_queries(num: int, rng: random.Random) -> list[str]:
    """Half exact stems, half fresh perturbations (hits, misses, near-misses)."""
    queries = [rng.choice(STEMS) for _ in range(num // 2)]
    queries += [_perturb(rng.choice(STEMS), rng) for _ in range(num - len(queries))]
    return queries


class _FixedBucketNormalizer(Normalizer):
    """A ``Normalizer`` whose candidate retrieval is served from one bucket.

    Only the two bucket-source seams are overridden; encoding, distance
    policy dispatch, matching, dedup and ranking run the production code in
    ``_retrieve_candidates`` unchanged.
    """

    def __init__(self, config: CrypTextConfig, entries: list[DictionaryEntry]) -> None:
        super().__init__(PerturbationDictionary(config=config), config=config)
        self._bench_entries = entries
        self._bench_english = [entry for entry in entries if entry.is_word]
        self._bench_compiled = CompiledBucket(entries)

    def _candidate_entries(self, soundex_key: str):
        return self._bench_english

    def _compiled_candidate_bucket(self, soundex_key: str) -> CompiledBucket:
        return self._bench_compiled


def time_strategy(run, queries: list[str], repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        for query in queries:
            run(query)
    elapsed = time.perf_counter() - start
    return (repetitions * len(queries)) / elapsed


def run_benchmark(
    bucket_sizes: tuple[int, ...],
    distances: tuple[int, ...],
    num_queries: int,
    repetitions: int,
    seed: int,
) -> dict:
    rng = random.Random(seed)
    report: dict = {
        "num_queries": num_queries,
        "repetitions": repetitions,
        "buckets": {},
    }
    for size in bucket_sizes:
        entries = build_bucket(size, rng)
        queries = [query.lower() for query in build_queries(num_queries, rng)]
        report["buckets"][str(size)] = {}
        for transpositions in (False, True):
            policy = "osa" if transpositions else "levenshtein"
            for bound in distances:
                config = CrypTextConfig(
                    edit_distance=bound,
                    use_transpositions=transpositions,
                    cache_enabled=False,
                )
                compiled = _FixedBucketNormalizer(
                    config.with_overrides(compiled_buckets=True), entries
                )
                linear = _FixedBucketNormalizer(
                    config.with_overrides(compiled_buckets=False), entries
                )
                for query in queries:
                    fast = compiled._retrieve_candidates(query)
                    slow = linear._retrieve_candidates(query)
                    assert fast == slow, (
                        f"compiled retrieval diverged from the linear scan "
                        f"(bucket={size}, d={bound}, policy={policy}, "
                        f"query={query!r})"
                    )
                linear_qps = time_strategy(
                    linear._retrieve_candidates, queries, repetitions
                )
                compiled_qps = time_strategy(
                    compiled._retrieve_candidates, queries, repetitions
                )
                speedup = compiled_qps / linear_qps
                report["buckets"][str(size)][f"{policy}.d{bound}"] = {
                    "linear_qps": linear_qps,
                    "compiled_qps": compiled_qps,
                    "speedup": speedup,
                }
                print(
                    f"bucket {size:6d}  {policy:>11s} d={bound}: "
                    f"linear {linear_qps:9.0f} tok/s, "
                    f"compiled {compiled_qps:9.0f} tok/s ({speedup:.1f}x)",
                    file=sys.stderr,
                )
    return report


def check_end_to_end() -> int:
    """Sequential, batch, and linear-scan Normalization must agree exactly.

    Replays a small corpus under both distance policies and both values of
    the compiled flag, asserting ``Normalizer.normalize``,
    ``BatchEngine.normalize_batch`` and the ``compiled_buckets=False``
    fallback return byte-identical results — plus the transposition
    regression: at ``k = 0, d = 1`` the OSA policy recovers "teh" -> "the"
    on every path and the plain policy leaves it alone.  Returns the number
    of document comparisons performed.
    """
    compared = 0
    for transpositions in (False, True):
        config = CrypTextConfig(
            phonetic_level=0,
            edit_distance=1,
            use_transpositions=transpositions,
            cache_enabled=False,
        )
        compiled = CrypText.from_corpus(
            END_TO_END_CORPUS, config=config, train_scorer=False
        )
        linear = CrypText.from_corpus(
            END_TO_END_CORPUS,
            config=config.with_overrides(compiled_buckets=False),
            train_scorer=False,
        )
        texts = END_TO_END_TEXTS + ["teh vaccine works"]
        sequential = [compiled.normalize(text) for text in texts]
        batched = compiled.batch.normalize_batch(texts)
        fallback = [linear.normalize(text) for text in texts]
        assert batched == sequential, (
            f"batch normalization diverged from sequential "
            f"(use_transpositions={transpositions})"
        )
        assert fallback == sequential, (
            f"linear-scan normalization diverged from compiled "
            f"(use_transpositions={transpositions})"
        )
        swap = sequential[-1].normalized_text
        if transpositions:
            assert swap == "the vaccine works", (
                f"OSA policy failed to recover the transposition: {swap!r}"
            )
        else:
            assert swap == "teh vaccine works", (
                f"plain policy unexpectedly rewrote the swap: {swap!r}"
            )
        compared += len(texts) * 3
    return compared


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[100, 1_000, 10_000],
        help="bucket sizes to sweep",
    )
    parser.add_argument(
        "--distances", type=int, nargs="+", default=[1, 2, 3],
        help="edit-distance bounds to sweep",
    )
    parser.add_argument("--queries", type=int, default=200, help="tokens per config")
    parser.add_argument("--reps", type=int, default=3, help="timing repetitions")
    parser.add_argument("--seed", type=int, default=20230116)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run: end-to-end equalities + a conservative speedup bound",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        compared = check_end_to_end()
        print(
            f"end to end: {compared} sequential/batch/linear comparisons ok",
            file=sys.stderr,
        )
        report = run_benchmark(
            bucket_sizes=(1_000,), distances=(3,), num_queries=60,
            repetitions=1, seed=args.seed,
        )
        for policy in ("levenshtein", "osa"):
            speedup = report["buckets"]["1000"][f"{policy}.d3"]["speedup"]
            assert speedup >= 1.3, (
                f"compiled normalize hot path regressed: only {speedup:.2f}x over "
                f"the linear scan on 1k-entry buckets at d=3 ({policy})"
            )
            print(
                f"smoke: compiled/linear ({policy}) = {speedup:.1f}x (>= 1.3x ok)",
                file=sys.stderr,
            )
        return 0

    report = run_benchmark(
        bucket_sizes=tuple(args.sizes),
        distances=tuple(args.distances),
        num_queries=args.queries,
        repetitions=args.reps,
        seed=args.seed,
    )
    report["end_to_end_comparisons"] = check_end_to_end()
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH}", file=sys.stderr)

    if 10_000 in args.sizes and 3 in args.distances:
        for policy in ("levenshtein", "osa"):
            speedup = report["buckets"]["10000"][f"{policy}.d3"]["speedup"]
            assert speedup >= 2.0, (
                f"acceptance criterion failed: compiled candidate retrieval on "
                f"10k-entry buckets at d=3 ({policy}) is {speedup:.2f}x the "
                f"linear scan (need >= 2x)"
            )
            print(
                f"acceptance: compiled/linear at 10k, d=3 ({policy}) = "
                f"{speedup:.1f}x (>= 2x ok)",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
