"""Experiment ``baseline_compare`` — human-written vs machine-generated perturbations.

Paper §II-B/§II-C argue that machine-generated attacks (TextBugger, VIPER,
DeepWordBug) and human-written perturbations are *different*, and §III-D
positions CrypText as the realistic robustness probe because its replacements
are guaranteed to be observable in the wild.

This benchmark quantifies both claims on the simulated setup:

* **observability** — the share of each generator's replacement tokens that
  exist in the human-written dictionary (CrypText: 100% by construction; the
  machine baselines: small);
* **strategy coverage** — which perturbation-taxonomy categories each
  generator produces (machine baselines miss the distinctly human ones such
  as emphasis capitalization and separator insertion);
* **robustness impact** — toxicity-API accuracy under each generator at the
  paper's 25% ratio.
"""

from __future__ import annotations

from repro.adversarial import DeepWordBug, TextBugger, Viper
from repro.classifiers import RobustnessEvaluator, SimulatedToxicityAPI
from repro.core.categories import (
    HUMAN_DISTINCTIVE_CATEGORIES,
    categorize_perturbation,
)
from repro.datasets import build_robustness_dataset

from conftest import record_result

RATIO = 0.25
NUM_EVAL_TEXTS = 120


def test_baseline_comparison(benchmark, cryptext_system, synthetic_posts):
    clean_texts = [post.clean_text for post in synthetic_posts[:150]]
    generators = {
        "textbugger": TextBugger(seed=7),
        "viper": Viper(seed=7),
        "deepwordbug": DeepWordBug(seed=7),
    }

    def measure_observability_and_coverage():
        report = {}
        # CrypText itself
        cryptext_records = []
        for text in clean_texts:
            outcome = cryptext_system.perturb(text, ratio=RATIO)
            cryptext_records.extend(
                (replacement.original, replacement.perturbed)
                for replacement in outcome.replacements
            )
        report["cryptext"] = _summarize(cryptext_records, cryptext_system)
        # machine baselines
        for name, generator in generators.items():
            records = []
            for text in clean_texts:
                _perturbed, recs = generator.perturb_with_records(text, ratio=RATIO)
                records.extend((record.original, record.perturbed) for record in recs)
            report[name] = _summarize(records, cryptext_system)
        return report

    report = benchmark.pedantic(
        measure_observability_and_coverage, rounds=1, iterations=1
    )

    # shape: CrypText replacements are always observed human-written tokens,
    # machine baselines rarely produce observed tokens
    assert report["cryptext"]["observed_share"] == 1.0
    for name in generators:
        assert report[name]["observed_share"] < report["cryptext"]["observed_share"]
    # shape: only CrypText covers the distinctly human strategies
    assert report["cryptext"]["human_distinctive_share"] > 0.2
    assert report["viper"]["human_distinctive_share"] <= 0.05

    # robustness impact at the paper's 25% ratio
    texts, labels = build_robustness_dataset("toxicity", num_samples=400 + NUM_EVAL_TEXTS, seed=201)
    api = SimulatedToxicityAPI().train(texts[:400], labels[:400])
    eval_texts, eval_labels = texts[400:], labels[400:]
    impact = {}
    perturb_functions = {
        "cryptext": lambda text, ratio: cryptext_system.perturb(text, ratio=ratio).perturbed_text,
        **{
            name: (lambda generator: lambda text, ratio: generator.perturb(text, ratio=ratio))(
                generator
            )
            for name, generator in generators.items()
        },
    }
    for name, perturb in perturb_functions.items():
        evaluator = RobustnessEvaluator(perturb, ratios=(0.0, RATIO), repeats=2)
        points = {p.ratio: p.accuracy for p in evaluator.evaluate(api, eval_texts, eval_labels)}
        impact[name] = {
            "clean_accuracy": round(points[0.0], 3),
            "perturbed_accuracy": round(points[RATIO], 3),
            "accuracy_drop": round(points[0.0] - points[RATIO], 3),
        }
    # every generator (human or machine) hurts the clean-trained model
    assert all(entry["accuracy_drop"] >= -0.02 for entry in impact.values())
    # CrypText's human-written perturbations cause a real drop
    assert impact["cryptext"]["accuracy_drop"] >= 0.02

    record_result(
        "baseline_compare",
        {
            "description": "CrypText vs machine-generated baselines at a 25% ratio",
            "observability_and_coverage": report,
            "toxicity_api_impact": impact,
        },
    )
    print("\nBaseline comparison (ratio 25%):")
    for name, summary in report.items():
        print(
            f"  {name:<12} observed-in-wild={summary['observed_share']:.2f} "
            f"human-distinctive={summary['human_distinctive_share']:.2f} "
            f"replacements={summary['num_replacements']}"
        )
    for name, entry in impact.items():
        print(
            f"  {name:<12} toxicity accuracy {entry['clean_accuracy']:.3f} -> "
            f"{entry['perturbed_accuracy']:.3f}"
        )


def _summarize(records, cryptext_system):
    if not records:
        return {
            "num_replacements": 0,
            "observed_share": 0.0,
            "human_distinctive_share": 0.0,
            "category_counts": {},
        }
    observed = sum(1 for _original, perturbed in records if perturbed in cryptext_system.dictionary)
    categories = {}
    human_distinctive = 0
    for original, perturbed in records:
        category = categorize_perturbation(original, perturbed)
        categories[category.value] = categories.get(category.value, 0) + 1
        if category in HUMAN_DISTINCTIVE_CATEGORIES:
            human_distinctive += 1
    return {
        "num_replacements": len(records),
        "observed_share": observed / len(records),
        "human_distinctive_share": human_distinctive / len(records),
        "category_counts": categories,
    }
