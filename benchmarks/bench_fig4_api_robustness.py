"""Experiment ``fig4`` — Figure 4: accuracy of NLP APIs on CrypText-perturbed text.

Figure 4 of the paper reports the accuracy of three Google NLP services
(Perspective toxicity, sentiment analysis, text categorization) on inputs
perturbed by CrypText at increasing manipulation ratios; all three degrade,
with Perspective losing almost 10 points at a 25% ratio.

The simulated APIs (clean-trained from-scratch classifiers, see DESIGN.md §3)
replace the unreachable cloud services.  The benchmark trains each API on a
clean train split, evaluates on a held-out split perturbed at the paper's
ratios, asserts the degradation *shape* (monotone non-increasing accuracy,
a real drop by r=0.5), and records the accuracy series plus the ML-benchmark
page export.
"""

from __future__ import annotations

import random

from repro.classifiers import (
    RobustnessEvaluator,
    SimulatedCategoryAPI,
    SimulatedSentimentAPI,
    SimulatedToxicityAPI,
)
from repro.core.perturber import Perturber
from repro.datasets import build_robustness_dataset
from repro.viz import build_benchmark_page

from conftest import PAPER_RATIOS, record_result

TRAIN_SIZE = 400
TEST_SIZE = 120


def _train_api(api, kind: str, seed: int):
    texts, labels = build_robustness_dataset(
        kind, num_samples=TRAIN_SIZE + TEST_SIZE, seed=seed
    )
    api.train(texts[:TRAIN_SIZE], labels[:TRAIN_SIZE])
    return api, texts[TRAIN_SIZE:], labels[TRAIN_SIZE:]


def test_fig4_api_robustness(benchmark, cryptext_system):
    toxicity_api, toxicity_texts, toxicity_labels = _train_api(
        SimulatedToxicityAPI(), "toxicity", seed=101
    )
    sentiment_api, sentiment_texts, sentiment_labels = _train_api(
        SimulatedSentimentAPI(), "sentiment", seed=102
    )
    category_api, category_texts, category_labels = _train_api(
        SimulatedCategoryAPI(), "topic", seed=103
    )

    # A dedicated perturber with its own seeded RNG keeps the sweep
    # independent of whichever benchmarks ran earlier in the session.
    perturber = Perturber(
        cryptext_system.lookup_engine,
        config=cryptext_system.config,
        rng=random.Random(20230116),
    )
    evaluator = RobustnessEvaluator(
        lambda text, ratio: perturber.perturb(text, ratio=ratio).perturbed_text,
        ratios=PAPER_RATIOS,
        repeats=4,
    )

    def run_sweep():
        return evaluator.evaluate_many(
            [toxicity_api, sentiment_api, category_api],
            [
                (toxicity_texts, toxicity_labels),
                (sentiment_texts, sentiment_labels),
                (category_texts, category_labels),
            ],
        )

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    series = {}
    for service, points in results.items():
        by_ratio = {point.ratio: point.accuracy for point in points}
        series[service] = by_ratio
        # shape: clean accuracy is decent, and accuracy never improves as the
        # perturbation ratio grows (small tolerance for sampling noise)
        assert by_ratio[0.0] >= 0.6, f"{service} clean accuracy too low"
        ratios = sorted(by_ratio)
        for lower, higher in zip(ratios, ratios[1:]):
            assert by_ratio[higher] <= by_ratio[lower] + 0.035, (
                f"{service}: accuracy increased from r={lower} to r={higher}"
            )
        # shape: no service ever benefits from perturbation
        assert by_ratio[0.5] <= by_ratio[0.0] + 0.005, f"{service} improved under perturbation"

    # shape: the keyword-driven services show a clear degradation; the
    # sentiment model (whose cues are spread over more tokens) degrades the
    # least, mirroring the ordering differences the paper reports.
    toxicity = series["perspective_toxicity"]
    categories = series["cloud_categories"]
    assert toxicity[0.25] <= toxicity[0.0] - 0.03
    assert toxicity[0.5] <= toxicity[0.0] - 0.04
    assert categories[0.5] <= categories[0.0] - 0.05
    degraded_services = sum(
        1 for by_ratio in series.values() if by_ratio[0.5] <= by_ratio[0.0] - 0.02
    )
    assert degraded_services >= 2

    page = build_benchmark_page(results)
    record_result(
        "fig4",
        {
            "description": "Accuracy of simulated NLP APIs vs CrypText perturbation ratio",
            "ratios": list(PAPER_RATIOS),
            "accuracy_series": {
                service: {str(ratio): accuracy for ratio, accuracy in by_ratio.items()}
                for service, by_ratio in series.items()
            },
            "benchmark_page": page,
        },
    )
    print("\nFigure 4 — accuracy vs perturbation ratio:")
    header = "  service                | " + " | ".join(f"r={ratio}" for ratio in PAPER_RATIOS)
    print(header)
    for service, by_ratio in series.items():
        row = " | ".join(f"{by_ratio[ratio]:.3f}" for ratio in PAPER_RATIOS)
        print(f"  {service:<22} | {row}")
