"""Experiment ``usecase_denoising`` — §III-C: normalization as a model defense.

The paper's first Normalization use case: "CrypText can be used to correct
all possible human-written perturbations in the training corpus" / in model
inputs, de-noising what clean-trained classifiers see.  Together with the
moderation use case (§III-E), the implied claim is that running Normalization
in front of a toxicity model recovers a large part of the accuracy that
perturbation takes away.

This benchmark measures exactly that: toxicity-API accuracy on clean text,
on CrypText-perturbed text, and on the same perturbed text after
Normalization, plus the moderation pipeline's catch rate on evasive posts.
"""

from __future__ import annotations

import random

from repro.classifiers import SimulatedToxicityAPI
from repro.core.perturber import Perturber
from repro.datasets import build_robustness_dataset
from repro.metrics import accuracy
from repro.social import ModerationPipeline

from conftest import record_result

TRAIN, TEST = 400, 120
RATIO = 0.5


def test_usecase_denoising(benchmark, cryptext_system):
    texts, labels = build_robustness_dataset("toxicity", num_samples=TRAIN + TEST, seed=301)
    api = SimulatedToxicityAPI().train(texts[:TRAIN], labels[:TRAIN])
    test_texts, test_labels = texts[TRAIN:], labels[TRAIN:]

    perturber = Perturber(
        cryptext_system.lookup_engine,
        config=cryptext_system.config,
        rng=random.Random(301),
    )
    perturbed = [
        perturber.perturb(text, ratio=RATIO, fill_target=True).perturbed_text
        for text in test_texts
    ]

    def evaluate_with_denoising():
        denoised = [
            cryptext_system.normalize(text).normalized_text for text in perturbed
        ]
        return [api.predict_label(text) for text in denoised]

    denoised_predictions = benchmark(evaluate_with_denoising)

    clean_accuracy = accuracy(test_labels, [api.predict_label(t) for t in test_texts])
    perturbed_accuracy = accuracy(test_labels, [api.predict_label(t) for t in perturbed])
    denoised_accuracy = accuracy(test_labels, denoised_predictions)

    # shape: perturbation hurts, normalization recovers most of the damage
    assert perturbed_accuracy <= clean_accuracy
    assert denoised_accuracy >= perturbed_accuracy
    if clean_accuracy - perturbed_accuracy >= 0.05:
        recovered = (denoised_accuracy - perturbed_accuracy) / (
            clean_accuracy - perturbed_accuracy
        )
        assert recovered >= 0.5

    # the moderation pipeline catches evasive toxic posts; a moderation
    # assistant escalates on any restored sensitive token (threshold 1)
    pipeline = ModerationPipeline(cryptext_system, api, sensitive_review_threshold=1)
    evasive = [
        text
        for text, label, perturbed_text in zip(test_texts, test_labels, perturbed)
        if label == "toxic" and api.predict_label(perturbed_text) != "toxic"
    ]
    evasive_perturbed = [
        perturbed_text
        for text, label, perturbed_text in zip(test_texts, test_labels, perturbed)
        if label == "toxic" and api.predict_label(perturbed_text) != "toxic"
    ]
    if evasive_perturbed:
        report = pipeline.review_posts(evasive_perturbed)
        caught = len(report.flagged_raw) + len(report.caught_by_normalization) + len(
            report.needs_review
        )
        catch_rate = caught / len(evasive_perturbed)
        assert catch_rate >= 0.5
    else:
        catch_rate = 1.0

    record_result(
        "usecase_denoising",
        {
            "description": "Normalization as a defense for a clean-trained toxicity model",
            "perturbation_ratio": RATIO,
            "clean_accuracy": round(clean_accuracy, 4),
            "perturbed_accuracy": round(perturbed_accuracy, 4),
            "denoised_accuracy": round(denoised_accuracy, 4),
            "num_evasive_posts": len(evasive),
            "moderation_catch_rate": round(catch_rate, 4),
        },
    )
    print("\n§III-C use case — de-noising with Normalization (ratio 0.5):")
    print(f"  clean     accuracy: {clean_accuracy:.3f}")
    print(f"  perturbed accuracy: {perturbed_accuracy:.3f}")
    print(f"  denoised  accuracy: {denoised_accuracy:.3f}")
    print(f"  moderation catch rate on evasive posts: {catch_rate:.2%}")
