"""Batch throughput benchmark: docs/sec of the batch engine vs per-call loops.

Measures Look Up and Normalization throughput over a large synthetic
document corpus:

* **sequential baseline** — one engine call per document, exactly how the
  pre-batch consumers (`look_up_many`, `normalize_many`) iterate;
* **batch engine** — `BatchEngine.look_up_batch` / `normalize_batch` at
  several shard counts (deduplication + per-token memoization + sharded
  retrieval).

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py              # full: 10k docs
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --smoke      # CI: small + assertion

The full run writes ``benchmarks/results/batch_throughput.json``; the smoke
run asserts the batch engine beats the sequential baseline so throughput
regressions surface in CI.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro import CrypText
from repro.datasets import build_social_corpus, corpus_texts

RESULTS_PATH = Path(__file__).parent / "results" / "batch_throughput.json"


def build_document_corpus(system: CrypText, num_docs: int, seed: int) -> list[str]:
    """Synthesize ``num_docs`` mostly-unique documents over the corpus vocabulary.

    Documents are random word sequences drawn from the observed vocabulary,
    so whole-document deduplication barely helps — the measured speedup comes
    from per-token work sharing, which is the realistic traffic shape.
    """
    rng = random.Random(seed)
    vocabulary = sorted(system.dictionary.token_counts())
    return [
        " ".join(rng.choice(vocabulary) for _ in range(rng.randint(5, 12)))
        for _ in range(num_docs)
    ]


def _time(callable_) -> tuple[float, object]:
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def run_benchmark(num_docs: int, shard_counts: tuple[int, ...], seed: int) -> dict:
    posts = build_social_corpus(num_posts=1000, seed=seed)
    base_texts = corpus_texts(posts)
    print(f"building system from {len(base_texts)} posts ...", file=sys.stderr)
    system = CrypText.from_corpus(base_texts)
    documents = build_document_corpus(system, num_docs, seed)
    queries = [doc.split()[0] for doc in documents]

    report: dict = {
        "num_docs": num_docs,
        "unique_docs": len(set(documents)),
        "dictionary_tokens": len(system.dictionary),
        "lookup": {},
        "normalize": {},
    }

    # Sequential baselines: fresh systems so no batch-warmed cache leaks in.
    baseline = CrypText.from_corpus(base_texts)
    elapsed, seq_lookup = _time(lambda: [baseline.look_up(q) for q in queries])
    report["lookup"]["sequential"] = {"seconds": elapsed, "docs_per_sec": num_docs / elapsed}
    print(f"lookup    sequential      : {num_docs / elapsed:10.0f} docs/sec", file=sys.stderr)

    elapsed, seq_norm = _time(lambda: [baseline.normalize(d) for d in documents])
    report["normalize"]["sequential"] = {"seconds": elapsed, "docs_per_sec": num_docs / elapsed}
    print(f"normalize sequential      : {num_docs / elapsed:10.0f} docs/sec", file=sys.stderr)

    for shards in shard_counts:
        fresh = CrypText.from_corpus(base_texts)
        engine = fresh.make_batch_engine(num_shards=shards)
        elapsed, batch_lookup = _time(lambda: engine.look_up_batch(queries))
        assert batch_lookup == seq_lookup, "batch Look Up diverged from sequential"
        report["lookup"][f"batch_{shards}_shards"] = {
            "seconds": elapsed,
            "docs_per_sec": num_docs / elapsed,
            "speedup": report["lookup"]["sequential"]["seconds"] / elapsed,
        }
        print(
            f"lookup    batch {shards:2d} shards : {num_docs / elapsed:10.0f} docs/sec "
            f"({report['lookup'][f'batch_{shards}_shards']['speedup']:.1f}x)",
            file=sys.stderr,
        )

        elapsed, batch_norm = _time(lambda: engine.normalize_batch(documents))
        assert batch_norm == seq_norm, "batch Normalization diverged from sequential"
        report["normalize"][f"batch_{shards}_shards"] = {
            "seconds": elapsed,
            "docs_per_sec": num_docs / elapsed,
            "speedup": report["normalize"]["sequential"]["seconds"] / elapsed,
        }
        print(
            f"normalize batch {shards:2d} shards : {num_docs / elapsed:10.0f} docs/sec "
            f"({report['normalize'][f'batch_{shards}_shards']['speedup']:.1f}x)",
            file=sys.stderr,
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--docs", type=int, default=10_000, help="document corpus size")
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8], help="shard counts to sweep"
    )
    parser.add_argument("--seed", type=int, default=20230116)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run asserting batch == sequential results and batch "
        "not slower than sequential (>= 1.05x, CI guard)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # The sequential baseline normalizes through cached compiled buckets
        # too (one English-only trie traversal per token instead of a store
        # probe plus a per-entry DP), so the batch margin is per-token
        # memoization and shard parallelism only — measured ~1.3-1.5x here.
        # 5k documents amortize the engine's fixed costs (sharded-index
        # build, prefetch) and keep the timed windows well above a second
        # (2k-document runs flaked on timer noise); the bound keeps headroom
        # for noisy CI runners.
        report = run_benchmark(num_docs=5_000, shard_counts=(4,), seed=args.seed)
        speedup = report["normalize"]["batch_4_shards"]["speedup"]
        lookup_speedup = report["lookup"]["batch_4_shards"]["speedup"]
        print(
            f"smoke: normalize speedup {speedup:.1f}x, lookup speedup {lookup_speedup:.1f}x",
            file=sys.stderr,
        )
        # The smoke's hard guarantee is the batch == sequential equality
        # asserted inside run_benchmark; the speedup gate is deliberately a
        # "batch must not be slower" floor because the honest margin over
        # the compiled-trie sequential baseline (~1.2-1.5x) sits too close
        # to shared-runner timer noise for a tighter bound to be stable.
        assert speedup >= 1.05, (
            f"batch normalization regressed: only {speedup:.2f}x over sequential"
        )
        return 0

    report = run_benchmark(
        num_docs=args.docs, shard_counts=tuple(args.shards), seed=args.seed
    )
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH}", file=sys.stderr)

    if 4 in args.shards and args.docs >= 10_000:
        # The sequential baseline now runs candidate retrieval on cached
        # English-only compiled tries (more than 2x its old linear-scan
        # throughput), so the batch multiplier is smaller than against the
        # pre-compiled baseline — the bound guards the remaining
        # memoization + sharding margin, with headroom for timer noise
        # (measured 1.4-1.5x).
        speedup = report["normalize"]["batch_4_shards"]["speedup"]
        assert speedup >= 1.25, (
            f"acceptance criterion failed: batch normalization at 4 shards is "
            f"{speedup:.2f}x sequential (need >= 1.25x on a 10k-document corpus)"
        )
        print(f"acceptance: normalize batch/sequential = {speedup:.1f}x (>= 1.25x ok)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
