"""Experiment ``ablation_cache`` — the Redis-style query cache.

Paper §III-F: "Since some queries might take a longer time to process, a
Redis cache is adapted to temporarily store and re-use recent queried
results".  This ablation replays a skewed query workload (a few hot keywords
queried repeatedly, a long tail queried once) against the Look Up engine
with and without the cache, comparing wall-clock time and reporting the hit
rate of the cached configuration.
"""

from __future__ import annotations

import random
import time

from repro.core.lookup import LookupEngine
from repro.storage import TTLCache

from conftest import record_result

HOT_KEYWORDS = ("democrats", "republicans", "vaccine", "mandate", "amazon")
NUM_QUERIES = 400


def _workload(seed: int = 3) -> list[str]:
    """A Zipf-ish query mix: 80% hot keywords, 20% long-tail words."""
    rng = random.Random(seed)
    tail = [
        "booster", "politics", "suicide", "depression", "muslim", "chinese",
        "senate", "election", "google", "hospital", "doctors", "pandemic",
        "racist", "worthless", "pathetic", "criminals",
    ]
    queries = []
    for _ in range(NUM_QUERIES):
        if rng.random() < 0.8:
            queries.append(rng.choice(HOT_KEYWORDS))
        else:
            queries.append(rng.choice(tail))
    return queries


def test_ablation_query_cache(benchmark, cryptext_system):
    queries = _workload()
    config = cryptext_system.config
    uncached_engine = LookupEngine(
        cryptext_system.dictionary, config=config.with_overrides(cache_enabled=False)
    )
    cache = TTLCache(max_entries=config.cache_max_entries, default_ttl=600)
    cached_engine = LookupEngine(cryptext_system.dictionary, config=config, cache=cache)

    def run_cached_workload():
        for query in queries:
            cached_engine.look_up(query)

    # time the cached configuration with pytest-benchmark...
    benchmark(run_cached_workload)

    # ...and measure both configurations once, explicitly, for the report.
    start = time.perf_counter()
    for query in queries:
        uncached_engine.look_up(query)
    uncached_seconds = time.perf_counter() - start

    fresh_cache = TTLCache(max_entries=config.cache_max_entries, default_ttl=600)
    fresh_engine = LookupEngine(cryptext_system.dictionary, config=config, cache=fresh_cache)
    start = time.perf_counter()
    for query in queries:
        fresh_engine.look_up(query)
    cached_seconds = time.perf_counter() - start

    speedup = uncached_seconds / cached_seconds if cached_seconds > 0 else float("inf")
    hit_rate = fresh_cache.stats.hit_rate

    # shape: the workload is skewed, so the cache absorbs most queries and
    # the cached run is faster
    assert hit_rate >= 0.5
    assert cached_seconds <= uncached_seconds

    record_result(
        "ablation_cache",
        {
            "description": "Skewed Look Up workload with and without the query cache",
            "num_queries": NUM_QUERIES,
            "uncached_seconds": round(uncached_seconds, 4),
            "cached_seconds": round(cached_seconds, 4),
            "speedup": round(speedup, 2),
            "cache_hit_rate": round(hit_rate, 3),
            "cache_stats": fresh_cache.stats.to_dict(),
        },
    )
    print("\nAblation cache — skewed Look Up workload:")
    print(f"  uncached: {uncached_seconds:.3f}s   cached: {cached_seconds:.3f}s "
          f"(speedup {speedup:.1f}x, hit rate {hit_rate:.2f})")
