"""Resilience overhead benchmark: the disarmed fault-injection hot path.

The fault registry (:mod:`repro.resilience.faults`) is compiled into the
WAL append path, the snapshot writer, the replication tailer, and the
async dispatch front.  Its contract is **zero cost disarmed**: every call
site guards with ``if FAULTS.armed:`` — one attribute read and a falsy
branch — so production traffic with no chaos configured must not pay for
the chaos machinery's existence.

This benchmark holds that contract to a number:

* **per-guard cost** — microbenchmark the disarmed guard (attribute read
  + branch) against an empty loop, isolating the marginal nanoseconds per
  call site;
* **real workloads** — journaled ingest (one ``wal.append`` guard per
  append), follower tail polling (``follower.poll`` + ``tailer.read``
  guards per round), and async front dispatch (one ``front.dispatch``
  guard per request), each timed end to end while counting exactly how
  many guards executed;
* **the floor** — for every workload, ``guards x per_guard_cost`` must be
  at most 5% of the measured elapsed time (in practice it is orders of
  magnitude below);
* **sanity** — an armed fault actually fires (the machinery being
  measured is real, not dead code), and a follower tailing the ingest
  workload converges to the leader's exact content fingerprint.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke    # CI guard

The full run writes ``benchmarks/results/resilience.json``; both modes
assert the overhead floor, so a regression that puts work on the disarmed
path (a lock, a dict lookup, a function call) fails the job.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from repro.api import AsyncCrypTextService, CrypTextService, RateLimiter
from repro.config import CrypTextConfig
from repro.core.pipeline import CrypText
from repro.errors import WalError
from repro.replication import Follower
from repro.resilience import FAULTS
from repro.wal import ChangeLog, wal_directory_for

RESULTS_PATH = Path(__file__).parent / "results" / "resilience.json"

#: A workload's guard traffic may cost at most this fraction of its runtime.
OVERHEAD_CEILING = 0.05

STEMS = (
    "vaccine", "republicans", "democrats", "depression", "neighborhood",
    "mandate", "moderators", "amazon", "listening", "perturbation",
)


def _guard_cost_seconds(iterations: int) -> float:
    """Marginal cost of one disarmed ``if FAULTS.armed:`` guard.

    Times the guard loop against an empty loop of the same shape and
    charges the difference to the guard; clamped to a tenth of a
    nanosecond so the overhead ratio below never divides into zero.
    """
    assert not FAULTS.armed, "the guard must be measured disarmed"
    registry = FAULTS
    start = time.perf_counter()
    for _ in range(iterations):
        if registry.armed:
            registry.hit("wal.append")
    guarded = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(iterations):
        pass
    empty = time.perf_counter() - start
    return max((guarded - empty) / iterations, 1e-10)


def _ingest_workload(work_dir: Path, rounds: int) -> dict[str, object]:
    """Journaled ingest: every append crosses the ``wal.append`` guard."""
    config = CrypTextConfig(cache_enabled=False)
    leader = CrypText.empty(config=config, seed_lexicon=False)
    leader.dictionary.attach_wal(ChangeLog(wal_directory_for(work_dir)))
    texts = [
        f"the {STEMS[i % len(STEMS)]} and the {STEMS[(i + 3) % len(STEMS)]} online"
        for i in range(rounds)
    ]
    start = time.perf_counter()
    for text in texts:
        leader.learn_from([text], source="bench")
    elapsed = time.perf_counter() - start
    appends = leader.dictionary.wal.last_seq
    assert appends >= rounds, "every round must journal at least one record"

    # Sanity: the machinery being measured is live — an armed fault fires.
    FAULTS.arm("wal.append", fail=1)
    try:
        try:
            leader.learn_from(["the doomed write"], source="bench")
            raise AssertionError("an armed wal.append fault must reject the write")
        except WalError:
            pass
    finally:
        FAULTS.reset()

    return {"leader": leader, "elapsed": elapsed, "guards": appends}


def _poll_workload(work_dir: Path, leader: CrypText, rounds: int) -> dict[str, object]:
    """Tail polling: each round crosses ``follower.poll`` + ``tailer.read``."""
    follower = Follower(work_dir, config=CrypTextConfig(cache_enabled=False))
    follower.catch_up()
    start = time.perf_counter()
    for _ in range(rounds):
        follower.poll()
    elapsed = time.perf_counter() - start
    converged = (
        follower.system.dictionary.content_fingerprint()
        == leader.dictionary.content_fingerprint()
    )
    follower.close()
    assert converged, "the polling follower must converge to the leader"
    return {"elapsed": elapsed, "guards": 2 * rounds}


def _dispatch_workload(leader: CrypText, rounds: int) -> dict[str, object]:
    """Async dispatch: every request crosses the ``front.dispatch`` guard."""
    service = CrypTextService(
        leader, rate_limiter=RateLimiter(max_requests=10 * rounds, window_seconds=60)
    )
    token = service.issue_token("bench").token
    front = AsyncCrypTextService(service, reader_threads=2)

    async def drive() -> float:
        start = time.perf_counter()
        for index in range(rounds):
            response = await front.dispatch(
                "POST",
                "/v1/lookup",
                token,
                {"queries": [STEMS[index % len(STEMS)]]},
            )
            assert response.status == 200, response.body
        return time.perf_counter() - start

    elapsed = asyncio.run(drive())
    return {"elapsed": elapsed, "guards": rounds}


def _check(name: str, elapsed: float, guards: int, per_guard: float) -> dict[str, object]:
    overhead = guards * per_guard
    ratio = overhead / elapsed if elapsed > 0 else 0.0
    assert ratio <= OVERHEAD_CEILING, (
        f"{name}: disarmed guard traffic costs {ratio:.2%} of the workload "
        f"({guards} guards x {per_guard * 1e9:.1f}ns over {elapsed * 1e3:.1f}ms); "
        f"the ceiling is {OVERHEAD_CEILING:.0%} — something put real work on "
        "the disarmed hot path"
    )
    return {
        "elapsed_seconds": elapsed,
        "guards_executed": guards,
        "guard_overhead_seconds": overhead,
        "overhead_ratio": ratio,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run for CI; asserts the overhead ceiling, writes nothing",
    )
    args = parser.parse_args(argv)

    ingest_rounds = 60 if args.smoke else 400
    poll_rounds = 200 if args.smoke else 2000
    dispatch_rounds = 40 if args.smoke else 300
    guard_iterations = 200_000 if args.smoke else 2_000_000

    FAULTS.reset()
    per_guard = _guard_cost_seconds(guard_iterations)
    print(f"disarmed guard: {per_guard * 1e9:.1f}ns per call site", file=sys.stderr)

    report: dict[str, object] = {"per_guard_seconds": per_guard}
    with tempfile.TemporaryDirectory(prefix="bench-resilience-") as scratch:
        work_dir = Path(scratch)
        ingest = _ingest_workload(work_dir, ingest_rounds)
        leader = ingest.pop("leader")
        report["ingest"] = _check(
            "journaled ingest", ingest["elapsed"], ingest["guards"], per_guard
        )
        poll = _poll_workload(work_dir, leader, poll_rounds)
        report["poll"] = _check(
            "follower polling", poll["elapsed"], poll["guards"], per_guard
        )
        dispatch = _dispatch_workload(leader, dispatch_rounds)
        report["dispatch"] = _check(
            "async dispatch", dispatch["elapsed"], dispatch["guards"], per_guard
        )

    for name in ("ingest", "poll", "dispatch"):
        entry = report[name]
        print(
            f"{name}: {entry['guards_executed']} guards over "
            f"{entry['elapsed_seconds'] * 1e3:.1f}ms -> "
            f"{entry['overhead_ratio']:.4%} overhead",
            file=sys.stderr,
        )

    if args.smoke:
        print("smoke ok: disarmed overhead within the 5% ceiling", file=sys.stderr)
        return 0

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
