"""Match-kernel head-to-head: banded trie-DP vs Myers bitvector vs SymSpell.

Three kernels can serve ``CompiledBucket.match`` since the paper-scale
matching layer landed (``core/kernels.py`` / ``core/deletes.py``):

* **banded** — the per-node banded DP rows over the bucket trie (the
  compiled path every PR before this one shipped; the baseline here);
* **myers** — the Myers/Hyyrö bit-parallel traversal (patterns <= 64
  chars, plain Levenshtein), one word of bit-ops per trie node;
* **symspell** — the precomputed delete-neighborhood index (d <= 2,
  either metric): candidate lookup by query deletions, then exact
  verification of the candidates only.

This benchmark races them over synthetic sound buckets at 10k and 2M
entries for d ∈ {1, 2} (plus d=3 at 10k, where SymSpell is ineligible and
degrades to Myers) across three query mixes:

* **hit** — perturbations of the bucket stems (dense-match regime; all
  kernels converge toward shared verification cost);
* **miss** — random tokens that match little or nothing (the regime that
  dominates Normalization over clean text, and where the delete index is
  orders of magnitude ahead: candidate lookup does not scale with bucket
  size);
* **mixed** — 1 hit : 3 misses, the Normalization-shaped workload the
  ``auto`` policy is tuned for (most document tokens are clean words that
  match no perturbation).

Every timed configuration first asserts all kernels agree — against the
per-entry linear scan where that is affordable, against each other at 2M
— and the report records per-kernel build costs (trie compile, delete
index) because SymSpell's query speed is bought with index build time.
The ``auto`` row must keep up with the measured mixed-workload winner per
(bucket size, d); that check is what pins ``AUTO_SYMSPELL_MIN_BUCKET``.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_match_kernel.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_match_kernel.py --smoke    # CI guard

The full run writes ``benchmarks/results/match_kernel.json``.  The smoke
run replays the golden corpus under every kernel policy and asserts the
d=2 floor: the auto kernel >= 2x the banded baseline on a 10k-entry
bucket over the mixed workload.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import string
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))  # for tests.test_golden_regression

from repro.config import MATCH_KERNEL_POLICIES
from repro.core.dictionary import DictionaryEntry
from repro.core.edit_distance import bounded_levenshtein
from repro.core.kernels import resolve_kernel
from repro.core.matcher import CompiledBucket

RESULTS_PATH = Path(__file__).parent / "results" / "match_kernel.json"

STEMS = (
    "vaccine", "republicans", "democrats", "depression", "neighborhood",
    "mandate", "suicide", "amazon", "listening", "perturbation",
)
ALPHABET = string.ascii_lowercase + "013457@$-"

#: Above this size the per-query linear reference scan is unaffordable;
#: equality is checked across kernels plus one linear probe per distance.
LINEAR_CHECK_MAX = 20_000

#: Mixed workload shape: 1 hit-ish query to 3 misses (see module docstring).
MISSES_PER_HIT = 3


def _perturb(word: str, rng: random.Random, max_edits: int = 3) -> str:
    characters = list(word)
    for _ in range(rng.randint(0, max_edits)):
        operation = rng.randint(0, 2)
        position = rng.randrange(len(characters))
        if operation == 0:
            characters[position] = rng.choice(ALPHABET)
        elif operation == 1:
            characters.insert(position, rng.choice(ALPHABET))
        elif len(characters) > 1:
            del characters[position]
    return "".join(characters)


def build_bucket(size: int, rng: random.Random) -> list[DictionaryEntry]:
    """A synthetic sound bucket: ``size`` distinct near-variants of the stems."""
    tokens: dict[str, None] = {}
    while len(tokens) < size:
        tokens[_perturb(rng.choice(STEMS), rng)] = None
    return [
        DictionaryEntry(
            token=token, canonical=token, keys={}, count=1, is_word=False, sources=()
        )
        for token in tokens
    ]


def build_queries(num_hits: int, rng: random.Random) -> dict[str, list[str]]:
    hits = [_perturb(rng.choice(STEMS), rng).lower() for _ in range(num_hits)]
    misses = [
        "".join(rng.choice(ALPHABET) for _ in range(rng.randint(6, 13)))
        for _ in range(num_hits * MISSES_PER_HIT)
    ]
    return {"hit": hits, "miss": misses, "mixed": hits + misses}


def linear_match(
    query: str, entries: list[DictionaryEntry], bound: int
) -> dict[int, int]:
    distances = {}
    for index, entry in enumerate(entries):
        distance = bounded_levenshtein(query, entry.token_lower, bound)
        if distance is not None:
            distances[index] = distance
    return distances


def eligible_kernels(bound: int) -> tuple[str, ...]:
    concrete = ("banded", "myers") + (("symspell",) if bound <= 2 else ())
    return concrete + ("auto",)


def verify_equality(
    compiled: CompiledBucket,
    entries: list[DictionaryEntry],
    queries: list[str],
    bound: int,
) -> None:
    """All kernels agree; the linear scan arbitrates where affordable."""
    kernels = eligible_kernels(bound)
    for position, query in enumerate(queries):
        results = {k: compiled.match(query, bound, kernel=k) for k in kernels}
        baseline = results[kernels[0]]
        for kernel, result in results.items():
            assert result == baseline, (
                f"kernel {kernel} diverged at d={bound}, query={query!r}"
            )
        # Full linear arbitration on small buckets, one probe per call on
        # huge ones (a 2M-entry scan costs seconds per query).
        if len(entries) <= LINEAR_CHECK_MAX or position == 0:
            assert baseline == linear_match(query, entries, bound), (
                f"kernels diverged from the linear scan at d={bound}, "
                f"query={query!r}"
            )


def _timed_qps(compiled: CompiledBucket, queries, bound: int, kernel: str) -> float:
    gc.collect()
    start = time.perf_counter()
    for query in queries:
        compiled.match(query, bound, kernel=kernel)
    return len(queries) / (time.perf_counter() - start)


def measure_bucket(size: int, distances: tuple[int, ...], num_hits: int, seed: int) -> dict:
    rng = random.Random(seed)
    start = time.perf_counter()
    entries = build_bucket(size, rng)
    compiled = CompiledBucket(entries)
    queries = build_queries(num_hits, rng)
    row: dict = {"entries": size, "distances": {}}

    # Build costs, paid once per bucket: the trie (every kernel) and the
    # delete-neighborhood index (SymSpell only) both build lazily on first
    # use, exactly as they do inside the dictionary.
    build_start = time.perf_counter()
    compiled.match(queries["hit"][0], 1, kernel="banded")
    row["trie_build_seconds"] = time.perf_counter() - build_start
    build_start = time.perf_counter()
    compiled.match(queries["hit"][0], 1, kernel="symspell")
    row["delete_index_build_seconds"] = time.perf_counter() - build_start
    row["setup_seconds"] = time.perf_counter() - start

    for bound in distances:
        kernels = eligible_kernels(bound)
        verify_equality(compiled, entries, queries["mixed"], bound)
        for kernel in kernels:  # warm every code path before timing
            compiled.match(queries["mixed"][0], bound, kernel=kernel)
        cell: dict = {"auto_resolves_to": resolve_kernel("auto", 10, bound, size)}
        for kernel in kernels:
            cell[kernel] = {
                workload: _timed_qps(compiled, workload_queries, bound, kernel)
                for workload, workload_queries in queries.items()
            }
        ranked = sorted(
            (k for k in kernels if k != "auto"),
            key=lambda k: cell[k]["mixed"],
            reverse=True,
        )
        cell["mixed_winner"] = ranked[0]
        row["distances"][f"d{bound}"] = cell
        print(
            f"bucket {size:9,d}  d={bound}: "
            + "  ".join(
                f"{k} {cell[k]['mixed']:9.1f} q/s" for k in kernels
            )
            + f"  (winner: {ranked[0]}, auto -> {cell['auto_resolves_to']})",
            file=sys.stderr,
        )
    return row


def check_auto_keeps_up(report: dict, tolerance: float = 0.8) -> None:
    """The auto policy must track the measured mixed-workload winner.

    ``resolve_kernel`` is a static rule (AUTO_SYMSPELL_MIN_BUCKET et al.),
    so we do not demand it equal the argmax on every run — only that the
    kernel it picks stays within ``tolerance`` of the fastest, which fails
    loudly if the static thresholds drift from what the machine measures.
    """
    for size, row in report["buckets"].items():
        for label, cell in row["distances"].items():
            best = cell[cell["mixed_winner"]]["mixed"]
            auto = cell["auto"]["mixed"]
            assert auto >= tolerance * best, (
                f"auto policy fell behind at {size} entries {label}: "
                f"{auto:.0f} q/s vs winner {cell['mixed_winner']} "
                f"{best:.0f} q/s — retune AUTO_SYMSPELL_MIN_BUCKET"
            )


def check_golden_corpus(distances=(1, 2)) -> int:
    """Replay the golden corpus under every kernel policy.

    Delegates to the tier-1 helper (one implementation, two guards); any
    field-level divergence between a forced-kernel system and the linear
    reference raises.  Returns the total comparison count.
    """
    from tests.test_golden_regression import compare_compiled_and_linear_lookups

    compared = 0
    for policy in MATCH_KERNEL_POLICIES:
        compared += compare_compiled_and_linear_lookups(
            distances=distances, kernel=policy
        )
    return compared


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[10_000, 2_000_000],
        help="bucket sizes to sweep (paper scale: 10k and 2M)",
    )
    parser.add_argument(
        "--distances", type=int, nargs="+", default=[1, 2, 3],
        help="edit-distance bounds to sweep (d=3 only measured <= 100k)",
    )
    parser.add_argument("--hits", type=int, default=12, help="hit queries per config")
    parser.add_argument("--seed", type=int, default=20230116)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI guard: golden equality under every policy + the d=2 floor",
    )
    args = parser.parse_args(argv)

    compared = check_golden_corpus()
    print(
        f"golden corpus: {compared} comparisons ok across "
        f"{len(MATCH_KERNEL_POLICIES)} kernel policies",
        file=sys.stderr,
    )

    if args.smoke:
        row = measure_bucket(10_000, distances=(2,), num_hits=args.hits, seed=args.seed)
        cell = row["distances"]["d2"]
        floor = cell["auto"]["mixed"] / cell["banded"]["mixed"]
        assert floor >= 2.0, (
            f"d<=2 kernel floor regressed: auto is only {floor:.2f}x the banded "
            f"baseline on a 10k-entry bucket (need >= 2x on the mixed workload)"
        )
        print(f"smoke: auto/banded at 10k, d=2 = {floor:.1f}x (>= 2x ok)", file=sys.stderr)
        return 0

    report: dict = {
        "hits_per_config": args.hits,
        "misses_per_hit": MISSES_PER_HIT,
        "buckets": {},
    }
    for size in args.sizes:
        distances = tuple(d for d in args.distances if d <= 2 or size <= 100_000)
        report["buckets"][str(size)] = measure_bucket(
            size, distances=distances, num_hits=args.hits, seed=args.seed
        )
    report["golden_comparisons"] = compared

    check_auto_keeps_up(report)
    print("auto policy tracks the measured winner per (size, d)", file=sys.stderr)

    if "10000" in report["buckets"] and "d2" in report["buckets"]["10000"]["distances"]:
        cell = report["buckets"]["10000"]["distances"]["d2"]
        floor = cell["auto"]["mixed"] / cell["banded"]["mixed"]
        assert floor >= 2.0, (
            f"acceptance criterion failed: auto is {floor:.2f}x the banded "
            f"baseline at 10k, d=2 (need >= 2x)"
        )
        print(f"acceptance: auto/banded at 10k, d=2 = {floor:.1f}x (>= 2x ok)", file=sys.stderr)

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
