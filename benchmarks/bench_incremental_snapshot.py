"""Incremental-snapshot benchmark: delta saves vs full rewrites, plus recovery.

The durability subsystem (:mod:`repro.wal`) claims two things worth guarding:

* **delta saves scale with what changed, not with dictionary size** — an
  incremental :meth:`PerturbationDictionary.save_snapshot` re-serializes only
  the trie families of the dirty buckets, so with a small dirty fraction it
  must beat the full rewrite by a wide margin (the acceptance criterion:
  >= 5x when < 5% of buckets are dirty);
* **crash recovery is fast and exact** — ``recover()`` (chain hydrate + WAL
  tail replay) reconstructs a ``kill -9``'d ingest byte-identically, in time
  comparable to a warm start plus the tail replay.

Every run first asserts cold-vs-recovered equality on the golden regression
corpus (shared guard with the tier-1 suite) and on the benchmark dictionary
itself, then measures:

* full save vs delta save over a dictionary of ``size`` near-variant tokens
  with a bounded dirty slice (< 5% of buckets);
* recovery time for a crash losing ``tail`` journaled-but-unsnapshotted
  writes.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_incremental_snapshot.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_incremental_snapshot.py --smoke   # CI guard

The full run writes ``benchmarks/results/incremental_snapshot.json``; both
modes assert the >= 5x delta-save floor and recovered == uninterrupted
equality, so a regression fails the job.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))  # for tests.test_golden_regression

from repro.config import CrypTextConfig
from repro.core.dictionary import PerturbationDictionary
from repro.core.lookup import LookupEngine
from repro.storage import SNAPSHOT_FILE_NAME
from repro.wal import ChangeLog, wal_directory_for

from bench_cold_start import STEMS, _perturb, _timed, build_dictionary

RESULTS_PATH = Path(__file__).parent / "results" / "incremental_snapshot.json"


def _dirty_some_buckets(
    dictionary: PerturbationDictionary, target_fraction: float, seed: int
) -> tuple[int, int]:
    """Write near-variants of one stem until just under ``target_fraction``
    of the dictionary's buckets are dirty; returns (dirty, total) buckets."""
    level = dictionary.config.phonetic_level
    total = len({
        document["keys"][f"k{level}"] for document in dictionary.collection
    })
    budget = max(1, int(total * target_fraction) - 1)
    rng = random.Random(seed)
    stem = STEMS[0]
    changed: set[tuple[int, str]] = set()
    while True:
        dirty_at_level = {pair for pair in changed if pair[0] == level}
        if len(dirty_at_level) >= budget:
            return len(dirty_at_level), total
        dictionary.add_token(_perturb(stem, rng), source="dirty", changed_keys=changed)


def measure_save(size: int, seed: int, work_dir: Path) -> dict:
    """Time one full rewrite vs one delta save with < 5% of buckets dirty."""
    config = CrypTextConfig(cache_max_entries=65536, cache_enabled=False)
    dictionary = build_dictionary(size, seed, config)
    snapshot_dir = work_dir / f"delta_{size}"
    base_path = snapshot_dir / SNAPSHOT_FILE_NAME
    dictionary.save_snapshot(base_path)  # establish the chain (and warm tries)

    dirty_buckets, total_buckets = _dirty_some_buckets(dictionary, 0.05, seed + 1)
    dirty_fraction = dirty_buckets / total_buckets

    # The rewrite baseline: what every save cost before deltas existed.
    # Saved to a scratch name so the chain tip is untouched; the trie
    # families are warm from the save above, so this measures serialization
    # + the dirty recompiles — the steady-state full-save cost.
    full_elapsed, full_report = _timed(
        lambda: dictionary.save_snapshot(work_dir / f"full_rewrite_{size}.json")
    )
    # Scratch saves don't clear the dirty sets (different chain), so the
    # delta below persists exactly the dirty slice measured above.
    delta_elapsed, delta_report = _timed(
        lambda: dictionary.save_snapshot(base_path, incremental=True)
    )
    assert delta_report.incremental and delta_report.delta_index == 1, delta_report

    # The delta must actually chain: hydrating base+delta equals the live state.
    recovered = PerturbationDictionary(config=config)
    report = recovered.recover(snapshot_dir)
    assert report.loaded and report.deltas_applied == 1, report
    assert recovered.content_fingerprint() == dictionary.content_fingerprint()

    return {
        "entries": size,
        "total_buckets": total_buckets,
        "dirty_buckets": dirty_buckets,
        "dirty_fraction": dirty_fraction,
        "full_save_seconds": full_elapsed,
        "full_save_documents": full_report.documents,
        "delta_save_seconds": delta_elapsed,
        "delta_save_documents": delta_report.documents,
        "delta_save_buckets": delta_report.buckets,
        "speedup": full_elapsed / delta_elapsed,
    }


def measure_recovery(size: int, tail: int, seed: int, work_dir: Path) -> dict:
    """Crash with ``tail`` journaled-only writes; time and verify recovery."""
    config = CrypTextConfig(cache_max_entries=65536, cache_enabled=False)
    snapshot_dir = work_dir / f"recover_{size}"
    victim = PerturbationDictionary(config=config)
    victim.attach_wal(ChangeLog(wal_directory_for(snapshot_dir)))
    rng = random.Random(seed)
    seen: set[str] = set()
    while len(seen) < size:
        token = _perturb(rng.choice(STEMS), rng)
        if token not in seen:
            seen.add(token)
            victim.add_token(token, source="bench")
    victim.save_snapshot(snapshot_dir / SNAPSHOT_FILE_NAME)
    lost: list[str] = []
    while len(lost) < tail:
        token = _perturb(rng.choice(STEMS), rng)
        if token not in seen:
            seen.add(token)
            lost.append(token)
            victim.add_token(token, source="bench-tail")

    recovered = PerturbationDictionary(config=config)
    recover_elapsed, report = _timed(lambda: recovered.recover(snapshot_dir))
    assert report.loaded and report.replayed_records == tail, report
    # Isolate the replay term: recovery = snapshot load + one replay per
    # pending WAL record.  The per-record cost is what turns
    # ``snapshot_autosave_interval`` into a recovery-time bound (interval N
    # risks at most ~N * replay_seconds_per_record of extra startup time).
    baseline = PerturbationDictionary(config=config)
    load_elapsed, load_report = _timed(
        lambda: baseline.load_snapshot(snapshot_dir / SNAPSHOT_FILE_NAME, strict=True)
    )
    assert load_report.loaded, load_report
    replay_per_record = max(recover_elapsed - load_elapsed, 0.0) / tail
    assert recovered.token_counts() == victim.token_counts()
    assert recovered.content_fingerprint() == victim.content_fingerprint()

    # Equality sweep over fresh probes (the byte-identical guard).
    probes = [_perturb(rng.choice(STEMS), rng) for _ in range(200)]
    victim_engine = LookupEngine(victim, config=config)
    recovered_engine = LookupEngine(recovered, config=config)
    for probe in probes:
        assert victim_engine.look_up(probe) == recovered_engine.look_up(probe), probe

    return {
        "entries": size,
        "tail_records": tail,
        "recover_seconds": recover_elapsed,
        "snapshot_load_seconds": load_elapsed,
        "replay_seconds_per_record": replay_per_record,
        "replayed_records": report.replayed_records,
        "torn_bytes": report.torn_bytes,
        "probes_compared": len(probes),
    }


def check_golden_corpus() -> int:
    """Cold-vs-recovered equality on the golden regression corpus.

    Delegates to the tier-1 test helper (one implementation, two guards).
    Returns the comparison count.
    """
    from tests.test_golden_regression import compare_cold_and_recovered_systems

    return compare_cold_and_recovered_systems(distances=(1, 3))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[1_000, 10_000],
        help="dictionary sizes to sweep",
    )
    parser.add_argument(
        "--tail", type=int, default=500,
        help="journaled-but-unsnapshotted writes the simulated crash loses",
    )
    parser.add_argument("--seed", type=int, default=20230116)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI guard: golden equality + the 10k delta-save speedup floor",
    )
    args = parser.parse_args(argv)

    import tempfile

    compared = check_golden_corpus()
    print(f"golden corpus: {compared} cold/recovered comparisons ok", file=sys.stderr)
    gc.collect()

    sizes = [10_000] if args.smoke else list(args.sizes)
    report = {"sizes": {}, "recovery": {}}
    with tempfile.TemporaryDirectory() as tmp:
        work_dir = Path(tmp)
        for size in sizes:
            row = measure_save(size, args.seed, work_dir)
            report["sizes"][str(size)] = row
            print(
                f"entries {size:6d}: full save {row['full_save_seconds']:.3f}s, "
                f"delta save {row['delta_save_seconds']:.3f}s "
                f"({row['dirty_buckets']}/{row['total_buckets']} buckets dirty, "
                f"{row['dirty_fraction']:.1%}) -> {row['speedup']:.1f}x",
                file=sys.stderr,
            )
            recovery = measure_recovery(size, args.tail, args.seed, work_dir)
            report["recovery"][str(size)] = recovery
            print(
                f"entries {size:6d}: recovered {recovery['replayed_records']} "
                f"lost writes in {recovery['recover_seconds']:.3f}s "
                f"({recovery['replay_seconds_per_record'] * 1e3:.2f} ms/record "
                f"over the {recovery['snapshot_load_seconds']:.3f}s load; "
                f"{recovery['probes_compared']} equality probes ok)",
                file=sys.stderr,
            )
    report["golden_comparisons"] = compared

    speedup = report["sizes"][str(sizes[-1])]["speedup"]
    fraction = report["sizes"][str(sizes[-1])]["dirty_fraction"]
    assert fraction < 0.05, f"dirty fraction {fraction:.1%} breached the < 5% premise"
    assert speedup >= 5.0, (
        f"incremental save regressed: delta save is only {speedup:.2f}x faster "
        f"than a full rewrite with {fraction:.1%} of buckets dirty (need >= 5x)"
    )
    print(
        f"{'smoke' if args.smoke else 'acceptance'}: delta save {speedup:.1f}x "
        f"faster (>= 5x ok)",
        file=sys.stderr,
    )
    if args.smoke:
        return 0

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
