"""Experiment ``fig2`` — Figure 2: Normalization of perturbed inputs.

Figure 2 of the paper shows the Normalization GUI: a perturbed input, the
normalized output with corrected tokens highlighted, and a popup with the
token before/after.  This benchmark normalizes a batch of perturbed posts
drawn from the synthetic corpus (plus the paper's own example sentences),
measures throughput, and records the before/after rows together with the
share of injected perturbations that were restored.
"""

from __future__ import annotations

from conftest import record_result

PAPER_SENTENCES = (
    "The democRATs responsible for their attempted race war",
    "A fake tree burned and RepubLIEcans are calling for",
    "Thinking about suic1de",
    "stop the vac-cine mandate now",
)


def test_fig2_normalization(benchmark, cryptext_system, synthetic_posts):
    perturbed_posts = [post for post in synthetic_posts if post.has_perturbation][:60]
    texts = list(PAPER_SENTENCES) + [post.text for post in perturbed_posts]

    results = benchmark(cryptext_system.normalizer.normalize_many, texts)

    # --- correctness of the paper's own examples ---------------------------
    by_input = dict(zip(texts, results))
    assert "democrats" in by_input[PAPER_SENTENCES[0]].normalized_text.lower()
    assert "republicans" in by_input[PAPER_SENTENCES[1]].normalized_text.lower()
    assert "suicide" in by_input[PAPER_SENTENCES[2]].normalized_text.lower()
    assert "vaccine" in by_input[PAPER_SENTENCES[3]].normalized_text.lower()

    # --- recovery rate on the injected corpus perturbations ----------------
    total_pairs = 0
    recovered = 0
    for post, result in zip(perturbed_posts, results[len(PAPER_SENTENCES):]):
        for original, _perturbed in post.perturbed_pairs:
            total_pairs += 1
            if original.lower() in result.normalized_text.lower():
                recovered += 1
    recovery_rate = recovered / total_pairs if total_pairs else 0.0
    assert recovery_rate >= 0.5

    rows = [
        {
            "input": result.original_text,
            "normalized": result.normalized_text,
            "corrections": [
                {"before": c.original, "after": c.corrected, "category": c.category.value}
                for c in result.perturbed_corrections
            ],
        }
        for result in results[: len(PAPER_SENTENCES) + 10]
    ]
    record_result(
        "fig2",
        {
            "description": "Normalization of perturbed inputs (paper examples + corpus posts)",
            "num_texts": len(texts),
            "perturbation_recovery_rate": recovery_rate,
            "examples": rows,
        },
    )
    print(f"\nFigure 2 — normalization recovery rate: {recovery_rate:.2%}")
    for row in rows[:4]:
        print(f"  in : {row['input']}")
        print(f"  out: {row['normalized']}")
