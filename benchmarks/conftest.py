"""Shared fixtures and result-recording helpers for the benchmark harness.

Every benchmark module regenerates one table / figure / quantitative claim of
the paper (see DESIGN.md §4).  Besides timing the relevant operation with
pytest-benchmark, each module writes the reproduced rows/series to
``benchmarks/results/<experiment_id>.json`` so the numbers can be inspected
and compared against the paper (EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import CrypText
from repro.datasets import build_social_corpus, corpus_texts
from repro.social import SocialPlatform

#: Where reproduced tables/series are written.
RESULTS_DIR = Path(__file__).parent / "results"

#: The three sentences of the paper's Table I.
TABLE1_SENTENCES = (
    "the dirrty republicans",
    "thee dirty repubLIEcans",
    "the dirty republic@@ns",
)

#: Ratios showcased by the paper's Perturbation demo and Figure 4 sweep.
PAPER_RATIOS = (0.0, 0.15, 0.25, 0.5)


def record_result(experiment_id: str, payload: dict) -> Path:
    """Write an experiment's reproduced numbers to the results directory."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, ensure_ascii=False)
    return path


@pytest.fixture(scope="session")
def synthetic_posts():
    """The synthetic social corpus every corpus-level benchmark shares."""
    return build_social_corpus(num_posts=1500, seed=20230116)


@pytest.fixture(scope="session")
def cryptext_system(synthetic_posts) -> CrypText:
    """CrypText built from the synthetic corpus (shared, treated read-only)."""
    return CrypText.from_corpus(corpus_texts(synthetic_posts))


@pytest.fixture(scope="session")
def twitter_platform(synthetic_posts) -> SocialPlatform:
    """Simulated Twitter platform holding the synthetic posts."""
    platform = SocialPlatform("twitter")
    platform.ingest_posts(synthetic_posts)
    return platform
