"""Experiment ``table1`` — Table I: the hash-map H1 of the example corpus.

The paper's Table I shows the ``H_1`` hash-map extracted from the three
sentences "the dirrty republicans", "thee dirty repubLIEcans", "the dirty
republic@@ns": three phonetic keys, one grouping {the, thee}, one grouping
the dirty variants, and one grouping all three spellings of "republicans".

This benchmark rebuilds that exact table (asserting the groupings and the
literal ``TH000`` / ``DI630`` keys), records it to
``results/table1.json``, and times dictionary construction.
"""

from __future__ import annotations

from repro.core.dictionary import PerturbationDictionary

from conftest import TABLE1_SENTENCES, record_result


def build_table1_dictionary() -> PerturbationDictionary:
    return PerturbationDictionary.from_corpus(list(TABLE1_SENTENCES))


def test_table1_hashmap(benchmark):
    dictionary = benchmark(build_table1_dictionary)
    hashmap = dictionary.hashmap(phonetic_level=1)

    # --- the paper's groupings -------------------------------------------
    assert hashmap["TH000"] == {"the", "thee"}
    assert hashmap["DI630"] == {"dirty", "dirrty"}
    republicans_key = dictionary.encoder(1).encode("republicans")
    assert hashmap[republicans_key] == {"republicans", "repubLIEcans", "republic@@ns"}
    assert len(hashmap) == 3

    rows = [
        {"key": key, "value": sorted(tokens)} for key, tokens in sorted(hashmap.items())
    ]
    record_result(
        "table1",
        {
            "description": "H1 extracted from the paper's three example sentences",
            "paper_keys": ["TH000", "DI630", "RE4425 (paper; see EXPERIMENTS.md)"],
            "reproduced_rows": rows,
        },
    )
    print("\nTable I — reproduced hash-map H1:")
    for row in rows:
        print(f"  {row['key']:>10}  {{{', '.join(row['value'])}}}")
