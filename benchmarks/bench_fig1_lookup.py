"""Experiment ``fig1`` — Figure 1: Look Up word cloud for "amazon".

Figure 1 of the paper shows the Look Up output for the token "amazon" as a
3D spherical word cloud of human-written perturbations.  This benchmark runs
Look Up (k=1, d=3 — the paper defaults) for "amazon" and the other keywords
the paper discusses, exports the word-cloud payload, and times the Look Up
hot path (cache disabled so the timing reflects the real query).
"""

from __future__ import annotations

from repro.core.lookup import LookupEngine
from repro.viz import build_word_cloud

from conftest import record_result

KEYWORDS = ("amazon", "democrats", "republicans", "vaccine")


def test_fig1_lookup_wordcloud(benchmark, cryptext_system):
    # A cache-free engine so the timing reflects the real index probe + SMS
    # filtering, not a cache hit.
    engine = LookupEngine(
        cryptext_system.dictionary,
        config=cryptext_system.config.with_overrides(cache_enabled=False),
    )

    def run_lookups():
        return {keyword: engine.look_up(keyword) for keyword in KEYWORDS}

    results = benchmark(run_lookups)

    payload = {}
    for keyword, result in results.items():
        assert result.matches, f"no matches for {keyword!r}"
        cloud = build_word_cloud(result)
        payload[keyword] = {
            "soundex_key": result.soundex_key,
            "num_perturbations": len(result.perturbations),
            "top_perturbations": list(result.perturbation_tokens()[:10]),
            "word_cloud_items": [item.to_dict() for item in cloud[:10]],
        }
        # the figure's premise: the wild corpus contains perturbations of
        # every showcased keyword
        assert payload[keyword]["num_perturbations"] >= 1

    record_result(
        "fig1",
        {
            "description": "Look Up (k=1, d=3) word clouds for the paper's showcase keywords",
            "keywords": payload,
        },
    )
    print("\nFigure 1 — Look Up perturbations (top 10 per keyword):")
    for keyword, data in payload.items():
        print(f"  {keyword:>12}: {', '.join(data['top_perturbations'])}")
