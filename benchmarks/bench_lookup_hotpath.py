"""Look Up hot-path benchmark: trie-compiled matching vs the linear scan.

The Look Up function answers every query by scoring a whole sound bucket
against the query's spelling.  This benchmark measures single-query
throughput (queries/sec) of the two matching strategies over synthetic
sound buckets of 100 / 1 000 / 10 000 entries at d ∈ {1, 2, 3}:

* **linear** — one banded ``bounded_levenshtein`` DP per bucket entry (the
  pre-compiled behavior, still available via ``compiled_buckets=False``);
* **compiled** — one trie traversal per query over the
  :class:`~repro.core.matcher.CompiledBucket` (shared DP rows across common
  prefixes, dead-state subtree pruning, length pre-partition).

Buckets are built from random edit-perturbations of a few stem words, the
shape real sound buckets have (many near-variants of the same spellings).
Every timed configuration first asserts the two strategies return identical
distance sets, and the smoke mode additionally replays the golden
regression corpus end to end with the flag on and off.

Run as a script (not collected by pytest)::

    PYTHONPATH=src python benchmarks/bench_lookup_hotpath.py            # full sweep
    PYTHONPATH=src python benchmarks/bench_lookup_hotpath.py --smoke    # CI guard

The full run writes ``benchmarks/results/lookup_hotpath.json`` and asserts
the acceptance criterion (compiled >= 3x linear on 1k-entry buckets at
d=3); the smoke run asserts a conservative speedup plus golden-corpus
equality so divergence or a hot-path regression fails the job.
"""

from __future__ import annotations

import argparse
import json
import random
import string
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))  # for tests.test_golden_regression

from repro.core.dictionary import DictionaryEntry
from repro.core.edit_distance import bounded_levenshtein
from repro.core.matcher import CompiledBucket

RESULTS_PATH = Path(__file__).parent / "results" / "lookup_hotpath.json"

STEMS = (
    "vaccine", "republicans", "democrats", "depression", "neighborhood",
    "mandate", "suicide", "amazon", "listening", "perturbation",
)
ALPHABET = string.ascii_lowercase + "013457@$-"


def _perturb(word: str, rng: random.Random, max_edits: int = 3) -> str:
    characters = list(word)
    for _ in range(rng.randint(0, max_edits)):
        operation = rng.randint(0, 2)
        position = rng.randrange(len(characters))
        if operation == 0:
            characters[position] = rng.choice(ALPHABET)
        elif operation == 1:
            characters.insert(position, rng.choice(ALPHABET))
        elif len(characters) > 1:
            del characters[position]
    return "".join(characters)


def build_bucket(size: int, rng: random.Random) -> list[DictionaryEntry]:
    """A synthetic sound bucket: ``size`` distinct near-variants of the stems."""
    tokens: dict[str, None] = {}
    while len(tokens) < size:
        tokens[_perturb(rng.choice(STEMS), rng)] = None
    return [
        DictionaryEntry(
            token=token, canonical=token, keys={}, count=1, is_word=False, sources=()
        )
        for token in tokens
    ]


def build_queries(num: int, rng: random.Random) -> list[str]:
    """Half exact stems, half fresh perturbations (hits, misses, near-misses)."""
    queries = [rng.choice(STEMS) for _ in range(num // 2)]
    queries += [_perturb(rng.choice(STEMS), rng) for _ in range(num - len(queries))]
    return queries


def linear_match(
    query: str, entries: list[DictionaryEntry], bound: int
) -> dict[int, int]:
    """The reference per-entry scan (what build_result runs with the flag off)."""
    distances = {}
    for index, entry in enumerate(entries):
        distance = bounded_levenshtein(query, entry.token_lower, bound)
        if distance is not None:
            distances[index] = distance
    return distances


def time_strategy(run, queries: list[str], repetitions: int) -> float:
    start = time.perf_counter()
    for _ in range(repetitions):
        for query in queries:
            run(query)
    elapsed = time.perf_counter() - start
    return (repetitions * len(queries)) / elapsed


def run_benchmark(
    bucket_sizes: tuple[int, ...],
    distances: tuple[int, ...],
    num_queries: int,
    repetitions: int,
    seed: int,
) -> dict:
    rng = random.Random(seed)
    report: dict = {
        "num_queries": num_queries,
        "repetitions": repetitions,
        "buckets": {},
    }
    for size in bucket_sizes:
        entries = build_bucket(size, rng)
        compiled = CompiledBucket(entries)
        queries = [query.lower() for query in build_queries(num_queries, rng)]
        report["buckets"][str(size)] = {}
        for bound in distances:
            for query in queries:
                expected = linear_match(query, entries, bound)
                actual = compiled.match(query, bound)
                assert actual == expected, (
                    f"compiled matcher diverged from linear scan "
                    f"(bucket={size}, d={bound}, query={query!r})"
                )
            linear_qps = time_strategy(
                lambda query: linear_match(query, entries, bound), queries, repetitions
            )
            compiled_qps = time_strategy(
                lambda query: compiled.match(query, bound), queries, repetitions
            )
            speedup = compiled_qps / linear_qps
            report["buckets"][str(size)][f"d{bound}"] = {
                "linear_qps": linear_qps,
                "compiled_qps": compiled_qps,
                "speedup": speedup,
            }
            print(
                f"bucket {size:6d}  d={bound}: linear {linear_qps:9.0f} q/s, "
                f"compiled {compiled_qps:9.0f} q/s ({speedup:.1f}x)",
                file=sys.stderr,
            )
    return report


def check_golden_corpus() -> int:
    """Replay the golden regression corpus with the flag on and off.

    Delegates to the tier-1 test module's comparison (one implementation,
    two guards); any field-level divergence between the compiled and
    linear Look Up results raises.  Returns the comparison count.
    """
    from tests.test_golden_regression import compare_compiled_and_linear_lookups

    return compare_compiled_and_linear_lookups(distances=(1, 2, 3))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=[100, 1_000, 10_000],
        help="bucket sizes to sweep",
    )
    parser.add_argument(
        "--distances", type=int, nargs="+", default=[1, 2, 3],
        help="edit-distance bounds to sweep",
    )
    parser.add_argument("--queries", type=int, default=200, help="queries per config")
    parser.add_argument("--reps", type=int, default=3, help="timing repetitions")
    parser.add_argument("--seed", type=int, default=20230116)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run: golden-corpus equality + a conservative speedup bound",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        compared = check_golden_corpus()
        print(f"golden corpus: {compared} compiled/linear comparisons ok", file=sys.stderr)
        report = run_benchmark(
            bucket_sizes=(1_000,), distances=(3,), num_queries=60,
            repetitions=1, seed=args.seed,
        )
        speedup = report["buckets"]["1000"]["d3"]["speedup"]
        assert speedup >= 1.5, (
            f"compiled Look Up hot path regressed: only {speedup:.2f}x over the "
            f"linear scan on 1k-entry buckets at d=3"
        )
        print(f"smoke: compiled/linear = {speedup:.1f}x (>= 1.5x ok)", file=sys.stderr)
        return 0

    report = run_benchmark(
        bucket_sizes=tuple(args.sizes),
        distances=tuple(args.distances),
        num_queries=args.queries,
        repetitions=args.reps,
        seed=args.seed,
    )
    report["golden_comparisons"] = check_golden_corpus()
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(report, indent=2, sort_keys=True))
    print(f"wrote {RESULTS_PATH}", file=sys.stderr)

    if 1_000 in args.sizes and 3 in args.distances:
        speedup = report["buckets"]["1000"]["d3"]["speedup"]
        assert speedup >= 3.0, (
            f"acceptance criterion failed: compiled matching on 1k-entry buckets "
            f"at d=3 is {speedup:.2f}x the linear scan (need >= 3x)"
        )
        print(f"acceptance: compiled/linear at 1k, d=3 = {speedup:.1f}x (>= 3x ok)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
