"""Experiment ``usecase_lookup`` — §III-B: keyword enrichment on social search.

The paper reports that searching Twitter (Nov. 2021) with the plain keyword
"democrats" yields 67% negative tweets, but 87% when the query also includes
the keyword's perturbations from Look Up; likewise 66% -> 84% for
"republicans" and 46% -> 61% for "vaccine".

Against the simulated platform, this benchmark runs the same study: plain
search vs perturbation-enriched search for the three keywords, comparing
match counts and negative-sentiment shares.  The absolute percentages depend
on the synthetic corpus, but the paper's *shape* must hold: enrichment finds
more posts and a more negative slice for every keyword.
"""

from __future__ import annotations

from repro.social import SocialListener

from conftest import record_result

KEYWORDS = ("democrats", "republicans", "vaccine")

#: The paper's reported negative shares (plain, enriched) per keyword.
PAPER_NUMBERS = {
    "democrats": (0.67, 0.87),
    "republicans": (0.66, 0.84),
    "vaccine": (0.46, 0.61),
}


def test_usecase_keyword_enrichment(benchmark, cryptext_system, twitter_platform):
    listener = SocialListener(twitter_platform, cryptext_system.lookup_engine)

    def run_study():
        return {
            keyword: listener.keyword_enrichment_comparison(keyword)
            for keyword in KEYWORDS
        }

    comparisons = benchmark(run_study)

    rows = []
    for keyword in KEYWORDS:
        comparison = comparisons[keyword]
        paper_plain, paper_enriched = PAPER_NUMBERS[keyword]
        # shape assertions: enrichment widens the net and skews negative
        assert comparison["enriched_matches"] > comparison["plain_matches"], keyword
        assert (
            comparison["enriched_negative_share"] > comparison["plain_negative_share"]
        ), keyword
        rows.append(
            {
                "keyword": keyword,
                "plain_matches": comparison["plain_matches"],
                "enriched_matches": comparison["enriched_matches"],
                "plain_negative_share": round(comparison["plain_negative_share"], 3),
                "enriched_negative_share": round(
                    comparison["enriched_negative_share"], 3
                ),
                "paper_plain_negative_share": paper_plain,
                "paper_enriched_negative_share": paper_enriched,
            }
        )

    record_result(
        "usecase_lookup",
        {
            "description": "Keyword enrichment: plain vs perturbation-enriched search",
            "rows": rows,
        },
    )
    print("\n§III-B use case — negative share of matched posts:")
    print("  keyword       plain -> enriched   (paper: plain -> enriched)")
    for row in rows:
        print(
            f"  {row['keyword']:<12} {row['plain_negative_share']:.2f} -> "
            f"{row['enriched_negative_share']:.2f}   "
            f"(paper: {row['paper_plain_negative_share']:.2f} -> "
            f"{row['paper_enriched_negative_share']:.2f})"
        )
