"""Experiment ``ablation_coherency`` — the masked-LM coherency ranking.

Paper §III-C ranks candidate corrections "by approximating how they fit into
their surrounding local context ... utiliz[ing] a large pre-trained masked
language model G to calculate a coherency score".  This ablation quantifies
what that context-aware ranking buys over the context-free fallback (rank by
edit distance, then frequency): accuracy of the top-1 correction on
ambiguous perturbed tokens, i.e. tokens whose Soundex bucket contains more
than one candidate English word.
"""

from __future__ import annotations

from repro import CrypText
from repro.core.normalizer import Normalizer
from repro.datasets import build_social_corpus, corpus_texts

from conftest import record_result

#: Ambiguous test cases: (sentence with a perturbed token, perturbed token,
#: expected correction).  Every perturbed token's phonetic bucket contains at
#: least two plausible English words, so ranking matters.
AMBIGUOUS_CASES = (
    ("the demokrats won the election", "demokrats", "democrats"),
    ("the demokrat won the election", "demokrat", "democrat"),
    ("he made a clear pont about taxes", "pont", "point"),
    ("the goverment raised the taxes", "goverment", "government"),
    ("the vacine rollout continues", "vacine", "vaccine"),
    ("the hose voted on the bill", "hose", "house"),
    ("the presidant spoke last night", "presidant", "president"),
    ("a new stady about the vaccine", "stady", "study"),
    # genuine ties: two English words share the phonetic bucket at the same
    # edit distance, so only context can pick the right correction
    ("the book is over theer on the table", "theer", "there"),
    ("she felt weeak after the flu", "weeak", "weak"),
    ("they will vote next weeek on the bill", "weeek", "week"),
    ("he told a long stor about the war", "stor", "story"),
)


def test_ablation_coherency_ranking(benchmark):
    corpus = corpus_texts(build_social_corpus(num_posts=1200, seed=99))
    # add clean sentences covering the ambiguous vocabulary so the n-gram
    # scorer has context statistics for them
    corpus += [
        "the democrats won the election last night",
        "the democrat won the election in the city",
        "he made a clear point about taxes and jobs",
        "the government raised the taxes again",
        "the vaccine rollout continues across the country",
        "the house voted on the bill this week",
        "the president spoke last night on television",
        "a new study about the vaccine was published",
        "the book is over there on the table",
        "they put their book on the table",
        "she felt weak after the flu",
        "they will vote next week on the bill",
        "last week the doctors returned to work",
        "he told a long story about the war",
        "the story about the election was everywhere",
    ]
    with_scorer = CrypText.from_corpus(corpus, train_scorer=True)
    without_scorer = Normalizer(
        with_scorer.dictionary, scorer=None, config=with_scorer.config
    )

    def run_both():
        scores = {}
        for name, normalizer in (
            ("with_coherency", with_scorer.normalizer),
            ("edit_distance_only", without_scorer),
        ):
            correct = 0
            for sentence, perturbed, expected in AMBIGUOUS_CASES:
                result = normalizer.normalize(sentence)
                fixed = {
                    correction.original: correction.corrected
                    for correction in result.corrections
                }
                if fixed.get(perturbed, perturbed).lower() == expected:
                    correct += 1
            scores[name] = correct / len(AMBIGUOUS_CASES)
        return scores

    scores = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # shape: context-aware ranking is at least as accurate as the fallback,
    # and resolves a solid share of the ambiguous cases
    assert scores["with_coherency"] >= scores["edit_distance_only"]
    assert scores["with_coherency"] >= 0.6

    record_result(
        "ablation_coherency",
        {
            "description": "Top-1 correction accuracy on ambiguous perturbations",
            "num_cases": len(AMBIGUOUS_CASES),
            "accuracy": {name: round(value, 3) for name, value in scores.items()},
        },
    )
    print("\nAblation coherency — top-1 correction accuracy on ambiguous tokens:")
    for name, value in scores.items():
        print(f"  {name:<20} {value:.2f}")
