"""Exception hierarchy for the CrypText reproduction.

Every error raised by :mod:`repro` derives from :class:`CrypTextError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems, storage problems,
API-layer problems, and data problems.
"""

from __future__ import annotations


class CrypTextError(Exception):
    """Base class for every error raised by the library."""


class ConfigurationError(CrypTextError):
    """Raised when a configuration value is out of its legal range."""


class TokenizationError(CrypTextError):
    """Raised when an input text cannot be tokenized."""


class EncodingError(CrypTextError):
    """Raised when a token cannot be phonetically encoded."""


class DictionaryError(CrypTextError):
    """Raised on invalid operations against the perturbation dictionary."""


class StorageError(CrypTextError):
    """Base class for document-store and cache failures."""


class DuplicateKeyError(StorageError):
    """Raised when inserting a document whose ``_id`` already exists."""


class DocumentNotFoundError(StorageError):
    """Raised when a requested document id does not exist."""


class QueryError(StorageError):
    """Raised when a filter/query document is malformed."""


class PersistenceError(StorageError):
    """Raised when loading or saving a collection to disk fails."""


class SnapshotError(PersistenceError):
    """Raised when a warm-start snapshot is missing, corrupt, or incompatible.

    Loaders that were asked for a *graceful* load catch this and fall back
    to recompilation; strict loaders let it propagate.
    """


class WalError(PersistenceError):
    """Raised when the segmented change log is misused or unreadable.

    A torn tail (a record cut short by a crash mid-append) is *not* an
    error — replay stops cleanly before it — so this is reserved for real
    misuse: appending to a closed log, an unwritable directory, or a
    segment whose interior (not tail) fails its checksum.
    """


class CacheError(StorageError):
    """Raised on invalid cache configuration or usage."""


class LanguageModelError(CrypTextError):
    """Raised when the language model is asked to score before training."""


class ClassifierError(CrypTextError):
    """Raised when a classifier is used before it has been fitted."""


class PlatformError(CrypTextError):
    """Raised on invalid operations against the simulated social platform."""


class CrawlerError(CrypTextError):
    """Raised when the stream crawler is misconfigured."""


class AuthenticationError(CrypTextError):
    """Raised when an API request carries a missing or invalid token."""


class AuthorizationError(CrypTextError):
    """Raised when an authenticated principal lacks the required scope."""


class RateLimitExceededError(CrypTextError):
    """Raised when a client exceeds its API rate limit."""


class ServiceError(CrypTextError):
    """Raised for malformed requests against the in-process service layer."""


class ResilienceError(CrypTextError):
    """Base class for the resilience subsystem (faults, policies, supervision)."""


class InjectedFault(ResilienceError):
    """A deliberately injected failure from the fault registry.

    Raised by an armed :class:`~repro.resilience.faults.FaultInjector` point;
    never seen in production (the registry ships disarmed).  Chaos tests
    assert the system degrades exactly as it would for the organic failure
    the injection simulates.
    """


class InjectedIOError(InjectedFault, OSError):
    """An injected fault that presents as an I/O error.

    Derives from :class:`OSError` so the *existing* transient-IO handling
    (WAL append rollback, tailer read retries) exercises its real error
    path — the injection is indistinguishable from a failing disk at the
    point of the fault.
    """


class TornWrite(InjectedFault):
    """An injected torn write: persist a partial frame, then die.

    Cooperative fault points (the WAL append, the snapshot envelope writer)
    catch this, write ``keep_bytes`` of the payload they were about to
    persist, and then fail as if the process crashed mid-write — producing
    exactly the on-disk state torn-tail repair and checksum validation
    exist to survive.
    """

    def __init__(self, keep_bytes: "int | None" = None) -> None:
        super().__init__(f"injected torn write (keep_bytes={keep_bytes})")
        self.keep_bytes = keep_bytes


class DeadlineExceededError(CrypTextError):
    """Raised when a request outlives its propagated deadline."""


class CircuitOpenError(ResilienceError):
    """Raised when a call is refused because its circuit breaker is open."""


class ReplicasUnavailableError(CrypTextError):
    """Raised under the fail-fast degradation policy when no replica is healthy.

    The service layer maps this to a 503: every follower is stale, broken,
    or circuit-open, and the configured ``degraded_read_policy`` forbids
    both serving stale data and falling back to the leader.
    """


class DatasetError(CrypTextError):
    """Raised when a synthetic dataset builder receives invalid parameters."""


class VisualizationError(CrypTextError):
    """Raised when a visualization export receives inconsistent data."""
