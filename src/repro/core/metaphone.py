"""A Metaphone-style phonetic encoder (alternative to the customized Soundex).

The paper keys its database with a customized Soundex; reviewers of phonetic
matching systems usually ask how a richer algorithm of the Metaphone family
would behave.  This module provides a compact, dependency-free Metaphone
variant with the same interface as :class:`~repro.core.soundex.CustomSoundex`
(``encode`` / ``encode_or_none`` / ``canonicalize`` / ``same_sound`` and a
phonetic-level prefix), so it can be swapped into experiments that study the
encoding choice.  It reuses the same canonicalization (visual folding,
separator stripping, accent folding), because recognizing leet/homoglyph
substitutions is orthogonal to the phonetic rule set.

The rule set is a simplified Metaphone: it maps consonant clusters to a
phonetic alphabet (e.g. ``PH -> F``, ``CK -> K``, ``TIO -> X``), drops vowels
after the prefix, and collapses duplicates.  It is *not* a full Double
Metaphone implementation (no secondary codes), which the experiments here do
not need.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EncodingError
from .soundex import CustomSoundex

_VOWELS = set("aeiou")


def _metaphone_transform(word: str) -> str:
    """Apply the simplified Metaphone consonant rules to a canonical word."""
    if not word:
        return ""
    output: list[str] = []
    length = len(word)
    index = 0
    while index < length:
        char = word[index]
        nxt = word[index + 1] if index + 1 < length else ""
        prev = word[index - 1] if index > 0 else ""

        # skip duplicate adjacent letters (except 'c' as in "accident")
        if char == prev and char != "c":
            index += 1
            continue

        if char in _VOWELS:
            # vowels are kept only at the very beginning of the word
            if index == 0:
                output.append(char.upper())
            index += 1
            continue

        if char == "b":
            # silent terminal B after M ("comb")
            if not (index == length - 1 and prev == "m"):
                output.append("B")
        elif char == "c":
            if word[index : index + 3] == "cia":
                output.append("X")
            elif nxt == "h":
                output.append("X")
                index += 1
            elif nxt in ("i", "e", "y"):
                output.append("S")
            else:
                output.append("K")
        elif char == "d":
            if nxt == "g" and word[index + 2 : index + 3] in ("e", "i", "y"):
                output.append("J")
                index += 1
            else:
                output.append("T")
        elif char == "g":
            if nxt == "h":
                # GH is silent before a consonant / at word end ("night")
                if index + 2 >= length or word[index + 2] not in _VOWELS:
                    index += 1
                else:
                    output.append("K")
                    index += 1
            elif nxt == "n":
                # GN: silent G ("gnome", "sign")
                pass
            elif nxt in ("i", "e", "y"):
                output.append("J")
            else:
                output.append("K")
        elif char == "h":
            # H is kept only between vowel and vowel-ish sound
            if prev in _VOWELS and nxt in _VOWELS:
                output.append("H")
        elif char == "j":
            output.append("J")
        elif char == "k":
            if prev != "c":
                output.append("K")
        elif char == "l":
            output.append("L")
        elif char == "m":
            output.append("M")
        elif char == "n":
            output.append("N")
        elif char == "p":
            if nxt == "h":
                output.append("F")
                index += 1
            else:
                output.append("P")
        elif char == "q":
            output.append("K")
        elif char == "r":
            output.append("R")
        elif char == "s":
            if nxt == "h":
                output.append("X")
                index += 1
            elif word[index : index + 3] in ("sio", "sia"):
                output.append("X")
            else:
                output.append("S")
        elif char == "t":
            if nxt == "h":
                output.append("0")  # theta
                index += 1
            elif word[index : index + 3] in ("tio", "tia"):
                output.append("X")
            else:
                output.append("T")
        elif char == "v":
            output.append("F")
        elif char == "w":
            if nxt in _VOWELS:
                output.append("W")
        elif char == "x":
            output.append("KS")
        elif char == "y":
            if nxt in _VOWELS:
                output.append("Y")
        elif char == "z":
            output.append("S")
        # any other character (digits already folded away) is ignored
        index += 1

    # collapse adjacent duplicates produced by the mapping
    collapsed: list[str] = []
    for symbol in "".join(output):
        if not collapsed or collapsed[-1] != symbol:
            collapsed.append(symbol)
    return "".join(collapsed)


@dataclass(frozen=True)
class MetaphoneEncoder:
    """Metaphone-style encoder with CrypText's canonicalization and ``k`` prefix.

    Parameters
    ----------
    phonetic_level:
        Number of extra leading characters (beyond the first) kept verbatim,
        mirroring :class:`~repro.core.soundex.CustomSoundex`.
    max_code_length:
        Truncate the phonetic part to this many symbols (0 = unlimited).
    """

    phonetic_level: int = 1
    max_code_length: int = 8

    def __post_init__(self) -> None:
        if self.phonetic_level < 0:
            raise EncodingError(
                f"phonetic_level must be >= 0, got {self.phonetic_level}"
            )
        if self.max_code_length < 0:
            raise EncodingError(
                f"max_code_length must be >= 0, got {self.max_code_length}"
            )

    # the canonicalization is shared with the customized Soundex
    def canonicalize(self, token: str) -> str:
        """Fold a raw token onto its canonical letter form (shared rules)."""
        return CustomSoundex(phonetic_level=self.phonetic_level).canonicalize(token)

    def encode(self, token: str) -> str:
        """Encode ``token`` as ``PREFIX`` + Metaphone symbols."""
        canonical = self.canonicalize(token)
        if not canonical:
            raise EncodingError(
                f"token {token!r} has no phonetic content after canonicalization"
            )
        prefix_length = min(self.phonetic_level + 1, len(canonical))
        prefix = canonical[:prefix_length].upper()
        if len(prefix) < self.phonetic_level + 1:
            prefix = prefix + "0" * (self.phonetic_level + 1 - len(prefix))
        remainder = canonical[prefix_length:]
        code = _metaphone_transform(remainder)
        if self.max_code_length:
            code = code[: self.max_code_length]
        return prefix + code

    def encode_or_none(self, token: str) -> str | None:
        """Like :meth:`encode` but returning ``None`` for unencodable tokens."""
        try:
            return self.encode(token)
        except EncodingError:
            return None

    def same_sound(self, first: str, second: str) -> bool:
        """Whether two tokens share an encoding at this phonetic level."""
        first_code = self.encode_or_none(first)
        second_code = self.encode_or_none(second)
        return first_code is not None and first_code == second_code
