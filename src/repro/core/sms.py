"""The SMS property: same Sound, same Meaning, different Spelling.

Paper §III-B defines a *perturbation* of a word as a token that

* has a phonetically similar **S**\\ ound — captured by equality of the
  customized Soundex encodings at phonetic level ``k``;
* is perceived with the same **M**\\ eaning — approximated by a small
  Levenshtein edit distance ``d`` between the canonicalized spellings
  (there is no reliable semantic similarity for out-of-vocabulary tokens);
* has a different **S**\\ pelling — the raw strings differ.

:class:`SMSCheck` bundles the two hyper-parameters ``(k, d)`` and produces a
:class:`SMSResult` explaining which of the three conditions held, so the
Look Up function can filter candidates and the tests/benchmarks can report
*why* a pair was accepted or rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import DEFAULT_EDIT_DISTANCE, DEFAULT_PHONETIC_LEVEL, CrypTextConfig
from .edit_distance import bounded_levenshtein, bounded_osa
from .soundex import CustomSoundex


@dataclass(frozen=True)
class SMSResult:
    """Outcome of an SMS-property evaluation for an ordered pair of tokens.

    Attributes
    ----------
    original / candidate:
        The pair that was tested (original word, candidate perturbation).
    same_sound:
        Whether the customized Soundex encodings matched at level ``k``.
    different_spelling:
        Whether the raw spellings differ (case-insensitively equal spellings
        with different case still count as different spelling, because
        emphasis capitalization such as "democRATs" is a perturbation).
    edit_distance:
        The Levenshtein distance between canonical forms, or ``None`` when it
        exceeded the bound ``d`` (in which case the pair fails).
    is_perturbation:
        The conjunction of the three conditions.
    """

    original: str
    candidate: str
    same_sound: bool
    different_spelling: bool
    edit_distance: int | None
    is_perturbation: bool

    def explain(self) -> str:
        """Human-readable explanation used by examples and error messages."""
        sound = "same sound" if self.same_sound else "different sound"
        spelling = (
            "different spelling" if self.different_spelling else "identical spelling"
        )
        if self.edit_distance is None:
            distance = "edit distance above bound"
        else:
            distance = f"edit distance {self.edit_distance}"
        verdict = "perturbation" if self.is_perturbation else "not a perturbation"
        return (
            f"{self.candidate!r} vs {self.original!r}: {sound}, {spelling}, "
            f"{distance} -> {verdict}"
        )


class SMSCheck:
    """Evaluate the SMS property for token pairs.

    Parameters
    ----------
    phonetic_level:
        The ``k`` parameter of the customized Soundex encoding.
    max_edit_distance:
        The ``d`` bound on the Levenshtein distance between canonical forms.
    use_transpositions:
        If ``True`` the Damerau (optimal-string-alignment) distance is used
        instead of plain Levenshtein, so a single adjacent transposition
        ("demorcats") costs one edit.
    compare_canonical:
        If ``True`` (default) the edit distance is computed between the
        *canonicalized* forms (visual folding, separators stripped), which is
        what makes "dem0cr@ts" one edit-distance-0 perturbation of
        "democrats"; set to ``False`` to compare raw strings.
    """

    def __init__(
        self,
        phonetic_level: int = DEFAULT_PHONETIC_LEVEL,
        max_edit_distance: int = DEFAULT_EDIT_DISTANCE,
        use_transpositions: bool = False,
        compare_canonical: bool = True,
    ) -> None:
        self.phonetic_level = phonetic_level
        self.max_edit_distance = max_edit_distance
        self.use_transpositions = use_transpositions
        self.compare_canonical = compare_canonical
        self._encoder = CustomSoundex(phonetic_level=phonetic_level)

    @classmethod
    def from_config(cls, config: CrypTextConfig, compare_canonical: bool = True) -> "SMSCheck":
        """Build a check consuming the config's ``(k, d)`` and distance policy.

        This is the one switch shared by Look Up, Normalization and the SMS
        filter: all three read ``config.use_transpositions`` to decide whether
        an adjacent swap costs one edit or two.
        """
        return cls(
            phonetic_level=config.phonetic_level,
            max_edit_distance=config.edit_distance,
            use_transpositions=config.use_transpositions,
            compare_canonical=compare_canonical,
        )

    @property
    def encoder(self) -> CustomSoundex:
        """The Soundex encoder used for the Sound condition."""
        return self._encoder

    def _distance(self, original: str, candidate: str) -> int | None:
        if self.compare_canonical:
            left = self._encoder.canonicalize(original)
            right = self._encoder.canonicalize(candidate)
        else:
            left = original.lower()
            right = candidate.lower()
        # Both policies run the banded kernel: the transposition mode used to
        # pay a full unbounded O(n*m) OSA table per pair even though every
        # caller only asks "is it within d".
        if self.use_transpositions:
            return bounded_osa(left, right, self.max_edit_distance)
        return bounded_levenshtein(left, right, self.max_edit_distance)

    def evaluate(self, original: str, candidate: str) -> SMSResult:
        """Evaluate the SMS property for ``(original, candidate)``."""
        same_sound = self._encoder.same_sound(original, candidate)
        different_spelling = original != candidate
        edit_distance = self._distance(original, candidate)
        is_perturbation = bool(
            same_sound and different_spelling and edit_distance is not None
        )
        return SMSResult(
            original=original,
            candidate=candidate,
            same_sound=same_sound,
            different_spelling=different_spelling,
            edit_distance=edit_distance,
            is_perturbation=is_perturbation,
        )

    def is_perturbation(self, original: str, candidate: str) -> bool:
        """Shortcut returning only the final verdict."""
        return self.evaluate(original, candidate).is_perturbation

    def filter_perturbations(
        self, original: str, candidates: list[str] | tuple[str, ...]
    ) -> list[str]:
        """Return the candidates that are SMS perturbations of ``original``."""
        return [
            candidate
            for candidate in candidates
            if self.is_perturbation(original, candidate)
        ]
