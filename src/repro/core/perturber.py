"""The Perturbation function: text manipulation with human-written perturbations.

Paper §III-D: given an input text ``x`` and a manipulation ratio ``r``,
CrypText randomly samples a subset of tokens of ``x`` according to ``r`` and
replaces each selected token with a perturbation randomly drawn from the
Look Up function's output for that token.  Both case-sensitive and
case-insensitive perturbations are supported.

Because every replacement comes from the dictionary of *observed* tokens,
the perturbations applied here are guaranteed to be realizable human-written
spellings — the property that distinguishes CrypText from machine-generated
attack baselines (TextBugger, VIPER, DeepWordBug) when evaluating model
robustness (Figure 4).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..config import CrypTextConfig, DEFAULT_CONFIG
from ..errors import CrypTextError
from ..text.tokenizer import Token, Tokenizer, detokenize
from .categories import PerturbationCategory
from .lookup import LookupEngine, PerturbationMatch


@dataclass(frozen=True)
class PerturbedToken:
    """One token that was replaced in the input text."""

    original: str
    perturbed: str
    start: int
    end: int
    category: PerturbationCategory
    edit_distance: int

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer / GUI highlighting."""
        return {
            "original": self.original,
            "perturbed": self.perturbed,
            "start": self.start,
            "end": self.end,
            "category": self.category.value,
            "edit_distance": self.edit_distance,
        }


@dataclass(frozen=True)
class PerturbationOutcome:
    """Result of perturbing one input text."""

    original_text: str
    perturbed_text: str
    ratio: float
    requested_replacements: int
    replacements: tuple[PerturbedToken, ...] = field(default_factory=tuple)

    @property
    def achieved_ratio(self) -> float:
        """Fraction of word tokens actually replaced (<= requested ratio when
        the dictionary lacks perturbations for some sampled tokens)."""
        if self.requested_replacements == 0:
            return 0.0
        return len(self.replacements) / max(self._word_token_count(), 1)

    def _word_token_count(self) -> int:
        return len(Tokenizer().word_tokens(self.original_text))

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer."""
        return {
            "original_text": self.original_text,
            "perturbed_text": self.perturbed_text,
            "ratio": self.ratio,
            "requested_replacements": self.requested_replacements,
            "replacements": [replacement.to_dict() for replacement in self.replacements],
        }


class Perturber:
    """Replaces tokens of an input text with observed human-written perturbations.

    Parameters
    ----------
    lookup:
        The Look Up engine supplying ``P_x`` for each sampled token.
    config:
        Default ratio, case sensitivity, hyper-parameters and RNG seed.
    rng:
        Optional :class:`random.Random`; a seeded one is created from
        ``config.seed`` when omitted so results are reproducible.
    """

    def __init__(
        self,
        lookup: LookupEngine,
        config: CrypTextConfig = DEFAULT_CONFIG,
        rng: random.Random | None = None,
    ) -> None:
        self.lookup = lookup
        self.config = config
        self.rng = rng if rng is not None else random.Random(config.seed)
        self.tokenizer = Tokenizer(lowercase=False)

    # ------------------------------------------------------------------ #
    def _candidate_perturbations(
        self, token: Token, case_sensitive: bool, allow_word_targets: bool
    ) -> list[PerturbationMatch]:
        result = self.lookup.look_up(
            token.text,
            case_sensitive=case_sensitive,
        )
        candidates = [
            match
            for match in result.perturbations
            if match.token.lower() != token.text.lower() or case_sensitive
        ]
        if not allow_word_targets:
            # A replacement that is itself a correctly-spelled English word
            # ("democrats" -> "democratic") is a different word, not a
            # perturbation; keep only noisy spellings unless asked otherwise.
            candidates = [match for match in candidates if not match.is_word]
        # Never "perturb" a token into its own identical spelling.
        return [match for match in candidates if match.token != token.text]

    def _weighted_choice(self, matches: list[PerturbationMatch]) -> PerturbationMatch:
        total = sum(match.count for match in matches)
        if total <= 0:
            return self.rng.choice(matches)
        threshold = self.rng.uniform(0, total)
        cumulative = 0.0
        for match in matches:
            cumulative += match.count
            if cumulative >= threshold:
                return match
        return matches[-1]

    def perturb(
        self,
        text: str,
        ratio: float | None = None,
        case_sensitive: bool | None = None,
        weighted_by_frequency: bool = True,
        protected_tokens: frozenset[str] | set[str] = frozenset(),
        allow_word_targets: bool = False,
        fill_target: bool = False,
    ) -> PerturbationOutcome:
        """Perturb ``text`` at manipulation ratio ``ratio``.

        Parameters
        ----------
        text:
            The input text ``x``.
        ratio:
            Fraction of word tokens to replace (defaults to the configured
            ratio; the paper demonstrates 15%, 25% and 50%).
        case_sensitive:
            Whether to draw case-sensitive perturbations (default from
            config).
        weighted_by_frequency:
            Sample perturbations proportionally to their observed frequency
            (more realistic); uniform sampling when ``False``.
        protected_tokens:
            Lowercased tokens that must never be replaced (e.g. named
            entities a caller wants to preserve).
        allow_word_targets:
            Also allow replacements that are correctly-spelled English words
            sharing the sound bucket (off by default: such replacements are
            synonymy-by-sound, not perturbation).
        fill_target:
            The paper's procedure (default ``False``) samples ``ceil(r * n)``
            tokens first and replaces only those that have observed
            perturbations, so the achieved ratio can fall short of ``r``.
            With ``fill_target=True`` additional tokens are drawn until the
            requested number of replacements is reached (or no candidates
            remain), which concentrates manipulation on perturbable tokens.
        """
        requested_ratio = self.config.perturbation_ratio if ratio is None else ratio
        if not 0.0 <= requested_ratio <= 1.0:
            raise CrypTextError(f"ratio must lie in [0, 1], got {requested_ratio}")
        sensitive = (
            self.config.case_sensitive if case_sensitive is None else case_sensitive
        )
        word_tokens = [
            token
            for token in self.tokenizer.word_tokens(text)
            if token.text.lower() not in protected_tokens
        ]
        target_count = math.ceil(requested_ratio * len(word_tokens)) if word_tokens else 0
        if target_count == 0:
            return PerturbationOutcome(
                original_text=text,
                perturbed_text=text,
                ratio=requested_ratio,
                requested_replacements=0,
                replacements=(),
            )
        # Paper §III-D: first randomly sample the subset of tokens to
        # manipulate according to r, then replace each sampled token with a
        # perturbation drawn from its Look Up output.  Tokens without any
        # observed perturbation are left unchanged (unless fill_target asks
        # for extra draws to make up the difference).
        shuffled = list(word_tokens)
        self.rng.shuffle(shuffled)
        attempt_limit = len(shuffled) if fill_target else target_count
        replacements: list[tuple[Token, str]] = []
        recorded: list[PerturbedToken] = []
        for position, token in enumerate(shuffled):
            if len(recorded) >= target_count or position >= attempt_limit:
                break
            candidates = self._candidate_perturbations(
                token, sensitive, allow_word_targets
            )
            if not candidates:
                continue
            chosen = (
                self._weighted_choice(candidates)
                if weighted_by_frequency
                else self.rng.choice(candidates)
            )
            replacements.append((token, chosen.token))
            recorded.append(
                PerturbedToken(
                    original=token.text,
                    perturbed=chosen.token,
                    start=token.start,
                    end=token.end,
                    category=chosen.category,
                    edit_distance=chosen.edit_distance,
                )
            )
        perturbed_text = detokenize(text, replacements) if replacements else text
        recorded.sort(key=lambda item: item.start)
        return PerturbationOutcome(
            original_text=text,
            perturbed_text=perturbed_text,
            ratio=requested_ratio,
            requested_replacements=target_count,
            replacements=tuple(recorded),
        )

    def perturb_many(
        self,
        texts: list[str] | tuple[str, ...],
        ratio: float | None = None,
        case_sensitive: bool | None = None,
    ) -> list[PerturbationOutcome]:
        """Bulk perturbation (the API layer's batch endpoint)."""
        return [
            self.perturb(text, ratio=ratio, case_sensitive=case_sensitive)
            for text in texts
        ]
