"""SOUNDEX phonetic encodings: the original algorithm and CrypText's custom variant.

The paper builds its human-written token database by encoding every token's
*sound* with a customized version of the SOUNDEX algorithm (§III-A):

* the **original** SOUNDEX fixes the first character of a token and maps the
  remaining consonants to digit classes (``{b, f, p, v} -> "1"`` and so on),
  dropping vowels and collapsing adjacent duplicates;
* CrypText's **customized** SOUNDEX additionally

  1. folds *visually similar* characters onto the letters they imitate
     ("l" -> "1", "a" -> "@", "S" -> "5"), so "dem0cr@ts" and "democrats"
     receive the same encoding,
  2. strips word-internal separators ("mus-lim" -> "muslim") and accents,
  3. replaces the fixed-first-character rule with a *phonetic level*
     parameter ``k`` that keeps the first ``k + 1`` characters verbatim as
     the prefix of the encoding (so "losbian" -> "LO..." and
     "lesbian" -> "LE..." no longer collide at ``k = 1``).

The encodings produced here are the keys of the dictionary hash-maps
``H_k`` (:mod:`repro.core.dictionary`).

Note on the paper's literal key strings: Table I prints ``TH000`` for
``{the, thee}`` and ``DI630`` for ``{dirty, dirrrty}``, which this
implementation reproduces exactly.  The paper's third example key
(``RE4425``) is not derivable from the published rule set; this
implementation produces a different literal string for "republicans" while
preserving the property the table illustrates — all three spellings
("republicans", "repubLIEcans", "republic@@ns") share one key.  See
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..errors import EncodingError
from ..text.charmap import fold_visual_characters, strip_word_internal_separators
from ..text.unicode_fold import fold_text

#: The classic SOUNDEX consonant classes.
SOUNDEX_CODES: dict[str, str] = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    **dict.fromkeys("l", "4"),
    **dict.fromkeys("mn", "5"),
    **dict.fromkeys("r", "6"),
}

#: Letters that are dropped (vowels + h/w/y).  Vowels separate consonant
#: groups (preventing collapse); ``h`` and ``w`` do not, per the classic rules.
_VOWELS = set("aeiouy")
_SILENT = set("hw")

#: Minimum number of digits in an encoding; shorter encodings are zero-padded
#: so that short words like "the" still yield a stable key ("TH000").
MIN_DIGITS = 3


def _digit_sequence(letters: str, collapse_across_vowels: bool = False) -> list[str]:
    """Map ``letters`` to SOUNDEX digits with adjacent-duplicate collapsing.

    ``collapse_across_vowels`` selects the simplified behaviour (duplicates
    collapse even when separated by a vowel); the classic algorithm lets a
    vowel break the run.
    """
    digits: list[str] = []
    previous_code: str | None = None
    for char in letters:
        if char in SOUNDEX_CODES:
            code = SOUNDEX_CODES[char]
            if code != previous_code:
                digits.append(code)
            previous_code = code
        elif char in _VOWELS:
            if not collapse_across_vowels:
                previous_code = None
        elif char in _SILENT:
            # h/w neither emit a digit nor break a duplicate run
            continue
        else:
            # any other character (digit, symbol) is ignored at this stage;
            # the custom encoder folds them onto letters *before* calling us
            previous_code = None
    return digits


def _clean_token(token: str) -> str:
    if not isinstance(token, str):
        raise EncodingError(f"expected str, got {type(token).__name__}")
    stripped = token.strip()
    if not stripped:
        raise EncodingError("cannot encode an empty token")
    return stripped


class OriginalSoundex:
    """The classic SOUNDEX algorithm (Stephenson 1980, paper reference [7]).

    Produces the familiar ``L215``-style codes: the first letter kept
    verbatim, followed by exactly three digits (zero padded / truncated).
    Used as the baseline in the Soundex ablation benchmark.
    """

    code_length: int = 4

    def encode(self, token: str) -> str:
        """Encode ``token``; non-alphabetic characters are ignored.

        >>> OriginalSoundex().encode("lesbian")
        'L215'
        >>> OriginalSoundex().encode("losbian")
        'L215'
        """
        cleaned = _clean_token(token)
        letters = [ch for ch in fold_text(cleaned).lower() if ch.isalpha()]
        if not letters:
            raise EncodingError(f"token {token!r} has no alphabetic characters")
        first = letters[0]
        digits = _digit_sequence("".join(letters))
        # The classic algorithm drops the first letter's own digit if it
        # leads the sequence.
        if digits and first in SOUNDEX_CODES and digits[0] == SOUNDEX_CODES[first]:
            digits = digits[1:]
        padded = (digits + ["0"] * self.code_length)[: self.code_length - 1]
        return first.upper() + "".join(padded)


@dataclass(frozen=True)
class CustomSoundex:
    """CrypText's customized SOUNDEX encoder.

    Parameters
    ----------
    phonetic_level:
        The ``k`` parameter: the first ``k + 1`` characters of the (folded)
        token are kept verbatim as the encoding prefix.
    collapse_repeats:
        Collapse adjacent duplicate digit codes (handles character-repetition
        perturbations such as "porrrrn").
    min_digits:
        Zero-pad the digit part to at least this many digits.
    """

    phonetic_level: int = 1
    collapse_repeats: bool = True
    min_digits: int = MIN_DIGITS

    def __post_init__(self) -> None:
        if self.phonetic_level < 0:
            raise EncodingError(
                f"phonetic_level must be >= 0, got {self.phonetic_level}"
            )
        if self.min_digits < 0:
            raise EncodingError(f"min_digits must be >= 0, got {self.min_digits}")

    # ------------------------------------------------------------------ #
    def canonicalize(self, token: str) -> str:
        """Fold a raw token onto its canonical letter form.

        Lowercases, folds accents, folds visually-similar characters onto the
        letters they imitate, strips word-internal separators, and drops any
        remaining non-alphabetic characters.

        >>> CustomSoundex().canonicalize("Dem0cr@ts")
        'democrats'
        >>> CustomSoundex().canonicalize("mus-lim")
        'muslim'
        """
        cleaned = _clean_token(token)
        folded = fold_visual_characters(fold_text(cleaned))
        folded = strip_word_internal_separators(folded)
        return "".join(ch for ch in folded if ch.isalpha())

    def encode(self, token: str) -> str:
        """Encode ``token`` at this encoder's phonetic level.

        >>> CustomSoundex(phonetic_level=1).encode("the")
        'TH000'
        >>> CustomSoundex(phonetic_level=1).encode("dirty")
        'DI630'
        >>> CustomSoundex(phonetic_level=1).encode("dirrrty") == \
            CustomSoundex(phonetic_level=1).encode("dirty")
        True
        """
        canonical = self.canonicalize(token)
        if not canonical:
            raise EncodingError(
                f"token {token!r} has no phonetic content after canonicalization"
            )
        prefix_length = min(self.phonetic_level + 1, len(canonical))
        prefix = canonical[:prefix_length].upper()
        remainder = canonical[prefix_length:]
        digits = _digit_sequence(remainder, collapse_across_vowels=False)
        if self.collapse_repeats:
            collapsed: list[str] = []
            for digit in digits:
                if not collapsed or collapsed[-1] != digit:
                    collapsed.append(digit)
            digits = collapsed
        if len(digits) < self.min_digits:
            digits = digits + ["0"] * (self.min_digits - len(digits))
        # Short tokens whose canonical form is shorter than k+1 still need a
        # full-width prefix so that keys remain comparable; pad with '0'.
        if len(prefix) < self.phonetic_level + 1:
            prefix = prefix + "0" * (self.phonetic_level + 1 - len(prefix))
        return prefix + "".join(digits)

    def encode_or_none(self, token: str) -> str | None:
        """Like :meth:`encode` but returning ``None`` for unencodable tokens."""
        try:
            return self.encode(token)
        except EncodingError:
            return None

    def same_sound(self, first: str, second: str) -> bool:
        """Whether two tokens share an encoding at this phonetic level."""
        first_code = self.encode_or_none(first)
        second_code = self.encode_or_none(second)
        return first_code is not None and first_code == second_code


@lru_cache(maxsize=8)
def _encoder_for_level(phonetic_level: int) -> CustomSoundex:
    return CustomSoundex(phonetic_level=phonetic_level)


def soundex_key(token: str, phonetic_level: int = 1) -> str:
    """Module-level helper: the customized Soundex key of ``token``.

    >>> soundex_key("democrats") == soundex_key("dem0cr@ts")
    True
    >>> soundex_key("losbian") == soundex_key("lesbian")
    False
    """
    return _encoder_for_level(phonetic_level).encode(token)
