"""The human-written token database.

Paper §III-A: CrypText tokenizes every sentence of its source corpora,
encodes each token's sound with the customized Soundex algorithm, and stores
the result as hash-maps ``H_k`` (one per phonetic level ``k <= 2``) whose
keys are Soundex encodings and whose values are the sets of raw,
case-sensitive tokens sharing that encoding.  Table I of the paper shows a
tiny ``H_1`` built from three sentences.

:class:`PerturbationDictionary` implements that database on top of the
embedded document store (:mod:`repro.storage`), keeping one document per
distinct raw token::

    {
        "_id":        <auto>,
        "token":      "repubLIEcans",          # raw, case-sensitive
        "canonical":  "republiecans",          # folded form
        "keys":       {"k0": "R...", "k1": "RE...", "k2": "REP..."},
        "count":      3,                        # total occurrences seen
        "is_word":    false,                    # in the English lexicon?
        "sources":    ["hatespeech", "twitter_stream"],
    }

Secondary indexes over ``keys.k0`` / ``keys.k1`` / ``keys.k2`` and ``token``
make the Look Up hot path an index probe rather than a scan, mirroring the
MongoDB indexes of the original system.
"""

from __future__ import annotations

import enum
import threading
import weakref
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import cached_property
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Protocol, Sequence

from ..analysis.sanitizer import tracked_lock, tracked_rlock
from ..config import CrypTextConfig, DEFAULT_CONFIG
from ..errors import DictionaryError
from ..obs.registry import OBS
from ..storage import Collection, DocumentStore
from ..text.tokenizer import Tokenizer
from ..text.wordlist import EnglishLexicon, default_lexicon
from .soundex import CustomSoundex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (matcher imports us)
    from ..storage.snapshot import Snapshot
    from ..wal.log import ChangeLog
    from .matcher import CompiledBucket, TrieFamily, TrieFamilyRegistry

#: Name of the document-store collection backing the dictionary.
TOKEN_COLLECTION = "tokens"


class AddOutcome(enum.Enum):
    """What one :meth:`PerturbationDictionary.add_token` call did.

    Truthy when the token was recorded at all, so existing
    ``if add_token(...)`` call sites keep working; callers that care whether
    the write created a new entry or incremented an existing one (e.g.
    :meth:`~PerturbationDictionary.seed_lexicon`, which reports "words
    added") compare against the members.
    """

    SKIPPED = "skipped"  # no phonetic content — nothing recorded
    INSERTED = "inserted"  # first observation of this raw spelling
    UPDATED = "updated"  # count incremented on an existing entry

    def __bool__(self) -> bool:
        return self is not AddOutcome.SKIPPED


class ChangeObserver(Protocol):
    """Anything that wants to hear which sound buckets a write touched."""

    def note_changes(self, changed_keys: set[tuple[int, str]]) -> None:
        """Called after every recorded token with its ``(level, key)`` pairs."""


@dataclass(frozen=True)
class DictionaryEntry:
    """A single raw token and its database record."""

    token: str
    canonical: str
    keys: Mapping[str, str]
    count: int
    is_word: bool
    sources: tuple[str, ...]

    def key_at(self, phonetic_level: int) -> str | None:
        """The Soundex key of this token at the requested level (or ``None``)."""
        return self.keys.get(f"k{phonetic_level}")

    @cached_property
    def token_lower(self) -> str:
        """Lowered raw spelling, computed once per entry.

        The Look Up matching loop compares lowered spellings for every
        bucket entry on every query; caching here keeps ``str.lower`` out
        of that loop for entries that are matched repeatedly (the entry
        objects are shared through the dictionary's bucket caches).
        """
        return self.token.lower()


@dataclass(frozen=True)
class DictionaryStats:
    """Aggregate statistics of the dictionary.

    The paper's headline figures ("over 2M human-written tokens ... over 400K
    unique phonetic sounds") correspond to :attr:`total_tokens` and
    :attr:`unique_keys` at the default phonetic level.
    :attr:`compiled_cache` carries the compiled-bucket LRU and trie-family
    counters (hits/misses/evictions plus family sharing) used for capacity
    tuning of ``config.cache_max_entries``.
    """

    total_tokens: int
    total_occurrences: int
    lexicon_tokens: int
    perturbation_tokens: int
    unique_keys: Mapping[int, int]
    tokens_per_key: Mapping[int, float]
    compiled_cache: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """Serialize (used by benchmarks and the benchmark page export)."""
        return {
            "total_tokens": self.total_tokens,
            "total_occurrences": self.total_occurrences,
            "lexicon_tokens": self.lexicon_tokens,
            "perturbation_tokens": self.perturbation_tokens,
            "unique_keys": {str(level): count for level, count in self.unique_keys.items()},
            "tokens_per_key": {
                str(level): ratio for level, ratio in self.tokens_per_key.items()
            },
            "compiled_cache": dict(self.compiled_cache),
        }


@dataclass(frozen=True)
class SnapshotSaveReport:
    """What :meth:`PerturbationDictionary.save_snapshot` wrote.

    ``incremental`` distinguishes a delta save from a full rewrite; for a
    delta, ``documents``/``families``/``buckets`` count only the dirty
    slice that was serialized, and ``delta_index`` is its position in the
    chain (``None`` for a full save, or for an incremental call that found
    nothing dirty and wrote no file).  ``wal_seq`` is the change-log
    position the artifact covers — crash recovery replays only records
    past it.
    """

    path: str
    documents: int
    families: int
    buckets: int
    levels: tuple[int, ...]
    incremental: bool = False
    delta_index: int | None = None
    wal_seq: int = 0

    def to_dict(self) -> dict[str, object]:
        """Serialize for the CLI and the admin API endpoint."""
        return {
            "path": self.path,
            "documents": self.documents,
            "families": self.families,
            "buckets": self.buckets,
            "levels": list(self.levels),
            "incremental": self.incremental,
            "delta_index": self.delta_index,
            "wal_seq": self.wal_seq,
        }


@dataclass(frozen=True)
class SnapshotLoadReport:
    """What a snapshot load did — or why it fell back to recompilation.

    ``loaded`` is true when documents were installed; ``hydrated_tries``
    when pre-built trie families were adopted (a trie-only warm over an
    existing dictionary sets only the latter).  ``reason`` explains a
    fallback (corruption, format/version mismatch, fingerprint drift) and
    is ``None`` on full success.
    """

    loaded: bool
    hydrated_tries: bool
    reason: str | None = None
    documents: int = 0
    families: int = 0
    buckets: int = 0

    def to_dict(self) -> dict[str, object]:
        """Serialize for the CLI and the admin API endpoint."""
        return {
            "loaded": self.loaded,
            "hydrated_tries": self.hydrated_tries,
            "reason": self.reason,
            "documents": self.documents,
            "families": self.families,
            "buckets": self.buckets,
        }


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`PerturbationDictionary.recover` reconstructed.

    ``loaded`` is true when a snapshot (base, possibly plus deltas) was
    installed; ``deltas_applied`` counts the chain links folded in.
    ``replayed_records`` is the WAL tail applied past the snapshot's
    recorded position, ``torn_bytes`` what a crash mid-append left behind
    (discarded by the tail repair), and ``degraded`` collects the reasons
    any layer fell back (broken delta chain, unusable base, foreign trie
    payloads) — empty for a fully clean recovery.
    """

    loaded: bool
    deltas_applied: int = 0
    documents: int = 0
    replayed_records: int = 0
    skipped_records: int = 0
    torn_bytes: int = 0
    snapshot_wal_seq: int = 0
    wal_seq: int = 0
    fingerprint: str = ""
    degraded: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        """Serialize for the CLI, ``/v1/stats``, and monitoring exports."""
        return {
            "loaded": self.loaded,
            "deltas_applied": self.deltas_applied,
            "documents": self.documents,
            "replayed_records": self.replayed_records,
            "skipped_records": self.skipped_records,
            "torn_bytes": self.torn_bytes,
            "snapshot_wal_seq": self.snapshot_wal_seq,
            "wal_seq": self.wal_seq,
            "fingerprint": self.fingerprint,
            "degraded": list(self.degraded),
        }


class PerturbationDictionary:
    """Database of raw human-written tokens grouped by phonetic sound.

    Parameters
    ----------
    store:
        Document store to keep the token collection in (a private store is
        created when omitted).
    config:
        Library configuration; ``max_phonetic_level`` controls how many
        hash-maps ``H_k`` are materialized (the paper uses ``k <= 2``).
    lexicon:
        English lexicon used to flag which tokens are correctly-spelled
        words.  Needed by Normalization (candidate targets must be English
        words) and by the statistics.
    """

    def __init__(
        self,
        store: DocumentStore | None = None,
        config: CrypTextConfig = DEFAULT_CONFIG,
        lexicon: EnglishLexicon | None = None,
    ) -> None:
        self.config = config
        self.store = store if store is not None else DocumentStore("cryptext")
        self.lexicon = lexicon if lexicon is not None else default_lexicon()
        self.tokenizer = Tokenizer(lowercase=False)
        self._encoders: dict[int, CustomSoundex] = {
            level: CustomSoundex(phonetic_level=level)
            for level in range(config.max_phonetic_level + 1)
        }
        collection = self.store.collection(TOKEN_COLLECTION)
        collection.create_index("token")
        for level in self._encoders:
            collection.create_index(f"keys.k{level}")
        collection.create_index("is_word")
        # Serializes the find-then-insert/update sequence of add_token so
        # concurrent writers (crawler threads) never lose count increments.
        self._write_lock = tracked_rlock("dictionary.write")
        self._version = 0
        # Compiled-bucket cache: (phonetic_level, soundex_key) -> CompiledBucket,
        # LRU-ordered (hits refresh recency, capacity evicts the coldest key).
        # Writers drop exactly the pairs they touched (same scoped-invalidation
        # discipline as the query cache); stores are version-guarded so a
        # compile that straddled a write never caches a stale trie.
        self._compiled: "OrderedDict[tuple[int, str], CompiledBucket]" = OrderedDict()
        self._compiled_lock = tracked_lock("dictionary.compiled")
        self._compiled_max_entries = config.cache_max_entries
        self._compiled_hits = 0
        self._compiled_misses = 0
        self._compiled_evictions = 0
        self._compiled_invalidations = 0
        # Per-kernel match counters (myers/banded/symspell/linear), counted
        # by the query engines through note_kernel_hits under the same lock.
        from .kernels import KernelCounters

        self._kernel_counters = KernelCounters()
        # One trie-family registry per dictionary: buckets whose token
        # sequences coincide across phonetic levels (every singleton bucket,
        # and any bucket that never splits at a deeper level) compile one
        # trie instead of one per level.  The sharded index reuses this
        # registry, so dictionary-side and shard-side compilations share too.
        from .matcher import TrieFamilyRegistry

        self._trie_families = TrieFamilyRegistry()
        # Strong references to snapshot-hydrated families: the registry is
        # weak, so without these a cache eviction would silently discard the
        # pre-built tries the snapshot paid to persist.  Bounded by snapshot
        # size; replaced wholesale on every load.
        self._snapshot_families: tuple["TrieFamily", ...] = ()
        # Weakly-held observers (sharded phonetic indexes) notified of every
        # write's touched sound keys, so no write can bypass their sync —
        # regardless of whether the caller went through a batch engine.
        self._observers: "weakref.WeakSet[ChangeObserver]" = weakref.WeakSet()
        # --- durability state (the WAL subsystem, repro.wal) ---
        # Attached change log: every recorded add_token is journaled before
        # it is acknowledged.  The replay guard keeps recovery from
        # re-journaling the records it is reading.
        self._wal: "ChangeLog | None" = None
        # Identity of the thread currently replaying WAL records (None
        # otherwise).  Thread-scoped on purpose: during a live recovery,
        # *other* threads' writes must still be journaled — only the
        # replaying thread itself re-applies records that already exist.
        self._wal_replaying_thread: int | None = None
        # Dirty sets since the last persisted snapshot (full or delta):
        # the (level, key) buckets an incremental save must re-serialize and
        # the raw tokens whose documents it must carry.  Maintained on the
        # same write path that feeds the change observers.
        self._dirty_pairs: set[tuple[int, str]] = set()
        self._dirty_tokens: set[str] = set()
        # In-memory tip of the on-disk snapshot chain (directory,
        # fingerprint of the chain tip, number of delta links).  Set by full
        # saves, delta saves, and recovery; cleared when unknown — an
        # incremental save without a tip falls back to a full rewrite.
        self._chain_dir: Path | None = None
        self._chain_fingerprint: str | None = None
        self._chain_deltas = 0
        # Change-log position the persisted chain covers; a log attached
        # later must assign only sequences past it, or replay (which skips
        # records <= the snapshot's recorded position) would drop them.
        self._chain_wal_seq = 0
        # Serializes whole snapshot saves (full and delta): concurrent
        # savers would otherwise race the chain-tip read/advance and write
        # the same delta file.  Separate from the write lock, which must
        # stay free during trie compilation.
        self._snapshot_lock = tracked_rlock("dictionary.snapshot")
        self._last_recovery: RecoveryReport | None = None

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped on every recorded token."""
        return self._version

    @property
    def trie_families(self) -> "TrieFamilyRegistry":
        """The trie-family registry shared by every compiled-bucket cache."""
        return self._trie_families

    def register_observer(self, observer: ChangeObserver) -> None:
        """Subscribe ``observer`` to write notifications (weakly referenced)."""
        self._observers.add(observer)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @property
    def collection(self) -> Collection:
        """The underlying token collection."""
        return self.store.collection(TOKEN_COLLECTION)

    @property
    def phonetic_levels(self) -> tuple[int, ...]:
        """Phonetic levels for which hash-maps are materialized."""
        return tuple(sorted(self._encoders))

    def encoder(self, phonetic_level: int) -> CustomSoundex:
        """The Soundex encoder for ``phonetic_level``."""
        try:
            return self._encoders[phonetic_level]
        except KeyError as exc:
            raise DictionaryError(
                f"phonetic level {phonetic_level} is not materialized "
                f"(available: {sorted(self._encoders)})"
            ) from exc

    def _keys_for(self, token: str) -> dict[str, str] | None:
        keys: dict[str, str] = {}
        for level, encoder in self._encoders.items():
            code = encoder.encode_or_none(token)
            if code is None:
                return None
            keys[f"k{level}"] = code
        return keys

    def add_token(
        self,
        token: str,
        source: str | None = None,
        count: int = 1,
        changed_keys: set[tuple[int, str]] | None = None,
    ) -> AddOutcome:
        """Record ``count`` occurrences of the raw token ``token``.

        Returns an :class:`AddOutcome`: :attr:`~AddOutcome.INSERTED` for a
        first observation, :attr:`~AddOutcome.UPDATED` when an existing
        entry's count was incremented, and the falsy
        :attr:`~AddOutcome.SKIPPED` when the token had no phonetic content
        (pure punctuation/emoji tokens cannot participate in phonetic
        lookup).  Boolean call sites keep their meaning — the outcome is
        truthy exactly when something was recorded.

        When ``changed_keys`` is given, the ``(phonetic_level, soundex_key)``
        pairs whose buckets this write touched are added to it — the hook the
        batch engine and the facade use for shard-scoped cache invalidation.
        """
        if count < 1:
            raise DictionaryError(f"count must be >= 1, got {count}")
        keys = self._keys_for(token)
        if keys is None:
            return AddOutcome.SKIPPED
        collection = self.collection
        with self._write_lock:
            # Journal-before-apply, under the write lock: a write is
            # acknowledged only once it is replayable, so a failed append
            # (disk full, closed log) rejects the whole write instead of
            # leaving a served-but-unjournaled document behind — and append
            # order is exactly collection insertion order, which is what
            # lets replay reassign the same auto ``_id``s (and thus the
            # same bucket order) a crashed process had handed out.
            if (
                self._wal is not None
                and self._wal_replaying_thread != threading.get_ident()
            ):
                self._wal.append(
                    "add_token",
                    {"token": token, "source": source, "count": count},
                )
            existing = collection.find_one({"token": token})
            if existing is None:
                canonical = self._encoders[min(self._encoders)].canonicalize(token)
                document = {
                    "token": token,
                    "canonical": canonical,
                    "keys": keys,
                    "count": count,
                    "is_word": self.lexicon.is_word(token),
                    "sources": [source] if source else [],
                }
                collection.insert_one(document)
                outcome = AddOutcome.INSERTED
            else:
                update: dict[str, dict[str, object]] = {"$inc": {"count": count}}
                if source:
                    update["$addToSet"] = {"sources": source}
                collection.update_one({"token": token}, update)
                outcome = AddOutcome.UPDATED
            self._version += 1
            pairs = {(level, keys[f"k{level}"]) for level in self._encoders}
            self._dirty_pairs.update(pairs)
            self._dirty_tokens.add(token)
        with self._compiled_lock:
            for pair in pairs:
                if self._compiled.pop(pair, None) is not None:
                    self._compiled_invalidations += 1
        if changed_keys is not None:
            changed_keys.update(pairs)
        for observer in tuple(self._observers):
            observer.note_changes(pairs)
        return outcome

    def add_text(
        self,
        text: str,
        source: str | None = None,
        changed_keys: set[tuple[int, str]] | None = None,
    ) -> int:
        """Tokenize ``text`` and add every word token; returns tokens added."""
        added = 0
        for token in self.tokenizer.word_tokens(text):
            if self.add_token(token.text, source=source, changed_keys=changed_keys):
                added += 1
        return added

    def add_corpus(
        self,
        texts: Iterable[str],
        source: str | None = None,
        changed_keys: set[tuple[int, str]] | None = None,
    ) -> int:
        """Add every text of ``texts``; returns total word tokens recorded."""
        return sum(
            self.add_text(text, source=source, changed_keys=changed_keys)
            for text in texts
        )

    def learn_batch(
        self,
        texts: Iterable[str],
        source: str | None = None,
        changed_keys: set[tuple[int, str]] | None = None,
    ) -> int:
        """Record a whole enrichment round as one journaled mutation.

        State-equivalent to :meth:`add_corpus` — tokens are merged in
        first-occurrence order with accumulated counts, so document
        insertion order (hence ``_id`` assignment and bucket order) and
        final counts/sources come out identical — but an attached WAL
        receives a single compound ``learn_batch`` record instead of one
        frame per token occurrence, shrinking journal volume for
        learn-heavy ingest by the batch width.  Returns the number of
        token occurrences recorded (:meth:`add_corpus`'s return value).
        """
        merged: dict[str, int] = {}
        for text in texts:
            for token in self.tokenizer.word_tokens(text):
                if self._keys_for(token.text) is None:
                    continue
                merged[token.text] = merged.get(token.text, 0) + 1
        if not merged:
            return 0
        recorded = 0
        with self._write_lock:
            if (
                self._wal is not None
                and self._wal_replaying_thread != threading.get_ident()
            ):
                self._wal.append(
                    "learn_batch",
                    {
                        "source": source,
                        "tokens": [list(item) for item in merged.items()],
                    },
                )
            # The compound record is journaled; the per-token applies below
            # must not journal themselves again.
            previous = self._wal_replaying_thread
            self._wal_replaying_thread = threading.get_ident()
            try:
                for token, count in merged.items():
                    if self.add_token(
                        token, source=source, count=count, changed_keys=changed_keys
                    ):
                        recorded += count
            finally:
                self._wal_replaying_thread = previous
        return recorded

    def seed_lexicon(self, words: Iterable[str] | None = None) -> int:
        """Ensure canonical English words are present as dictionary entries.

        The Look Up function maps a query word to its Soundex bucket; if the
        canonical spelling itself was never observed in a corpus it must
        still exist in the bucket so Normalization has correction targets.
        Returns the number of words actually *added* — re-seeding over a
        dictionary that already contains a word only bumps its count
        (:attr:`AddOutcome.UPDATED`) and is not counted.
        """
        vocabulary = tuple(words) if words is not None else tuple(self.lexicon)
        added = 0
        for word in vocabulary:
            if self.add_token(word, source="lexicon") is AddOutcome.INSERTED:
                added += 1
        return added

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.collection)

    def __contains__(self, token: object) -> bool:
        if not isinstance(token, str):
            return False
        return self.collection.find_one({"token": token}) is not None

    def entry(self, token: str) -> DictionaryEntry | None:
        """Return the :class:`DictionaryEntry` for a raw token, if present."""
        document = self.collection.find_one({"token": token})
        if document is None:
            return None
        return self._to_entry(document)

    def _to_entry(self, document: Mapping[str, object]) -> DictionaryEntry:
        return DictionaryEntry(
            token=str(document["token"]),
            canonical=str(document["canonical"]),
            keys=dict(document["keys"]),  # type: ignore[arg-type]
            count=int(document["count"]),  # type: ignore[arg-type]
            is_word=bool(document["is_word"]),
            sources=tuple(document.get("sources", ())),  # type: ignore[arg-type]
        )

    def tokens_for_key(
        self, key: str, phonetic_level: int | None = None
    ) -> list[DictionaryEntry]:
        """All entries whose Soundex encoding at the given level equals ``key``."""
        level = self.config.phonetic_level if phonetic_level is None else phonetic_level
        if level not in self._encoders:
            raise DictionaryError(
                f"phonetic level {level} is not materialized "
                f"(available: {sorted(self._encoders)})"
            )
        documents = self.collection.find({f"keys.k{level}": key})
        return [self._to_entry(document) for document in documents]

    def compiled_bucket(
        self, key: str, phonetic_level: int | None = None
    ) -> "CompiledBucket":
        """The sound bucket for ``key``, compiled for one-pass matching.

        Compiled buckets are cached per ``(phonetic_level, soundex_key)``
        and invalidated incrementally: :meth:`add_token` drops exactly the
        pairs its write touched, so the next Look Up over a changed bucket
        recompiles from fresh ``tokens_for_key`` output while untouched
        buckets keep their tries warm.  The cache evicts least-recently-used
        — hits refresh recency, so the hot buckets of a skewed workload
        survive a sweep of cold keys.  The store is skipped when any write
        landed mid-compile (version guard) — the caller still gets a
        correct bucket, it just isn't cached.
        """
        from .matcher import CompiledBucket

        level = self.config.phonetic_level if phonetic_level is None else phonetic_level
        cache_key = (level, key)
        with self._compiled_lock:
            cached = self._compiled.get(cache_key)
            if cached is not None:
                self._compiled.move_to_end(cache_key)
                self._compiled_hits += 1
            else:
                self._compiled_misses += 1
        if cached is not None:
            return cached
        version = self._version
        entries = self.tokens_for_key(key, phonetic_level=level)
        compiled = CompiledBucket(entries, family=self._trie_families.family_for(entries))
        with self._compiled_lock:
            if self._version == version:
                while len(self._compiled) >= self._compiled_max_entries:
                    self._compiled.popitem(last=False)
                    self._compiled_evictions += 1
                self._compiled[cache_key] = compiled
        return compiled

    def bucket_for_token(
        self, token: str, phonetic_level: int | None = None
    ) -> list[DictionaryEntry]:
        """Entries sharing ``token``'s Soundex bucket (the raw Look Up set)."""
        level = self.config.phonetic_level if phonetic_level is None else phonetic_level
        key = self.encoder(level).encode_or_none(token)
        if key is None:
            return []
        return self.tokens_for_key(key, phonetic_level=level)

    def hashmap(self, phonetic_level: int | None = None) -> dict[str, set[str]]:
        """Materialize the full hash-map ``H_k`` as ``{encoding: {tokens}}``.

        This reproduces the structure of Table I.  For large dictionaries
        prefer :meth:`tokens_for_key`, which uses the index instead of
        scanning.
        """
        level = self.config.phonetic_level if phonetic_level is None else phonetic_level
        if level not in self._encoders:
            raise DictionaryError(
                f"phonetic level {level} is not materialized "
                f"(available: {sorted(self._encoders)})"
            )
        mapping: dict[str, set[str]] = {}
        for document in self.collection:
            key = document["keys"][f"k{level}"]
            mapping.setdefault(key, set()).add(document["token"])
        return mapping

    def english_words_for_key(
        self, key: str, phonetic_level: int | None = None
    ) -> list[DictionaryEntry]:
        """Entries in the bucket that are correctly-spelled English words."""
        return [
            entry
            for entry in self.tokens_for_key(key, phonetic_level=phonetic_level)
            if entry.is_word
        ]

    def iter_entries(self) -> Iterator[DictionaryEntry]:
        """Iterate over every entry (arbitrary but deterministic order)."""
        for document in self.collection:
            yield self._to_entry(document)

    def token_counts(self) -> dict[str, int]:
        """Mapping from raw token to its observed occurrence count."""
        return {
            str(document["token"]): int(document["count"])
            for document in self.collection
        }

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def compiled_cache_stats(self) -> dict[str, object]:
        """Compiled-bucket LRU counters plus trie-family sharing counters.

        ``hits``/``misses``/``evictions``/``invalidations`` describe the
        per-``(level, key)`` bucket cache (capacity tuning for
        ``config.cache_max_entries``); ``families`` describes how often the
        level-shared registry let a bucket reuse another bucket's tries
        instead of compiling its own.
        """
        with self._compiled_lock:
            counters: dict[str, object] = {
                "hits": self._compiled_hits,
                "misses": self._compiled_misses,
                "evictions": self._compiled_evictions,
                "invalidations": self._compiled_invalidations,
                "size": len(self._compiled),
                "capacity": self._compiled_max_entries,
                "kernel": self.config.match_kernel,
                "kernels": self._kernel_counters.to_dict(),
            }
        counters["families"] = self._trie_families.stats()
        return counters

    def note_kernel_hits(self, kernel: str, count: int = 1) -> None:
        """Attribute ``count`` matches to ``kernel`` in the stats counters.

        Called by the query engines (lookup, normalizer, and the shard
        caches' consumers) with the *resolved* kernel name — ``linear`` for
        the non-compiled per-entry scan — so ``stats().compiled_cache``
        accounts for every match the dictionary served.
        """
        with self._compiled_lock:
            self._kernel_counters.note(kernel, count)

    @staticmethod
    def _fingerprint_lines(lines: "list[str]") -> str:
        digest = 0
        lines.sort()
        for line in lines:
            digest = zlib.crc32(line.encode("utf-8"), digest)
            digest = zlib.crc32(b"\n", digest)
        return format(digest & 0xFFFFFFFF, "08x")

    @classmethod
    def _documents_fingerprint(
        cls, documents: Iterable[Mapping[str, object]]
    ) -> str:
        """CRC-32 (hex) over the trie-relevant fields of ``documents``."""
        return cls._fingerprint_lines(
            [
                f"{document['token']}\x00{document['canonical']}\x00{int(bool(document['is_word']))}"
                for document in documents
            ]
        )

    def content_fingerprint(self) -> str:
        """CRC-32 (hex) over the trie-relevant content of the dictionary.

        Two dictionaries with equal fingerprints compile byte-identical
        tries for every bucket: the fingerprint folds in each raw token, its
        canonical form, and its lexicon flag — everything the matcher reads —
        but *not* counts or sources, which tries never see.  The warm-start
        loaders use it as the staleness guard: a snapshot whose recorded
        fingerprint differs from the live dictionary's must not install its
        tries.

        Reads the three fields through the collection's copy-free
        projection — this runs on every incremental save (it is the delta
        chain's linkage value), where deep-copying the whole collection
        would put an O(size) wall in front of an O(changes) operation.
        """
        return self._fingerprint_lines(
            [
                f"{token}\x00{canonical}\x00{int(bool(is_word))}"
                for token, canonical, is_word in self.collection.project_values(
                    ("token", "canonical", "is_word")
                )
            ]
        )

    def stats(self) -> DictionaryStats:
        """Aggregate statistics (token counts, unique keys per level)."""
        total_tokens = 0
        total_occurrences = 0
        lexicon_tokens = 0
        unique_keys: dict[int, set[str]] = {level: set() for level in self._encoders}
        for document in self.collection:
            total_tokens += 1
            total_occurrences += int(document["count"])
            if document["is_word"]:
                lexicon_tokens += 1
            for level in self._encoders:
                unique_keys[level].add(document["keys"][f"k{level}"])
        unique_key_counts = {level: len(keys) for level, keys in unique_keys.items()}
        tokens_per_key = {
            level: (total_tokens / count if count else 0.0)
            for level, count in unique_key_counts.items()
        }
        return DictionaryStats(
            total_tokens=total_tokens,
            total_occurrences=total_occurrences,
            lexicon_tokens=lexicon_tokens,
            perturbation_tokens=total_tokens - lexicon_tokens,
            unique_keys=unique_key_counts,
            tokens_per_key=tokens_per_key,
            compiled_cache=self.compiled_cache_stats(),
        )

    # ------------------------------------------------------------------ #
    # warm-start snapshots
    # ------------------------------------------------------------------ #
    def _snapshot_path(self, path: "str | Path | None") -> Path:
        """Resolve an explicit path or the configured snapshot directory."""
        from ..storage.snapshot import SNAPSHOT_FILE_NAME

        if path is not None:
            return Path(path)
        if self.config.snapshot_dir is not None:
            return Path(self.config.snapshot_dir) / SNAPSHOT_FILE_NAME
        raise DictionaryError(
            "no snapshot path given and config.snapshot_dir is not set"
        )

    def _grouped_documents(
        self, documents: Sequence[Mapping[str, object]], levels: Sequence[int]
    ) -> "tuple[list[DictionaryEntry], dict[tuple[int, str], list[DictionaryEntry]]]":
        """Entries (in ``documents`` order) grouped per ``(level, key)`` bucket.

        ``documents`` must already be in str(``_id``) order — the order
        ``tokens_for_key`` serves buckets in — so the grouped entry lists
        are exactly what a live query would retrieve.
        """
        entries: list[DictionaryEntry] = []
        grouped: dict[tuple[int, str], list[DictionaryEntry]] = {}
        level_fields = [(level, f"k{level}") for level in levels]
        for document in documents:
            entry = self._to_entry(document)
            entries.append(entry)
            keys = document.get("keys")
            if not isinstance(keys, dict):
                continue
            for level, field_name in level_fields:
                key = keys.get(field_name)
                if key is not None:
                    grouped.setdefault((level, str(key)), []).append(entry)
        return entries, grouped

    def build_snapshot(
        self, levels: Sequence[int] | None = None
    ) -> "Snapshot":
        """Compile every bucket and capture documents + tries in memory.

        For each bucket the raw trie (the Look Up hot path) and the
        canonical English-only trie (the Normalization hot path) are
        force-built through the shared family registry, so a token sequence
        appearing at several phonetic levels is compiled and serialized
        exactly once.
        """
        from ..storage.snapshot import Snapshot
        from .matcher import TrieFamily

        wanted = tuple(self.phonetic_levels if levels is None else sorted(set(levels)))
        for level in wanted:
            if level not in self._encoders:
                raise DictionaryError(
                    f"phonetic level {level} is not materialized "
                    f"(available: {sorted(self._encoders)})"
                )
        # Capture documents and the WAL position atomically with respect to
        # writers: a record journaled after this point is *not* in the
        # captured documents, so it must stay past the recorded ``wal_seq``
        # for replay to find — the no-lost-writes invariant of recovery.
        with self._write_lock:
            documents = self.collection.find(None)
            wal_seq = self._wal.last_seq if self._wal is not None else 0
            version = self._version
        _, grouped = self._grouped_documents(documents, wanted)
        families: list[TrieFamily] = []
        family_rows: dict[int, int] = {}
        buckets: list[tuple[int, str, int]] = []
        for (level, key), bucket_entries in grouped.items():
            family = self._trie_families.family_for(bucket_entries)
            family.trie(False, False, bucket_entries)
            family.trie(True, True, bucket_entries)
            row = family_rows.get(id(family))
            if row is None:
                row = len(families)
                families.append(family)
                family_rows[id(family)] = row
            buckets.append((level, key, row))
        return Snapshot(
            dictionary_version=version,
            # Fingerprint the captured documents, not the live collection: a
            # concurrent write between the capture above and here must not
            # produce a snapshot that can never pass its own staleness guard.
            fingerprint=self._documents_fingerprint(documents),
            config={
                "phonetic_level": self.config.phonetic_level,
                "max_phonetic_level": self.config.max_phonetic_level,
                "levels": list(wanted),
            },
            documents=tuple(documents),
            families=tuple(family.to_payload() for family in families),
            buckets=tuple(buckets),
            wal_seq=wal_seq,
        )

    def save_snapshot(
        self,
        path: "str | Path | None" = None,
        levels: Sequence[int] | None = None,
        incremental: bool = False,
        shards: "int | None" = None,
    ) -> SnapshotSaveReport:
        """Persist the collection plus its compiled tries for warm starts.

        ``path`` defaults to ``config.snapshot_dir`` (raising
        :class:`DictionaryError` when neither is available).  Compilation
        cost is paid here, once, instead of on every process start.

        With ``incremental`` true, only the buckets written since the last
        save are re-serialized into a delta file chained onto the base
        snapshot by content fingerprint (:mod:`repro.wal.delta`) — the cost
        scales with how much changed, not with dictionary size.  An
        incremental save silently falls back to a full rewrite when there
        is no known chain to extend (no prior save into this directory, a
        non-conventional file name, or ``levels`` narrowing the default
        set); an incremental call that finds nothing dirty writes no file
        and reports zero documents.

        With ``config.snapshot_shards`` > 0 (or an explicit ``shards``
        override), a full save writes the v2 sharded layout
        (``dictionary.snapshot.d/``) instead of the v1 single file; a base
        in the other format at the conventional location is removed so
        resolution is never ambiguous.  Deltas chain onto either base
        format identically.
        """
        if OBS.armed:
            with OBS.span("snapshot.save"):
                return self._save_snapshot(path, levels, incremental, shards)
        return self._save_snapshot(path, levels, incremental, shards)

    def _save_snapshot(
        self,
        path: "str | Path | None",
        levels: Sequence[int] | None,
        incremental: bool,
        shards: "int | None",
    ) -> SnapshotSaveReport:
        from ..storage.snapshot import (
            SNAPSHOT_FILE_NAME,
            sharded_snapshot_dir,
            write_sharded_snapshot,
            write_snapshot,
        )
        from ..wal.delta import remove_delta_files

        target = self._snapshot_path(path)
        with self._snapshot_lock:
            if incremental and levels is None and target.name == SNAPSHOT_FILE_NAME:
                report = self._save_delta(target.parent)
                if report is not None:
                    return report
                # No usable chain tip — fall through to the full rewrite.
            # Dirty state is swapped out (not copied) *before* the document
            # capture inside build_snapshot: a write landing during the
            # save dirties the fresh sets, so it can never be subtracted
            # away by this save's completion — at worst it is both in the
            # snapshot and re-saved by the next delta, never lost.  Only a
            # save into the chain resets the baseline; a side export under
            # another name leaves the dirty sets alone.
            into_chain = target.name == SNAPSHOT_FILE_NAME
            if into_chain:
                with self._write_lock:
                    captured_pairs, self._dirty_pairs = self._dirty_pairs, set()
                    captured_tokens, self._dirty_tokens = self._dirty_tokens, set()
            try:
                snapshot = self.build_snapshot(levels=levels)
                if shards is None:
                    shards = self.config.snapshot_shards
                if shards > 0:
                    shard_dir = sharded_snapshot_dir(target)
                    write_sharded_snapshot(shard_dir, snapshot, shards)
                    # The v1 file (if any) is now stale; resolution prefers
                    # a readable v2 layout, but leaving both invites skew.
                    try:
                        target.unlink()
                    except OSError:  # lint: allow=swallowed-exception
                        pass
                else:
                    write_snapshot(target, snapshot)
                    self._remove_sharded_layout(sharded_snapshot_dir(target))
            except BaseException:
                if into_chain:
                    with self._write_lock:
                        self._dirty_pairs |= captured_pairs
                        self._dirty_tokens |= captured_tokens
                raise
            if into_chain:
                with self._write_lock:
                    # A full rewrite supersedes the chain: stale deltas would
                    # reference a base fingerprint that no longer exists.
                    remove_delta_files(target.parent)
                    if self._wal is None:
                        # No journal fed this state, so any segments in the
                        # conventional location are from a previous life of
                        # the directory.  The base being written records
                        # wal_seq=0; leaving them would make the next
                        # recovery replay the old history on top of it.
                        self._remove_stale_wal_segments(target.parent)
                    self._chain_dir = target.parent
                    self._chain_fingerprint = snapshot.fingerprint
                    self._chain_deltas = 0
                    self._chain_wal_seq = snapshot.wal_seq
        return SnapshotSaveReport(
            path=str(target),
            documents=len(snapshot.documents),
            families=len(snapshot.families),
            buckets=len(snapshot.buckets),
            levels=snapshot.levels,
            incremental=False,
            wal_seq=snapshot.wal_seq,
        )

    @staticmethod
    def _remove_sharded_layout(shard_dir: Path) -> None:
        """Remove a stale v2 layout superseded by a v1 full save.

        Best-effort: only the files the layout owns (manifest, shard files,
        scratch) are touched, and a directory holding anything else is left
        in place rather than guessed at.
        """
        from ..storage.snapshot import SNAPSHOT_MANIFEST_NAME

        if not shard_dir.is_dir():
            return
        try:
            for name in (SNAPSHOT_MANIFEST_NAME,):
                (shard_dir / name).unlink(missing_ok=True)
            for stale in shard_dir.glob("shard-*.bin"):
                stale.unlink(missing_ok=True)
            for stale in shard_dir.glob("*.tmp"):
                stale.unlink(missing_ok=True)
            shard_dir.rmdir()
        except OSError:  # lint: allow=swallowed-exception (best-effort GC)
            pass

    def _remove_stale_wal_segments(self, directory: Path) -> None:
        """Sideline journal segments superseded by a WAL-less full save.

        Scoped to the journal locations that belong to *this* chain
        directory: its conventional ``wal`` sibling, plus the configured
        ``wal_dir`` only when ``directory`` is the configured snapshot
        directory it backs.  A side export into an unrelated directory must
        never touch a production journal configured elsewhere.
        """
        from ..wal.log import supersede_wal_segments, wal_directory_for

        supersede_wal_segments(wal_directory_for(directory))
        if (
            self.config.wal_dir is not None
            and self.config.snapshot_dir is not None
            and Path(self.config.snapshot_dir) == directory
        ):
            supersede_wal_segments(Path(self.config.wal_dir))

    def _save_delta(self, directory: Path) -> SnapshotSaveReport | None:
        """Write one delta link covering the dirty buckets.

        Returns ``None`` when there is no usable chain tip for
        ``directory`` (never saved there, or a concurrent load invalidated
        it) — the caller then performs a full rewrite instead.  Runs under
        :attr:`_snapshot_lock`; the tip is re-read together with the dirty
        capture so it cannot change between validation and use.
        """
        from ..wal.delta import DeltaSnapshot, delta_path, write_delta
        from .matcher import TrieFamily

        with self._write_lock:
            if self._chain_dir != directory or self._chain_fingerprint is None:
                return None
            wal_seq = self._wal.last_seq if self._wal is not None else 0
            version = self._version
            parent = self._chain_fingerprint
            index = self._chain_deltas + 1
            if not self._dirty_pairs and not self._dirty_tokens:
                return SnapshotSaveReport(
                    path=str(directory),
                    documents=0,
                    families=0,
                    buckets=0,
                    levels=(),
                    incremental=True,
                    delta_index=None,
                    wal_seq=wal_seq,
                )
            # Swap the dirty sets out (writes landing after this lock is
            # released dirty the fresh sets and sit past the recorded
            # ``wal_seq``, so they are never lost to this save's success);
            # restored wholesale if the save fails.
            captured_pairs, self._dirty_pairs = self._dirty_pairs, set()
            captured_tokens, self._dirty_tokens = self._dirty_tokens, set()
            documents = self.collection.find(
                {"token": {"$in": sorted(captured_tokens)}}
            )
            bucket_entries = {
                (level, key): self.tokens_for_key(key, phonetic_level=level)
                for level, key in captured_pairs
            }
            fingerprint = self.content_fingerprint()
        try:
            # Trie compilation happens outside the write lock — a concurrent
            # writer only re-dirties a bucket, which the next delta re-saves.
            families: list[TrieFamily] = []
            family_rows: dict[int, int] = {}
            buckets: list[tuple[int, str, int]] = []
            for (level, key), entries in sorted(bucket_entries.items()):
                family = self._trie_families.family_for(entries)
                family.trie(False, False, entries)
                family.trie(True, True, entries)
                row = family_rows.get(id(family))
                if row is None:
                    row = len(families)
                    families.append(family)
                    family_rows[id(family)] = row
                buckets.append((level, key, row))
            delta = DeltaSnapshot(
                parent_fingerprint=parent,
                fingerprint=fingerprint,
                dictionary_version=version,
                wal_seq=wal_seq,
                documents=tuple(documents),
                families=tuple(family.to_payload() for family in families),
                buckets=tuple(buckets),
            )
            target = delta_path(directory, index)
            write_delta(target, delta)
        except BaseException:
            with self._write_lock:
                self._dirty_pairs |= captured_pairs
                self._dirty_tokens |= captured_tokens
            raise
        with self._write_lock:
            self._chain_fingerprint = fingerprint
            self._chain_deltas = index
            self._chain_wal_seq = wal_seq
        levels = tuple(sorted({level for level, _, _ in buckets}))
        return SnapshotSaveReport(
            path=str(target),
            documents=len(delta.documents),
            families=len(delta.families),
            buckets=len(delta.buckets),
            levels=levels,
            incremental=True,
            delta_index=index,
            wal_seq=wal_seq,
        )

    def adopt_snapshot_families(
        self, snapshot: "Snapshot"
    ) -> "tuple[TrieFamily, ...]":
        """Hydrate the snapshot's trie families into the shared registry.

        Returns one family per snapshot row (registry-deduplicated) and
        pins them with strong references so later compilations — dictionary
        LRU or shard caches — keep finding the pre-built tries even after
        cache evictions.  Malformed family payloads raise
        :class:`~repro.errors.SnapshotError`.
        """
        from ..errors import SnapshotError
        from .matcher import TrieFamily

        hydrated: list[TrieFamily] = []
        for payload in snapshot.families:
            try:
                family = TrieFamily.from_payload(payload)
            except (KeyError, IndexError, TypeError, ValueError) as exc:
                raise SnapshotError(f"malformed trie family payload: {exc}") from exc
            hydrated.append(self._trie_families.adopt(family))
        self._snapshot_families = tuple(hydrated)
        return self._snapshot_families

    def load_snapshot(
        self,
        path: "str | Path | None" = None,
        strict: bool = False,
    ) -> SnapshotLoadReport:
        """Replace the collection from a snapshot and install its warm tries.

        The epoch guard and corruption handling:

        * a missing/corrupt file, a foreign format version, or a checksum
          mismatch raises :class:`~repro.errors.SnapshotError` under
          ``strict`` and otherwise returns a fallback report
          (``loaded=False``) — the dictionary is left untouched and keeps
          recompiling lazily, exactly as before snapshots existed;
        * on success the documents are installed with their original
          ``_id``\\ s (preserving bucket order), the mutation version is
          bumped so every stale cache (compiled buckets, observers, query
          caches) drops, and the compiled-bucket LRU is pre-seeded with
          hydrated views up to its capacity.
        """
        if OBS.armed:
            with OBS.span("snapshot.load"):
                return self._load_snapshot(path, strict)
        return self._load_snapshot(path, strict)

    def _load_snapshot(
        self,
        path: "str | Path | None",
        strict: bool,
    ) -> SnapshotLoadReport:
        from ..errors import SnapshotError
        from ..storage.snapshot import resolve_snapshot
        from .matcher import CompiledBucket

        try:
            target = self._snapshot_path(path)
            snapshot = resolve_snapshot(target, strict=True)
        except (SnapshotError, DictionaryError) as exc:
            if strict:
                raise
            return SnapshotLoadReport(
                loaded=False, hydrated_tries=False, reason=str(exc)
            )
        report = self._install_snapshot(snapshot, strict=strict)
        if report.loaded:
            self._note_persisted_state(target, snapshot)
        return report

    def _note_persisted_state(self, target: Path, snapshot: "Snapshot") -> None:
        """Synchronize durability state after a wholesale snapshot install.

        The journal no longer applies to the replaced state, so an attached
        WAL starts a new epoch (with its sequence floor raised past the
        snapshot's recorded position, in case the snapshot came from a
        different journal's history).  The chain tip is adopted only when
        the installed file is a conventional base with no delta siblings —
        a base loaded out from under its deltas must not be extended.
        """
        from ..errors import SnapshotError
        from ..storage.snapshot import SNAPSHOT_FILE_NAME
        from ..wal.delta import list_delta_paths, read_delta

        # The sequence floor must clear every position a later recovery
        # might filter replay by.  For a base loaded out from under its
        # delta chain that is the *chain tip's* recorded position, not the
        # base's: recovery resolves the whole chain, and records of a
        # fresh journal numbered below the tip would be skipped as
        # "already covered".
        floor = snapshot.wal_seq
        has_deltas = False
        usable_chain = True
        if target.name == SNAPSHOT_FILE_NAME:
            try:
                deltas = list_delta_paths(target.parent)
                has_deltas = bool(deltas)
                if deltas:
                    floor = max(floor, read_delta(deltas[-1]).wal_seq)
            except SnapshotError:
                has_deltas = True
                usable_chain = False
        with self._write_lock:
            if self._wal is not None:
                self._wal.reset(next_seq_floor=floor)
            # Remembered even with no log attached yet: a later attach_wal
            # must still start past the installed chain's position.
            self._chain_wal_seq = max(self._chain_wal_seq, floor)
            self._dirty_pairs.clear()
            self._dirty_tokens.clear()
            if target.name != SNAPSHOT_FILE_NAME:
                return
            if has_deltas or not usable_chain:
                if self._chain_dir == target.parent:
                    self._chain_fingerprint = None
            else:
                self._chain_dir = target.parent
                self._chain_fingerprint = snapshot.fingerprint
                self._chain_deltas = 0

    def _install_snapshot(
        self, snapshot: "Snapshot", strict: bool = False
    ) -> SnapshotLoadReport:
        """Replace the collection from an in-memory snapshot (see above).

        The file-less core of :meth:`load_snapshot`, shared with
        :meth:`recover` — which installs a snapshot merged from a base plus
        delta chain that never existed as a single file on disk.
        """
        from ..errors import SnapshotError
        from .matcher import CompiledBucket

        collection = self.collection
        with self._write_lock:
            # Sound keys present before the load: observers must refresh
            # them too, or buckets that vanish with the reload would linger.
            # (Computed only when someone is listening — the scan deep-copies
            # every document, which a fresh warm start need not pay.)
            stale_pairs: set[tuple[int, str]] = set()
            if self._observers:
                stale_pairs = {
                    (level, document["keys"][f"k{level}"])
                    for document in collection
                    for level in self._encoders
                    if f"k{level}" in document.get("keys", {})
                }
            collection.clear()
            # Adopt by reference: the parsed snapshot documents are owned by
            # this load, and the store never mutates stored documents in
            # place (updates replace them wholesale), so no copy is needed.
            collection.load_documents(snapshot.documents, copy=False)
            self._version += 1
            with self._compiled_lock:
                self._compiled.clear()

        try:
            families = self.adopt_snapshot_families(snapshot)
        except SnapshotError as exc:
            # Documents are in and consistent; only the warm tries are lost.
            self._notify_snapshot_change(stale_pairs, snapshot)
            if strict:
                raise
            return SnapshotLoadReport(
                loaded=True,
                hydrated_tries=False,
                reason=str(exc),
                documents=len(snapshot.documents),
            )

        # Snapshot documents were saved in find(None) — str(_id) — order,
        # which load_documents preserved, so grouping them directly yields
        # the exact bucket order a live query would retrieve.
        ordered = sorted(snapshot.documents, key=lambda doc: str(doc.get("_id")))
        _, grouped = self._grouped_documents(ordered, snapshot.levels)
        installed = 0
        with self._compiled_lock:
            for level, key, family_row in snapshot.buckets:
                if installed >= self._compiled_max_entries:
                    break
                bucket_entries = grouped.get((level, key), [])
                family = families[family_row]
                if tuple(entry.token for entry in bucket_entries) != family.tokens:
                    # A family whose token sequence does not spell the bucket
                    # (corrupt mapping) must not serve it; the bucket falls
                    # back to lazy compilation instead.
                    continue
                self._compiled[(level, key)] = CompiledBucket(
                    bucket_entries, family=family
                )
                installed += 1
        self._notify_snapshot_change(stale_pairs, snapshot)
        return SnapshotLoadReport(
            loaded=True,
            hydrated_tries=True,
            documents=len(snapshot.documents),
            families=len(families),
            buckets=installed,
        )

    def _notify_snapshot_change(
        self, stale_pairs: set[tuple[int, str]], snapshot: "Snapshot"
    ) -> None:
        """Tell observers every sound key a snapshot load may have changed."""
        observers = tuple(self._observers)
        if not observers:
            return
        pairs = set(stale_pairs)
        pairs.update((level, key) for level, key, _ in snapshot.buckets)
        for document in snapshot.documents:
            keys = document.get("keys")
            if isinstance(keys, dict):
                for level in self._encoders:
                    key = keys.get(f"k{level}")
                    if key is not None:
                        pairs.add((level, str(key)))
        if not pairs:
            return
        for observer in observers:
            observer.note_changes(pairs)

    # ------------------------------------------------------------------ #
    # durability: WAL attachment & crash recovery
    # ------------------------------------------------------------------ #
    @property
    def wal(self) -> "ChangeLog | None":
        """The attached change log, if any."""
        return self._wal

    @property
    def last_recovery(self) -> RecoveryReport | None:
        """The most recent :meth:`recover` outcome (``/v1/stats`` surface)."""
        return self._last_recovery

    def attach_wal(self, wal: "ChangeLog") -> None:
        """Journal every subsequent recorded write to ``wal``.

        The log's sequence floor is raised past anything a previously
        installed snapshot chain covers (``ensure_seq_at_least``), so a
        log attached *after* a snapshot load cannot hand out sequences the
        snapshot's recorded position would shadow at replay time.
        """
        with self._write_lock:
            if self._chain_wal_seq:
                wal.ensure_seq_at_least(self._chain_wal_seq)
            self._wal = wal

    def detach_wal(self) -> "ChangeLog | None":
        """Stop journaling; returns the previously attached log."""
        with self._write_lock:
            wal, self._wal = self._wal, None
            return wal

    def hydrate_snapshot(
        self, snapshot: "Snapshot", strict: bool = False
    ) -> SnapshotLoadReport:
        """Replace all state from an in-memory (chain-resolved) snapshot.

        The follower-replication entry point: a replica resolves the
        leader's base + delta chain with
        :func:`~repro.wal.delta.resolve_snapshot_chain` and installs the
        merged snapshot here — no file round-trip, no journal side effects
        beyond raising the sequence floor so a log attached later starts
        past the snapshot's recorded position.  The installed state counts
        as persisted (nothing dirty).
        """
        with self._write_lock:
            report = self._install_snapshot(snapshot, strict=strict)
            self._dirty_pairs.clear()
            self._dirty_tokens.clear()
            self._chain_wal_seq = max(self._chain_wal_seq, snapshot.wal_seq)
            if self._wal is not None:
                self._wal.ensure_seq_at_least(snapshot.wal_seq)
        return report

    def apply_wal_record(
        self,
        record: "WalRecord",
        changed_keys: set[tuple[int, str]] | None = None,
    ) -> bool:
        """Apply one journaled mutation without re-journaling it.

        The shared replay core of crash recovery and follower replication:
        ``add_token`` and compound ``learn_batch`` records mutate the
        dictionary with journaling suppressed (a replica consuming history
        must not append it again), anything else returns ``False`` for the
        caller to count as skipped.  Idempotence by sequence number is the
        *caller's* contract — apply each record at most once, filtered by
        ``seq`` against the last applied position.
        """
        if record.op == "add_token":
            ops = [
                (
                    str(record.payload["token"]),
                    record.payload.get("source"),
                    int(record.payload.get("count", 1)),
                )
            ]
        elif record.op == "learn_batch":
            source = record.payload.get("source")
            ops = [
                (str(token), source, int(count))
                for token, count in record.payload.get("tokens", ())
            ]
        else:
            return False
        with self._write_lock:
            previous = self._wal_replaying_thread
            self._wal_replaying_thread = threading.get_ident()
            try:
                for token, source, count in ops:
                    self.add_token(
                        token, source=source, count=count, changed_keys=changed_keys
                    )
            finally:
                self._wal_replaying_thread = previous
        return True

    def dirty_state(self) -> dict[str, int]:
        """How much has changed since the last persisted snapshot."""
        with self._write_lock:
            return {
                "dirty_buckets": len(self._dirty_pairs),
                "dirty_tokens": len(self._dirty_tokens),
                "chain_deltas": self._chain_deltas,
            }

    def _clear_for_replay(self) -> None:
        """Empty the dictionary so a WAL-only recovery starts from scratch.

        The no-snapshot analogue of :meth:`_install_snapshot`'s wholesale
        replacement: drops every document, compiled bucket, and dirty
        marker, and tells observers about every sound key that vanished.
        """
        collection = self.collection
        with self._write_lock:
            stale_pairs: set[tuple[int, str]] = set()
            if self._observers:
                stale_pairs = {
                    (level, document["keys"][f"k{level}"])
                    for document in collection
                    for level in self._encoders
                    if f"k{level}" in document.get("keys", {})
                }
            collection.clear()
            self._version += 1
            with self._compiled_lock:
                self._compiled.clear()
            self._dirty_pairs.clear()
            self._dirty_tokens.clear()
        if stale_pairs:
            for observer in tuple(self._observers):
                observer.note_changes(stale_pairs)

    def _wal_directory(self, snapshot_dir: Path, wal_dir: "str | Path | None") -> Path:
        from ..wal.log import resolve_wal_directory

        return resolve_wal_directory(self.config, snapshot_dir, wal_dir)

    def recover(
        self,
        snapshot_dir: "str | Path | None" = None,
        wal_dir: "str | Path | None" = None,
        strict: bool = False,
    ) -> RecoveryReport:
        """Reconstruct the dictionary after a crash: chain hydrate + WAL replay.

        Three layers, each degrading independently (``strict`` turns any
        degradation into a raised :class:`~repro.errors.SnapshotError` /
        :class:`~repro.errors.WalError` instead):

        1. the **snapshot chain** — base plus deltas resolved by content
           fingerprint; a broken delta chain falls back to the base alone,
           an unusable base to an empty start (full recompilation);
        2. the **WAL tail** — the change log at ``wal_dir`` (default
           ``config.wal_dir``, else ``<snapshot_dir>/wal``) is repaired
           (torn tail truncated) and every record past the installed
           snapshot's ``wal_seq`` is re-applied in order, so a ``kill -9``
           mid-ingest loses nothing that was acknowledged;
        3. the log stays **attached** afterwards: subsequent writes keep
           journaling, and the replayed tail is marked dirty so the next
           incremental save persists it.
        """
        from ..errors import SnapshotError
        from ..storage.snapshot import SNAPSHOT_FILE_NAME, read_snapshot
        from ..wal.delta import resolve_snapshot_chain
        from ..wal.log import ChangeLog

        if snapshot_dir is not None:
            directory = Path(snapshot_dir)
        elif self.config.snapshot_dir is not None:
            directory = Path(self.config.snapshot_dir)
        else:
            raise DictionaryError(
                "no snapshot directory given and config.snapshot_dir is not set"
            )
        degraded: list[str] = []

        snapshot: "Snapshot | None" = None
        deltas_applied = 0
        try:
            chain = resolve_snapshot_chain(directory, strict=False)
        except SnapshotError as exc:
            # Base was readable but a delta link is broken: degrade to the
            # base alone — the WAL (retained since the last *full* save)
            # still replays everything the deltas carried.
            if strict:
                raise
            degraded.append(str(exc))
            chain = None
            try:
                snapshot = read_snapshot(directory / SNAPSHOT_FILE_NAME)
            except SnapshotError as base_exc:
                degraded.append(str(base_exc))
        if chain is not None:
            snapshot = chain.snapshot
            deltas_applied = chain.deltas_applied
        elif snapshot is None and not degraded:
            degraded.append(f"no usable snapshot in {directory}")
            if strict:
                raise SnapshotError(degraded[-1])

        from ..errors import WalError

        after_seq = snapshot.wal_seq if snapshot is not None else 0
        wal_path = self._wal_directory(directory, wal_dir)
        wal: "ChangeLog | None" = None
        try:
            attached = self._wal
            if attached is not None and Path(attached.directory) == wal_path:
                # Recovery over a live system: keep the already-attached
                # log instead of opening a second handle on the same
                # directory — holders of the existing instance (the
                # maintenance scheduler) must keep operating on the log
                # that stays attached, not on an orphaned twin whose
                # truncations would unlink the live segments.
                wal = attached
                wal.repair()
            else:
                wal = ChangeLog(
                    wal_path,
                    segment_bytes=self.config.wal_segment_bytes,
                )
        except WalError as exc:
            # Interior corruption (a bad frame before the final segment):
            # records past the tear cannot be trusted, so non-strict
            # recovery degrades to snapshot-only instead of taking the
            # serving path down.  No log is attached — a fresh epoch needs
            # an operator decision (move the corrupt directory aside).
            if strict:
                raise
            degraded.append(str(exc))
            wal = None

        install_loaded = False
        documents = 0
        replayed = 0
        skipped = 0
        torn = wal.stats().torn_bytes if wal is not None else 0
        # State replacement, log attachment, and replay run as one unit
        # under the (reentrant) write lock: recovery is atomic with
        # respect to concurrent writers, so no write can slip between the
        # install and the attach unjournaled, or interleave with the
        # replay and be double-applied.
        with self._write_lock:
            if snapshot is not None:
                report = self._install_snapshot(snapshot, strict=strict)
                install_loaded = report.loaded
                documents = report.documents
                if report.reason:
                    degraded.append(report.reason)
                self._dirty_pairs.clear()
                self._dirty_tokens.clear()
            else:
                # Pure-replay reconstruction: recovery *replaces* state.
                # Replaying onto whatever the dictionary already holds (a
                # seeded lexicon, or the live state on a second recover
                # call) would double-apply every record.
                self._clear_for_replay()
            # Even with no usable log, a log attached later (after the
            # operator moves a corrupt directory aside) must start past
            # the installed snapshot's position.
            self._chain_wal_seq = max(self._chain_wal_seq, after_seq)
            if wal is not None:
                wal.ensure_seq_at_least(after_seq)
                self._wal = wal
                self._chain_wal_seq = after_seq
                for record in wal.iter_records(after_seq=after_seq):
                    if self.apply_wal_record(record):
                        replayed += 1
                    else:
                        # Unknown operation (a newer writer's record):
                        # skip it rather than fail the whole recovery,
                        # but say so.
                        skipped += 1
                if skipped:
                    degraded.append(
                        f"skipped {skipped} records with unknown operations"
                    )
            if install_loaded and snapshot is not None:
                # The next delta extends the *on-disk* tip; the replayed
                # tail is dirty on top of it and rides along in that delta.
                self._chain_dir = directory
                self._chain_fingerprint = snapshot.fingerprint
                self._chain_deltas = deltas_applied
            else:
                self._chain_fingerprint = None
        outcome = RecoveryReport(
            loaded=install_loaded,
            deltas_applied=deltas_applied,
            documents=documents,
            replayed_records=replayed,
            skipped_records=skipped,
            torn_bytes=torn,
            snapshot_wal_seq=after_seq,
            wal_seq=wal.last_seq if wal is not None else after_seq,
            fingerprint=self.content_fingerprint(),
            degraded=tuple(degraded),
        )
        self._last_recovery = outcome
        return outcome

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #
    @classmethod
    def from_corpus(
        cls,
        texts: Sequence[str],
        config: CrypTextConfig = DEFAULT_CONFIG,
        lexicon: EnglishLexicon | None = None,
        source: str | None = "corpus",
        seed_lexicon: bool = False,
    ) -> "PerturbationDictionary":
        """Build a dictionary directly from an iterable of sentences."""
        dictionary = cls(config=config, lexicon=lexicon)
        dictionary.add_corpus(texts, source=source)
        if seed_lexicon:
            dictionary.seed_lexicon()
        return dictionary
