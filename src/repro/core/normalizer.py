"""The Normalization function: detecting and de-perturbing texts.

Paper §III-C: for each token ``x_i`` of an input ``x``, CrypText retrieves
the English words that share ``x_i``'s customized Soundex encoding at
phonetic level ``k`` within edit-distance bound ``d``.  When several
candidate words match, they are ranked by a *coherency score* computed with
a masked language model over the local context of ``x_i``; the most probable
candidate replaces the perturbed token in the output, and all candidates are
available through the API.

This module implements that flow on top of :class:`PerturbationDictionary`
(candidate retrieval), :class:`SMSCheck` (the ``(k, d)`` filter) and
:class:`~repro.lm.CoherencyScorer` (the masked-LM substitute).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..config import CrypTextConfig, DEFAULT_CONFIG
from ..lm import CoherencyScorer
from ..text.tokenizer import Token, Tokenizer, detokenize
from ..text.wordlist import EnglishLexicon
from .categories import PerturbationCategory, categorize_perturbation
from .dictionary import DictionaryEntry, PerturbationDictionary
from .edit_distance import bounded_levenshtein, bounded_osa
from .matcher import CompiledBucket
from .soundex import CustomSoundex


@dataclass(frozen=True)
class CandidateWord:
    """One candidate English word for a perturbed token."""

    word: str
    edit_distance: int
    coherency: float

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer."""
        return {
            "word": self.word,
            "edit_distance": self.edit_distance,
            "coherency": self.coherency,
        }


@dataclass(frozen=True)
class TokenCorrection:
    """The normalization decision for one input token."""

    original: str
    corrected: str
    start: int
    end: int
    was_perturbed: bool
    category: PerturbationCategory
    candidates: tuple[CandidateWord, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer / GUI popup (Figure 2)."""
        return {
            "original": self.original,
            "corrected": self.corrected,
            "start": self.start,
            "end": self.end,
            "was_perturbed": self.was_perturbed,
            "category": self.category.value,
            "candidates": [candidate.to_dict() for candidate in self.candidates],
        }


@dataclass(frozen=True)
class NormalizationResult:
    """Result of normalizing one input text."""

    original_text: str
    normalized_text: str
    corrections: tuple[TokenCorrection, ...] = field(default_factory=tuple)

    @property
    def perturbed_corrections(self) -> tuple[TokenCorrection, ...]:
        """Only the tokens that were actually changed."""
        return tuple(
            correction for correction in self.corrections if correction.was_perturbed
        )

    @property
    def num_corrected(self) -> int:
        """Number of tokens that were de-perturbed."""
        return len(self.perturbed_corrections)

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer."""
        return {
            "original_text": self.original_text,
            "normalized_text": self.normalized_text,
            "corrections": [correction.to_dict() for correction in self.corrections],
        }


class Normalizer:
    """Detects perturbed tokens and restores their most coherent English form.

    Parameters
    ----------
    dictionary:
        Token database used to retrieve candidate English words that share a
        perturbed token's sound.
    scorer:
        Trained :class:`~repro.lm.CoherencyScorer`.  When ``None`` the
        normalizer falls back to ranking candidates by (edit distance,
        observed frequency) only — useful before any corpus is available.
    config:
        Hyper-parameters (``phonetic_level``, ``edit_distance``,
        ``normalizer_max_candidates``).
    lexicon:
        Lexicon used to decide whether a token is already a correctly-spelled
        English word (those are left untouched).
    """

    def __init__(
        self,
        dictionary: PerturbationDictionary,
        scorer: CoherencyScorer | None = None,
        config: CrypTextConfig = DEFAULT_CONFIG,
        lexicon: EnglishLexicon | None = None,
    ) -> None:
        self.dictionary = dictionary
        self.scorer = scorer
        self.config = config
        self.lexicon = lexicon if lexicon is not None else dictionary.lexicon
        self.tokenizer = Tokenizer(lowercase=False)
        self._encoder: CustomSoundex = dictionary.encoder(config.phonetic_level)

    # ------------------------------------------------------------------ #
    def _candidate_entries(self, soundex_key: str):
        """English-word entries of the token's sound bucket (linear fallback).

        The seam subclasses override to retrieve from a different source
        (the batch engine's sharded index) without duplicating the ranking
        logic below.  Only consulted when ``config.compiled_buckets`` is off.
        """
        return self.dictionary.english_words_for_key(
            soundex_key, phonetic_level=self.config.phonetic_level
        )

    def _compiled_candidate_bucket(self, soundex_key: str) -> CompiledBucket:
        """The token's sound bucket compiled for one-pass matching.

        The compiled-path counterpart of :meth:`_candidate_entries` — the
        batch engine's memoized normalizer overrides it to reuse the sharded
        index's per-shard trie caches instead of the dictionary's.
        """
        return self.dictionary.compiled_bucket(
            soundex_key, phonetic_level=self.config.phonetic_level
        )

    def _scored_candidate_entries(
        self, canonical: str, soundex_key: str
    ) -> Iterator[tuple[DictionaryEntry, int]]:
        """``(english entry, edit distance)`` pairs within the ``d`` bound.

        The compiled path matches the bucket's English-only canonical trie
        in one traversal (shared DP rows across common prefixes, and no DP
        spent on the misspelling variants that dominate real buckets); the
        linear fallback scans the pre-filtered English entries with one
        banded DP each.  Both honour the config's distance policy —
        ``use_transpositions`` scores an adjacent swap ("teh" for "the") as
        a single edit, exactly as the SMS filter does — and yield identical
        pairs in identical bucket order.
        """
        bound = self.config.edit_distance
        transpositions = self.config.use_transpositions
        if self.config.compiled_buckets:
            bucket = self._compiled_candidate_bucket(soundex_key)
            kernel = bucket.kernel_for(
                self.config.match_kernel, len(canonical), bound, transpositions
            )
            self.dictionary.note_kernel_hits(kernel)
            distances = bucket.match(
                canonical,
                bound,
                canonical=True,
                transpositions=transpositions,
                english_only=True,
                kernel=kernel,
            )
            entries = bucket.entries
            for index in sorted(distances):
                yield entries[index], distances[index]
            return
        self.dictionary.note_kernel_hits("linear")
        bounded_distance = bounded_osa if transpositions else bounded_levenshtein
        for entry in self._candidate_entries(soundex_key):
            distance = bounded_distance(canonical, entry.canonical, bound)
            if distance is not None:
                yield entry, distance

    def _rank_candidate_entries(
        self, scored: Iterable[tuple[DictionaryEntry, int]]
    ) -> list[tuple[str, int, int]]:
        """Rank ``(entry, distance)`` pairs already within the ``d`` bound.

        Shared by the sequential and batch paths — the single definition of
        the (distance, -count, word) candidate ordering.
        """
        candidates: dict[str, tuple[str, int, int]] = {}
        for entry, distance in scored:
            word = entry.canonical
            existing = candidates.get(word)
            if existing is None or existing[1] > distance:
                candidates[word] = (word, distance, entry.count)
        return sorted(candidates.values(), key=lambda item: (item[1], -item[2], item[0]))

    def _retrieve_candidates(self, token_text: str) -> list[tuple[str, int, int]]:
        """Candidate English words: ``(word, edit_distance, observed_count)``.

        Candidates are drawn from the dictionary bucket sharing the token's
        Soundex key, restricted to lexicon words.
        """
        canonical = self._encoder.canonicalize(token_text)
        if not canonical:
            return []
        key = self._encoder.encode_or_none(token_text)
        if key is None:
            return []
        return self._rank_candidate_entries(
            self._scored_candidate_entries(canonical, key)
        )

    def _score_candidates(
        self,
        candidates: list[tuple[str, int, int]],
        left_context: Sequence[str],
        right_context: Sequence[str],
    ) -> list[CandidateWord]:
        limited = candidates[: self.config.normalizer_max_candidates]
        scored: list[CandidateWord] = []
        for word, distance, count in limited:
            if self.scorer is not None and self.scorer.is_trained:
                coherency = self.scorer.score(word, left_context, right_context)
            else:
                # Fallback ranking: prefer small edit distance, then frequency.
                coherency = -float(distance) + min(count, 1000) * 1e-6
            scored.append(CandidateWord(word=word, edit_distance=distance, coherency=coherency))
        scored.sort(key=lambda candidate: (-candidate.coherency, candidate.edit_distance, candidate.word))
        return scored

    def _match_case(self, original: str, corrected: str) -> str:
        """Give the corrected word the same casing style as the original."""
        if original.isupper() and len(original) > 1:
            return corrected.upper()
        if original[:1].isupper() and original[1:].islower():
            return corrected.capitalize()
        return corrected

    def normalize(self, text: str) -> NormalizationResult:
        """Normalize (de-perturb) ``text``.

        Tokens that are already correctly-spelled English words (or URLs,
        mentions, hashtags) are left untouched.  Every other word token is
        looked up; when candidates exist the most coherent one replaces it.
        """
        tokens = self.tokenizer.tokenize(text)
        word_tokens = [token for token in tokens if token.is_word]
        lowered_words = [token.text.lower() for token in word_tokens]
        corrections: list[TokenCorrection] = []
        replacements: list[tuple[Token, str]] = []
        for position, token in enumerate(word_tokens):
            correction = self._normalize_token(token, position, lowered_words)
            corrections.append(correction)
            if correction.was_perturbed:
                replacements.append((token, correction.corrected))
        normalized_text = detokenize(text, replacements) if replacements else text
        return NormalizationResult(
            original_text=text,
            normalized_text=normalized_text,
            corrections=tuple(corrections),
        )

    def _normalize_token(
        self, token: Token, position: int, lowered_words: Sequence[str]
    ) -> TokenCorrection:
        original = token.text
        if self.lexicon.is_word(original):
            # Correctly-spelled word: the only perturbation left to undo is
            # emphasis capitalization ("democRATs" -> "democrats").  Tokens
            # whose exact casing *is* a lexicon form ("McDonald", "iPhone")
            # are not emphasis — rewriting them would destroy the word.
            is_emphasis = (
                original != original.lower()
                and original != original.capitalize()
                and not original.isupper()
                and not self.lexicon.is_lexicon_casing(original)
            )
            if not is_emphasis:
                return TokenCorrection(
                    original=original,
                    corrected=original,
                    start=token.start,
                    end=token.end,
                    was_perturbed=False,
                    category=PerturbationCategory.IDENTICAL,
                    candidates=(),
                )
            corrected = original.lower()
            return TokenCorrection(
                original=original,
                corrected=corrected,
                start=token.start,
                end=token.end,
                was_perturbed=True,
                category=PerturbationCategory.EMPHASIS_CAPITALIZATION,
                candidates=(CandidateWord(word=corrected, edit_distance=0, coherency=0.0),),
            )
        candidates = self._retrieve_candidates(original)
        left_context = list(lowered_words[max(0, position - 3) : position])
        right_context = list(lowered_words[position + 1 : position + 4])
        scored = self._score_candidates(candidates, left_context, right_context)
        if not scored:
            return TokenCorrection(
                original=original,
                corrected=original,
                start=token.start,
                end=token.end,
                was_perturbed=False,
                category=PerturbationCategory.IDENTICAL,
                candidates=(),
            )
        best = scored[0]
        corrected = self._match_case(original, best.word)
        changed = corrected.lower() != original.lower()
        # Categorize under the same distance policy that admitted the
        # candidate, so a swap recovered as one OSA edit reports
        # ``adjacent_swap`` while a plain-Levenshtein config labels the
        # same two-edit pair ``mixed``.
        category = (
            categorize_perturbation(
                best.word, original,
                use_transpositions=self.config.use_transpositions,
            )
            if changed or original != corrected
            else PerturbationCategory.IDENTICAL
        )
        return TokenCorrection(
            original=original,
            corrected=corrected,
            start=token.start,
            end=token.end,
            was_perturbed=changed or original != corrected,
            category=category,
            candidates=tuple(scored),
        )

    def normalize_many(self, texts: Sequence[str]) -> list[NormalizationResult]:
        """Bulk normalization (the API layer's batch endpoint)."""
        return [self.normalize(text) for text in texts]

    def detect_perturbations(self, text: str) -> tuple[TokenCorrection, ...]:
        """Return only the detected perturbations of ``text`` (no rewriting).

        This supports the paper's second Normalization use case: the mere
        *presence* of perturbations is a predictive signal for ML pipelines.
        """
        return self.normalize(text).perturbed_corrections
