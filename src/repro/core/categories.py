"""Taxonomy of human-written perturbation strategies.

Paper §II-C observes that humans perturb words in characteristic ways that
differ from machine-generated attacks:

* **emphasis capitalization** — uppercasing an embedded word to add a second
  layer of meaning ("democRATs", "repubLIEcans");
* **leet / visual substitution** — replacing letters with visually similar
  digits or symbols ("suic1de", "dem0cr@ts");
* **hyphenation / separator insertion** — breaking a word with separators to
  dodge keyword filters ("mus-lim", "vac-cine");
* **character repetition** — stretching a word ("porrrrn", "dirrrty");
* **phonetic respelling** — swapping in phonetically similar characters
  ("depresxion");
* **emoticon / symbol insertion** — decorating a word with emoticons;
* plus the classic typo-style edits machines also use: **deletion**,
  **insertion**, **swap** (adjacent transposition), and **substitution**.

:func:`categorize_perturbation` classifies an ``(original, perturbed)`` pair
into these categories.  The classification powers the Social Listening
aggregations, the dataset builders (which generate each category on purpose),
and the baseline-comparison benchmark (which shows machine baselines cover
only a subset of the taxonomy).
"""

from __future__ import annotations

from enum import Enum

from ..text.charmap import (
    LEET_SUBSTITUTIONS,
    VISUAL_EQUIVALENTS,
    is_word_internal_separator,
    strip_word_internal_separators,
)
from ..text.unicode_fold import fold_text
from .edit_distance import damerau_levenshtein_distance, levenshtein_distance


class PerturbationCategory(str, Enum):
    """Categories of character-level perturbation strategies."""

    EMPHASIS_CAPITALIZATION = "emphasis_capitalization"
    LEET_SUBSTITUTION = "leet_substitution"
    SEPARATOR_INSERTION = "separator_insertion"
    CHARACTER_REPETITION = "character_repetition"
    PHONETIC_RESPELLING = "phonetic_respelling"
    EMOTICON_DECORATION = "emoticon_decoration"
    ACCENT_SUBSTITUTION = "accent_substitution"
    CHARACTER_DELETION = "character_deletion"
    CHARACTER_INSERTION = "character_insertion"
    ADJACENT_SWAP = "adjacent_swap"
    CHARACTER_SUBSTITUTION = "character_substitution"
    MIXED = "mixed"
    IDENTICAL = "identical"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Categories the paper identifies as distinctly *human* strategies.
HUMAN_DISTINCTIVE_CATEGORIES: frozenset[PerturbationCategory] = frozenset(
    {
        PerturbationCategory.EMPHASIS_CAPITALIZATION,
        PerturbationCategory.SEPARATOR_INSERTION,
        PerturbationCategory.CHARACTER_REPETITION,
        PerturbationCategory.PHONETIC_RESPELLING,
        PerturbationCategory.EMOTICON_DECORATION,
    }
)


def _collapse_repeats(text: str) -> str:
    """Collapse runs of the same character to a single occurrence."""
    collapsed: list[str] = []
    for char in text:
        if not collapsed or collapsed[-1] != char:
            collapsed.append(char)
    return "".join(collapsed)


def _has_emphasis_capitalization(original: str, perturbed: str) -> bool:
    """Detect embedded-uppercase emphasis ("democRATs")."""
    if perturbed.lower() != original.lower():
        return False
    if perturbed == original:
        return False
    # Emphasis means a run of uppercase letters strictly inside the token
    # (all-caps or capitalized-first-letter variants are ordinary styling).
    if perturbed.isupper() or perturbed == original.capitalize():
        return False
    inner = perturbed[1:]
    return any(ch.isupper() for ch in inner)


def _has_leet(perturbed: str) -> bool:
    return any(ch.lower() in VISUAL_EQUIVALENTS or ch in VISUAL_EQUIVALENTS for ch in perturbed)


def _is_leet_substitution(original_lower: str, perturbed_lower: str) -> bool:
    """Same length and every differing position is a known leet substitution."""
    if len(original_lower) != len(perturbed_lower):
        return False
    saw_substitution = False
    for orig_ch, pert_ch in zip(original_lower, perturbed_lower):
        if orig_ch == pert_ch:
            continue
        allowed = LEET_SUBSTITUTIONS.get(orig_ch, ())
        if pert_ch not in allowed and VISUAL_EQUIVALENTS.get(pert_ch) != orig_ch:
            return False
        saw_substitution = True
    return saw_substitution


def _has_separator(perturbed: str) -> bool:
    return any(is_word_internal_separator(ch) for ch in perturbed[1:-1]) if len(perturbed) > 2 else False


def _has_repetition(original: str, perturbed: str) -> bool:
    if len(perturbed) <= len(original):
        return False
    return _collapse_repeats(perturbed.lower()) == _collapse_repeats(original.lower())


def _has_accent(perturbed: str) -> bool:
    return fold_text(perturbed) != perturbed


def categorize_perturbation(
    original: str, perturbed: str, use_transpositions: bool = True
) -> PerturbationCategory:
    """Classify how ``perturbed`` was derived from ``original``.

    The classification is heuristic but deterministic: specifically human
    strategies are tested first (emphasis, separators, leet, repetition,
    accents), then the generic single-edit typo categories, and anything that
    mixes several strategies or needs several edits is labelled
    :attr:`PerturbationCategory.MIXED`.

    ``use_transpositions`` selects the canonical-distance mode the
    single-edit tail is judged under.  With it on (the default, matching the
    historical behavior) distances are optimal-string-alignment: an adjacent
    swap is one edit and classifies as
    :attr:`PerturbationCategory.ADJACENT_SWAP`.  With it off the distance is
    plain Levenshtein — the same pair costs two substitutions, is not a
    single edit, and falls through to ``MIXED`` — so callers that thread
    ``config.use_transpositions`` here label swap perturbations consistently
    with the distance policy Look Up / SMS / Normalization filtered them
    under.

    >>> categorize_perturbation("democrats", "democRATs")
    <PerturbationCategory.EMPHASIS_CAPITALIZATION: 'emphasis_capitalization'>
    >>> categorize_perturbation("muslim", "mus-lim")
    <PerturbationCategory.SEPARATOR_INSERTION: 'separator_insertion'>
    >>> categorize_perturbation("suicide", "suic1de")
    <PerturbationCategory.LEET_SUBSTITUTION: 'leet_substitution'>
    >>> categorize_perturbation("the", "teh")
    <PerturbationCategory.ADJACENT_SWAP: 'adjacent_swap'>
    >>> categorize_perturbation("the", "teh", use_transpositions=False)
    <PerturbationCategory.MIXED: 'mixed'>
    """
    if original == perturbed:
        return PerturbationCategory.IDENTICAL

    original_lower = original.lower()
    perturbed_lower = perturbed.lower()

    if _has_emphasis_capitalization(original, perturbed):
        return PerturbationCategory.EMPHASIS_CAPITALIZATION

    if _has_separator(perturbed) and not _has_separator(original):
        if strip_word_internal_separators(perturbed_lower) == strip_word_internal_separators(
            original_lower
        ):
            return PerturbationCategory.SEPARATOR_INSERTION

    if _has_leet(perturbed) and not _has_leet(original):
        if _is_leet_substitution(original_lower, perturbed_lower):
            return PerturbationCategory.LEET_SUBSTITUTION

    if _has_repetition(original, perturbed):
        return PerturbationCategory.CHARACTER_REPETITION

    if _has_accent(perturbed) and not _has_accent(original):
        if fold_text(perturbed_lower) == original_lower:
            return PerturbationCategory.ACCENT_SUBSTITUTION

    if any(perturbed_lower.endswith(emote_core) for emote_core in (":)", ":(", "<3", ";)")):
        stripped = perturbed_lower.rstrip(":;()<3-^_ ")
        if stripped == original_lower:
            return PerturbationCategory.EMOTICON_DECORATION

    distance = levenshtein_distance(original_lower, perturbed_lower)
    if use_transpositions:
        osa_distance = damerau_levenshtein_distance(original_lower, perturbed_lower)
        # osa == 1 with lev == 2 is exactly one adjacent swap; every other
        # osa == 1 pair also has lev == 1 and falls through below.
        if osa_distance == 1 and distance == 2:
            return PerturbationCategory.ADJACENT_SWAP

    if distance == 1:
        if len(perturbed_lower) == len(original_lower) - 1:
            return PerturbationCategory.CHARACTER_DELETION
        if len(perturbed_lower) == len(original_lower) + 1:
            return PerturbationCategory.CHARACTER_INSERTION
        # Same length, one substitution: phonetic respelling when the
        # substituted character is a letter ("depresxion"), plain
        # substitution otherwise.
        substituted = [
            (orig_ch, pert_ch)
            for orig_ch, pert_ch in zip(original_lower, perturbed_lower)
            if orig_ch != pert_ch
        ]
        if substituted and all(
            orig_ch.isalpha() and pert_ch.isalpha() for orig_ch, pert_ch in substituted
        ):
            return PerturbationCategory.PHONETIC_RESPELLING
        return PerturbationCategory.CHARACTER_SUBSTITUTION

    return PerturbationCategory.MIXED


def category_counts(
    pairs: list[tuple[str, str]] | tuple[tuple[str, str], ...],
    use_transpositions: bool = True,
) -> dict[PerturbationCategory, int]:
    """Aggregate :func:`categorize_perturbation` over many pairs."""
    counts: dict[PerturbationCategory, int] = {}
    for original, perturbed in pairs:
        category = categorize_perturbation(
            original, perturbed, use_transpositions=use_transpositions
        )
        counts[category] = counts.get(category, 0) + 1
    return counts
