"""Trie-compiled Levenshtein-automaton matcher for the Look Up hot path.

The Look Up function (paper §III-B) answers "which tokens share the query's
Soundex key and lie within edit distance ``d``".  The straightforward
implementation runs one banded Wagner-Fischer dynamic program per bucket
entry (:func:`~repro.core.edit_distance.bounded_levenshtein`), which makes
large sound buckets — the paper reports 400K+ keys over 2M tokens, with
heavy skew — dominate query latency.

:class:`CompiledBucket` compiles a bucket's tokens into a character trie
(entries attached at terminal nodes) and matches a query against *all*
entries in one traversal:

* the banded DP row for a trie node is computed once and **shared by every
  entry under that prefix** — "vaccine", "vacc1ne" and "vaccinne" pay for
  their common ``vacc`` prefix a single time;
* a subtree is **pruned** as soon as its row's in-band minimum exceeds
  ``d`` (the Levenshtein-automaton dead-state condition) — one bad leading
  character eliminates every entry spelled that way;
* each subtree records the **shortest and longest terminal below it**, so
  branches whose every entry violates ``|len(query) - len(token)| > d``
  are skipped before any DP work (the length pre-partition).

Cell values are clipped to ``d + 1`` exactly like ``bounded_levenshtein``,
so the distance reported for each entry is *identical* to the per-entry
scan — the property tests in ``tests/test_matcher.py`` assert equality over
random token sets, and the golden-corpus CI guard asserts it end to end.

A compiled bucket is immutable once built; writers invalidate by dropping
the cached instance (see :meth:`PerturbationDictionary.compiled_bucket` and
the per-shard caches in :mod:`repro.batch.sharded_index`).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Sequence, Tuple

from .dictionary import DictionaryEntry

__all__ = ["CompiledBucket"]


class _TrieNode:
    """One character of the compiled trie (build-time representation)."""

    __slots__ = ("children", "items", "terminals", "min_depth", "max_depth")

    def __init__(self) -> None:
        self.children: dict[str, "_TrieNode"] = {}
        # Frozen (char, child) pairs iterated on the match hot path; the
        # children dict is dropped after the freeze.
        self.items: tuple[tuple[str, "_TrieNode"], ...] = ()
        self.terminals: tuple[int, ...] = ()
        self.min_depth = 0
        self.max_depth = 0


def _build_trie(items: Sequence[tuple[int, str]]) -> _TrieNode:
    """Compile ``(entry index, text)`` pairs into a terminal-indexed trie.

    Indexes are carried explicitly (rather than by enumeration) so filtered
    views — the English-only trie below — keep reporting positions in the
    full entry sequence.
    """
    root = _TrieNode()
    for index, text in items:
        node = root
        for char in text:
            child = node.children.get(char)
            if child is None:
                child = _TrieNode()
                node.children[char] = child
            node = child
        node.terminals += (index,)
    _freeze(root)
    return root


def _freeze(root: _TrieNode) -> None:
    """Compute per-subtree terminal depth bounds and freeze child lists.

    Iterative post-order so pathological one-character-per-node chains
    (very long tokens) cannot hit the recursion limit.
    """
    order: list[tuple[_TrieNode, int]] = []
    stack: list[tuple[_TrieNode, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        order.append((node, depth))
        for child in node.children.values():
            stack.append((child, depth + 1))
    for node, depth in reversed(order):
        minimum = depth if node.terminals else None
        maximum = depth if node.terminals else None
        for child in node.children.values():
            minimum = child.min_depth if minimum is None else min(minimum, child.min_depth)
            maximum = child.max_depth if maximum is None else max(maximum, child.max_depth)
        # Every node has a terminal somewhere below it by construction.
        node.min_depth = depth if minimum is None else minimum
        node.max_depth = depth if maximum is None else maximum
        node.items = tuple(node.children.items())
        node.children = {}


class CompiledBucket(Sequence[DictionaryEntry]):
    """A sound bucket compiled for one-pass edit-distance matching.

    Behaves as an immutable sequence of its :class:`DictionaryEntry` objects
    (in ``tokens_for_key`` order), so every consumer of a plain bucket —
    including the linear fallback path of
    :meth:`~repro.core.lookup.LookupEngine.build_result` — accepts a
    compiled one unchanged.  The raw-spelling and canonical-form tries are
    built lazily on first use (canonical-distance queries are rare) and the
    lowered token spellings are computed once at compile time, never per
    query.
    """

    __slots__ = ("entries", "tokens_lower", "_tries", "_trie_lock")

    def __init__(self, entries: Sequence[DictionaryEntry]) -> None:
        self.entries: tuple[DictionaryEntry, ...] = tuple(entries)
        self.tokens_lower: tuple[str, ...] = tuple(
            entry.token_lower for entry in self.entries
        )
        # Tries keyed by (canonical representation?, English entries only?).
        self._tries: Dict[tuple[bool, bool], _TrieNode] = {}
        self._trie_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # sequence protocol (drop-in for a plain entry tuple)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index):  # type: ignore[override]
        return self.entries[index]

    def __iter__(self) -> Iterator[DictionaryEntry]:
        return iter(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledBucket({len(self.entries)} entries)"

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def _trie(self, canonical: bool, english_only: bool = False) -> _TrieNode:
        key = (canonical, english_only)
        trie = self._tries.get(key)
        if trie is None:
            with self._trie_lock:
                trie = self._tries.get(key)
                if trie is None:
                    strings = (
                        tuple(entry.canonical for entry in self.entries)
                        if canonical
                        else self.tokens_lower
                    )
                    trie = _build_trie(
                        [
                            (index, strings[index])
                            for index, entry in enumerate(self.entries)
                            if not english_only or entry.is_word
                        ]
                    )
                    self._tries[key] = trie
        return trie

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def match(
        self,
        query: str,
        max_distance: int,
        canonical: bool = False,
        transpositions: bool = False,
        english_only: bool = False,
    ) -> Dict[int, int]:
        """Distances of every entry within ``max_distance`` of ``query``.

        ``query`` must already be in the compared representation — the
        *lowered* raw spelling for the default mode, the *canonical* folded
        form when ``canonical`` is true (mirroring what
        ``LookupEngine.build_result`` compares).  Returns a mapping
        from entry index (position in :attr:`entries`) to its exact
        distance; entries beyond the bound are absent, exactly as
        ``bounded_levenshtein`` returns ``None`` for them.

        With ``transpositions`` the distance is optimal-string-alignment
        (Damerau): an adjacent swap costs one edit, matching ``bounded_osa``
        cell for cell.  The traversal is still one pass — each DFS frame
        additionally carries its parent's DP row and the character of the
        edge into the node, which is exactly the two-back state the OSA
        transposition case reads.

        With ``english_only`` the traversal runs over a trie holding only
        the bucket's lexicon-word entries (built lazily, cached like the
        other variants).  Normalization discards non-word candidates
        unconditionally, and real sound buckets are dominated by observed
        misspellings — matching the filtered trie does strictly less DP
        work than matching everything and filtering afterwards.  Reported
        indexes still address :attr:`entries`.
        """
        if max_distance < 0 or not self.entries:
            return {}
        n = len(query)
        limit = max_distance + 1
        results: Dict[int, int] = {}
        root = self._trie(canonical, english_only)
        first_row = [col if col <= max_distance else limit for col in range(n + 1)]
        # Frames carry (node, its DP row, its depth, the parent's DP row,
        # the edge character into the node); DFS order is irrelevant to the
        # result set (each terminal's distance depends only on its own
        # root-to-terminal path).  The last two fields are the transposition
        # lookback; the plain-Levenshtein mode never reads them.
        stack: list[tuple[_TrieNode, list[int], int, list[int] | None, str]] = [
            (root, first_row, 0, None, "")
        ]
        while stack:
            node, row, depth, parent_row, edge_char = stack.pop()
            if node.terminals:
                distance = row[n]
                if distance <= max_distance:
                    for index in node.terminals:
                        results[index] = distance
            child_depth = depth + 1
            band_low = child_depth - max_distance
            window_start = 1 if band_low < 1 else band_low
            window_end = child_depth + max_distance
            if window_end > n:
                window_end = n
            for char, child in node.items:
                # Length pre-partition: every terminal below `child` is
                # shorter than len(query) - d or longer than len(query) + d,
                # so no descendant can report a distance — skip the DP.
                if child.min_depth > n + max_distance or child.max_depth < n - max_distance:
                    continue
                new_row = [limit] * (n + 1)
                if band_low <= 0:
                    new_row[0] = child_depth if child_depth <= max_distance else limit
                row_minimum = new_row[0]
                for col in range(window_start, window_end + 1):
                    value = row[col - 1] + (query[col - 1] != char)
                    insertion = new_row[col - 1] + 1
                    if insertion < value:
                        value = insertion
                    deletion = row[col] + 1
                    if deletion < value:
                        value = deletion
                    if (
                        transpositions
                        and parent_row is not None
                        and col > 1
                        and char == query[col - 2]
                        and edge_char == query[col - 1]
                    ):
                        # OSA: token[-1] == query[col-2] and token[-2] ==
                        # query[col-1] — swap the pair for one edit on top
                        # of the grandparent prefix's cost.
                        transposition = parent_row[col - 2] + 1
                        if transposition < value:
                            value = transposition
                    if value < limit:
                        new_row[col] = value
                        if value < row_minimum:
                            row_minimum = value
                # Automaton dead state: no cell of this row is within the
                # bound, so no extension of this prefix ever will be.  Valid
                # under OSA too: a transposition reaching two rows back from
                # a descendant would imply an in-band cell <= bound in this
                # row (OSA cells still dominate |row - col|).
                if row_minimum <= max_distance:
                    stack.append((child, new_row, child_depth, row, char))
        return results

    def match_tokens(
        self,
        query: str,
        max_distance: int,
        canonical: bool = False,
        transpositions: bool = False,
        english_only: bool = False,
    ) -> Tuple[Tuple[str, int], ...]:
        """``(raw token, distance)`` pairs in bucket order (test/debug view)."""
        distances = self.match(
            query,
            max_distance,
            canonical=canonical,
            transpositions=transpositions,
            english_only=english_only,
        )
        return tuple(
            (entry.token, distances[index])
            for index, entry in enumerate(self.entries)
            if index in distances
        )
