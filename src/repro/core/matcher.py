"""Trie-compiled Levenshtein-automaton matcher for the Look Up hot path.

The Look Up function (paper §III-B) answers "which tokens share the query's
Soundex key and lie within edit distance ``d``".  The straightforward
implementation runs one banded Wagner-Fischer dynamic program per bucket
entry (:func:`~repro.core.edit_distance.bounded_levenshtein`), which makes
large sound buckets — the paper reports 400K+ keys over 2M tokens, with
heavy skew — dominate query latency.

:class:`CompiledBucket` compiles a bucket's tokens into a character trie
(entries attached at terminal nodes) and matches a query against *all*
entries in one traversal:

* the banded DP row for a trie node is computed once and **shared by every
  entry under that prefix** — "vaccine", "vacc1ne" and "vaccinne" pay for
  their common ``vacc`` prefix a single time;
* a subtree is **pruned** as soon as its row's in-band minimum exceeds
  ``d`` (the Levenshtein-automaton dead-state condition) — one bad leading
  character eliminates every entry spelled that way;
* each subtree records the **shortest and longest terminal below it**, so
  branches whose every entry violates ``|len(query) - len(token)| > d``
  are skipped before any DP work (the length pre-partition).

Cell values are clipped to ``d + 1`` exactly like ``bounded_levenshtein``,
so the distance reported for each entry is *identical* to the per-entry
scan — the property tests in ``tests/test_matcher.py`` assert equality over
random token sets, and the golden-corpus CI guard asserts it end to end.

A compiled bucket is immutable once built; writers invalidate by dropping
the cached instance (see :meth:`PerturbationDictionary.compiled_bucket` and
the per-shard caches in :mod:`repro.batch.sharded_index`).

Two pieces make compiled buckets cheap to share and to persist:

* :class:`TrieFamily` owns the actual trie variants for one token sequence;
  a :class:`CompiledBucket` is a *view* onto a family.  Buckets whose token
  sequences are identical across phonetic levels — every singleton bucket,
  and any bucket whose tokens never split at a deeper level — share one
  family through a :class:`TrieFamilyRegistry`, so the trie is compiled
  once instead of once per level.
* families serialize to flat JSON-compatible node arrays
  (:meth:`TrieFamily.to_payload` / :meth:`TrieFamily.from_payload`), which
  is what the warm-start snapshot subsystem (:mod:`repro.storage.snapshot`)
  persists so process restarts skip recompilation entirely.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, Iterator, List, Mapping, Sequence, Tuple

from ..analysis.sanitizer import tracked_lock
from .deletes import DeleteIndex
from .dictionary import DictionaryEntry
from .edit_distance import bounded_levenshtein, bounded_osa
from .kernels import (
    MYERS_MAX_PATTERN,
    myers_trie_match,
    native_available,
    native_distance,
    resolve_kernel,
)

__all__ = ["CompiledBucket", "TrieFamily", "TrieFamilyRegistry"]


class _TrieNode:
    """One character of the compiled trie (build-time representation)."""

    __slots__ = ("children", "items", "terminals", "min_depth", "max_depth")

    def __init__(self) -> None:
        self.children: dict[str, "_TrieNode"] = {}
        # Frozen (char, child) pairs iterated on the match hot path; the
        # children dict is dropped after the freeze.
        self.items: tuple[tuple[str, "_TrieNode"], ...] = ()
        self.terminals: tuple[int, ...] = ()
        self.min_depth = 0
        self.max_depth = 0


def _build_trie(items: Sequence[tuple[int, str]]) -> _TrieNode:
    """Compile ``(entry index, text)`` pairs into a terminal-indexed trie.

    Indexes are carried explicitly (rather than by enumeration) so filtered
    views — the English-only trie below — keep reporting positions in the
    full entry sequence.
    """
    root = _TrieNode()
    for index, text in items:
        node = root
        for char in text:
            child = node.children.get(char)
            if child is None:
                child = _TrieNode()
                node.children[char] = child
            node = child
        node.terminals += (index,)
    _freeze(root)
    return root


def _freeze(root: _TrieNode) -> None:
    """Compute per-subtree terminal depth bounds and freeze child lists.

    Iterative post-order so pathological one-character-per-node chains
    (very long tokens) cannot hit the recursion limit.
    """
    order: list[tuple[_TrieNode, int]] = []
    stack: list[tuple[_TrieNode, int]] = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        order.append((node, depth))
        for child in node.children.values():
            stack.append((child, depth + 1))
    for node, depth in reversed(order):
        minimum = depth if node.terminals else None
        maximum = depth if node.terminals else None
        for child in node.children.values():
            minimum = child.min_depth if minimum is None else min(minimum, child.min_depth)
            maximum = child.max_depth if maximum is None else max(maximum, child.max_depth)
        # Every node has a terminal somewhere below it by construction.
        node.min_depth = depth if minimum is None else minimum
        node.max_depth = depth if maximum is None else maximum
        node.items = tuple(node.children.items())
        node.children = {}


#: Serialized names of the trie variants, keyed by (canonical, english_only).
_VARIANT_NAMES: Dict[Tuple[bool, bool], str] = {
    (False, False): "raw",
    (True, False): "canonical",
    (False, True): "raw_english",
    (True, True): "canonical_english",
}
_VARIANT_KEYS: Dict[str, Tuple[bool, bool]] = {
    name: key for key, name in _VARIANT_NAMES.items()
}


def _trie_to_payload(root: _TrieNode) -> List[list]:
    """Flatten a frozen trie into JSON-serializable node rows.

    Nodes are emitted in breadth-first order (row 0 is the root); each row is
    ``[edge_chars, edge_targets, terminals, min_depth, max_depth]`` with the
    edge characters joined into one string and ``edge_targets`` the matching
    child row indexes (splitting the pair keeps the JSON compact and lets
    hydration zip two C-speed sequences instead of slicing an interleaved
    list).  The format is stable — it is what the snapshot subsystem
    persists — so changes here must bump
    ``repro.storage.snapshot.SNAPSHOT_FORMAT_VERSION``.
    """
    nodes: List[_TrieNode] = [root]
    row_of: Dict[int, int] = {id(root): 0}
    cursor = 0
    while cursor < len(nodes):
        node = nodes[cursor]
        cursor += 1
        for _, child in node.items:
            row_of[id(child)] = len(nodes)
            nodes.append(child)
    payload: List[list] = []
    for node in nodes:
        payload.append(
            [
                "".join(char for char, _ in node.items),
                [row_of[id(child)] for _, child in node.items],
                list(node.terminals),
                node.min_depth,
                node.max_depth,
            ]
        )
    return payload


def _trie_from_payload(
    payload: Sequence[Sequence], terminal_bound: int | None = None
) -> _TrieNode:
    """Rebuild a frozen trie from :func:`_trie_to_payload` rows.

    This is the warm-start fast path: reconstructing nodes from flat rows
    does no per-character insertion and no freeze pass, which is what makes
    snapshot hydration several times cheaper than recompilation.  Nodes are
    allocated raw (``__new__``) with only the four slots the matcher reads —
    the build-time ``children`` dict never exists.  Malformed rows raise
    ``ValueError``/``IndexError``/``TypeError``/``KeyError`` — callers (the
    snapshot loader) treat any of them as corruption.  With
    ``terminal_bound`` every terminal must index a real entry of the bucket
    the trie will serve.
    """
    if not payload:
        return _build_trie([])
    new = _TrieNode.__new__
    built = [new(_TrieNode) for _ in payload]
    getter = built.__getitem__
    node_count = len(payload)
    for node, (edge_chars, edge_targets, terminals, min_depth, max_depth) in zip(
        built, payload
    ):
        if len(edge_chars) != len(edge_targets):
            raise ValueError("trie row edge chars/targets length mismatch")
        node.terminals = tuple(terminals)
        node.min_depth = min_depth
        node.max_depth = max_depth
        node.items = tuple(zip(edge_chars, map(getter, edge_targets)))
    root = built[0]
    # Sanity-check the fields the match loop does arithmetic on or indexes
    # with; a checksum collision or hand-edited file must raise here (and
    # fall back to compilation), never degenerate into wrong matches or an
    # IndexError on the query path.
    for node, row in zip(built, payload):
        if not isinstance(node.min_depth, int) or not isinstance(node.max_depth, int):
            raise ValueError("trie row depth bounds must be integers")
        for index in node.terminals:
            if not isinstance(index, int):
                raise ValueError("trie row terminals must be integers")
            if terminal_bound is not None and not 0 <= index < terminal_bound:
                raise ValueError("trie row terminal out of range for its bucket")
        for target in row[1]:
            # map(getter, ...) above accepted negative indexes (Python
            # wrap-around) — reject them and anything out of range.
            if not isinstance(target, int) or not 0 <= target < node_count:
                raise ValueError("trie row edge target out of range")
    return root


class TrieFamily:
    """The trie variants shared by every bucket with one token sequence.

    The same token sequence produces byte-identical tries regardless of
    which phonetic level's bucket asked for them (the lowered spelling, the
    canonical fold, and the lexicon flag are all functions of the raw
    token), so buckets at different levels hand out views onto one family
    instead of compiling per level.  Variants are built lazily under the
    family lock and cached forever — a family is immutable once its token
    sequence is fixed; writers invalidate by dropping the *bucket* that
    points at it, never by mutating the family.
    """

    __slots__ = (
        "tokens",
        "_tries",
        "_pending",
        "_lock",
        "_builds",
        "_hydrated",
        "_loader",
        "_deletes",
        "_deletes_pending",
        "_deletes_lock",
        "_delete_builds",
        "__weakref__",
    )

    def __init__(self, tokens: Sequence[str]) -> None:
        self.tokens: Tuple[str, ...] = tuple(tokens)
        # Tries keyed by (canonical representation?, English entries only?).
        self._tries: Dict[Tuple[bool, bool], _TrieNode] = {}
        # Serialized rows awaiting decode (snapshot hydration is lazy: the
        # load installs payloads in O(1) and the first query of each variant
        # pays the — cheap, insertion-free — node rebuild).
        self._pending: Dict[Tuple[bool, bool], Sequence[Sequence]] = {}
        self._lock = tracked_lock("matcher.family")
        self._builds = 0
        self._hydrated = 0
        # A memory-mapped v2 snapshot defers even the *parse* of the
        # serialized rows: the loader reads this family's record out of the
        # mapped shard on first use (see storage.snapshot), after which it
        # behaves exactly like `_pending` payload rows.
        self._loader: "Callable[[], Mapping[str, object]] | None" = None
        # SymSpell delete-neighborhood indexes, keyed and built lazily like
        # the trie variants but under their own (leaf) lock so an index
        # build never serializes against trie compilation.
        self._deletes: Dict[Tuple[bool, bool], DeleteIndex] = {}
        self._deletes_pending: Dict[Tuple[bool, bool], Sequence[Sequence]] = {}
        self._deletes_lock = tracked_lock("matcher.deletes")
        self._delete_builds = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrieFamily({len(self.tokens)} tokens, {len(self._tries)} tries)"

    @property
    def tries_built(self) -> int:
        """How many trie variants this family compiled (not counting hydration)."""
        return self._builds

    @property
    def tries_hydrated(self) -> int:
        """How many trie variants were decoded from snapshot payloads."""
        return self._hydrated

    @property
    def deletes_built(self) -> int:
        """How many delete-neighborhood indexes this family built fresh."""
        return self._delete_builds

    def _drain_loader_locked(self) -> None:
        """Pull the mmap'd payload in, once, under :attr:`_lock`.

        A lazily mapped family (v2 snapshot) starts with *no* parked rows —
        only a loader closure reading its record out of the mapped shard.
        The first variant request drains it into the ordinary ``_pending``
        dicts; a loader that fails (unmapped file, torn shard) simply leaves
        them empty and the variants compile fresh, mirroring how corrupt
        eager payloads degrade.
        """
        loader = self._loader
        if loader is None:
            return
        self._loader = None
        try:
            payload = loader()
        except (KeyError, IndexError, TypeError, ValueError, OSError):
            return
        if not isinstance(payload, Mapping):
            return
        tries = payload.get("tries", {})
        if isinstance(tries, Mapping):
            for name, rows in tries.items():
                key = _VARIANT_KEYS.get(str(name))
                if key is not None and isinstance(rows, (list, tuple)):
                    self._pending.setdefault(key, rows)
        deletes = payload.get("deletes", {})
        if isinstance(deletes, Mapping):
            # matcher.deletes ranks above matcher.family, so parking the
            # delete rows under both locks is hierarchy-clean.
            with self._deletes_lock:
                for name, rows in deletes.items():
                    key = _VARIANT_KEYS.get(str(name))
                    if key is not None and isinstance(rows, (list, tuple)):
                        self._deletes_pending.setdefault(key, rows)

    @property
    def compiled_variants(self) -> Tuple[str, ...]:
        """Names of the variants currently materialized or pending (sorted)."""
        with self._lock:
            keys = set(self._tries) | set(self._pending)
            return tuple(sorted(_VARIANT_NAMES[key] for key in keys))

    def trie(
        self,
        canonical: bool,
        english_only: bool,
        entries: Sequence[DictionaryEntry],
    ) -> _TrieNode:
        """Get, decode, or build the requested variant from ``entries``.

        ``entries`` must spell :attr:`tokens` in order — any bucket viewing
        this family satisfies that by construction, so whichever view asks
        first pays the compilation and every later view (same level or not)
        reuses it.  A pending snapshot payload is decoded in preference to
        compiling; a payload that fails to decode (possible only on a
        checksum collision or concurrent file tampering) falls back to a
        fresh compile, never to an error on the query path.
        """
        key = (canonical, english_only)
        trie = self._tries.get(key)
        if trie is None:
            with self._lock:
                trie = self._tries.get(key)
                if trie is None:
                    self._drain_loader_locked()
                    rows = self._pending.pop(key, None)
                    if rows is not None:
                        try:
                            trie = _trie_from_payload(
                                rows, terminal_bound=len(self.tokens)
                            )
                            self._hydrated += 1
                        except (KeyError, IndexError, TypeError, ValueError):
                            trie = None
                    if trie is None:
                        strings = tuple(
                            entry.canonical if canonical else entry.token_lower
                            for entry in entries
                        )
                        trie = _build_trie(
                            [
                                (index, strings[index])
                                for index, entry in enumerate(entries)
                                if not english_only or entry.is_word
                            ]
                        )
                        self._builds += 1
                    self._tries[key] = trie
        return trie

    def delete_index(
        self,
        canonical: bool,
        english_only: bool,
        entries: Sequence[DictionaryEntry],
    ) -> DeleteIndex:
        """Get, decode, or build the requested delete-neighborhood index.

        Mirrors :meth:`trie` exactly — double-checked lazy build, snapshot
        rows preferred over a fresh build, corrupt rows fall back to
        building — but under the separate ``matcher.deletes`` lock so a
        (potentially large) index build never blocks trie compilation.
        """
        key = (canonical, english_only)
        index = self._deletes.get(key)
        if index is None:
            if self._loader is not None:
                with self._lock:
                    self._drain_loader_locked()
            with self._deletes_lock:
                index = self._deletes.get(key)
                if index is None:
                    rows = self._deletes_pending.pop(key, None)
                    if rows is not None:
                        try:
                            index = DeleteIndex.from_rows(
                                rows, index_bound=len(self.tokens)
                            )
                        except (IndexError, TypeError, ValueError):
                            index = None
                    if index is None:
                        strings = tuple(
                            entry.canonical if canonical else entry.token_lower
                            for entry in entries
                        )
                        index = DeleteIndex.build(
                            (position, strings[position])
                            for position, entry in enumerate(entries)
                            if not english_only or entry.is_word
                        )
                        self._delete_builds += 1
                    self._deletes[key] = index
        return index

    def to_payload(self) -> dict:
        """Serialize the token sequence plus every materialized variant.

        Variants still pending from a snapshot load are passed through
        verbatim (re-snapshotting a hydrated system must not lose the tries
        it never happened to query), and a still-lazy mmap loader is drained
        first for the same reason.  Delete-neighborhood indexes ride along
        under an optional ``deletes`` key — omitted when none were built, so
        payload bytes are unchanged for workloads that never select the
        SymSpell kernel.
        """
        with self._lock:
            self._drain_loader_locked()
            tries = {
                _VARIANT_NAMES[key]: list(rows) for key, rows in self._pending.items()
            }
            tries.update(
                {
                    _VARIANT_NAMES[key]: _trie_to_payload(trie)
                    for key, trie in self._tries.items()
                }
            )
            payload = {"tokens": list(self.tokens), "tries": tries}
            with self._deletes_lock:
                deletes = {
                    _VARIANT_NAMES[key]: list(rows)
                    for key, rows in self._deletes_pending.items()
                }
                deletes.update(
                    {
                        _VARIANT_NAMES[key]: index.to_rows()
                        for key, index in self._deletes.items()
                    }
                )
            if deletes:
                payload["deletes"] = deletes
            return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "TrieFamily":
        """Rebuild a family (tokens + serialized tries) from :meth:`to_payload`.

        Decoding is deferred: the payload rows are parked per variant and
        decoded on first use (see :meth:`trie`), so hydrating thousands of
        families is O(families), not O(trie nodes).  Unknown variant names
        are ignored so snapshots written by newer minor revisions stay
        loadable; a structurally foreign payload raises
        (``KeyError``/``TypeError``/``ValueError``), which the snapshot
        loader reports as corruption.

        A payload exposing a callable ``lazy_tries`` attribute (the mmap'd
        v2 shard reader, :class:`repro.storage.snapshot.LazyFamilyPayload`)
        defers further: only the tokens are read now, and the rows stay in
        the mapped file until the first variant request drains the loader —
        that is what makes v2 hydration O(page faults).
        """
        tokens = payload["tokens"]
        if not isinstance(tokens, (list, tuple)):
            raise ValueError("family payload must carry a 'tokens' sequence")
        family = cls(tuple(str(token) for token in tokens))
        lazy = getattr(payload, "lazy_tries", None)
        if callable(lazy):
            family._loader = lazy
            return family
        tries = payload.get("tries", {})
        if not isinstance(tries, Mapping):
            raise ValueError("family payload must carry 'tokens' and a 'tries' mapping")
        for name, rows in tries.items():
            key = _VARIANT_KEYS.get(str(name))
            if key is None:
                continue
            if not isinstance(rows, (list, tuple)):
                raise ValueError(f"trie variant {name!r} must be a list of node rows")
            family._pending[key] = rows
        deletes = payload.get("deletes", {})
        if isinstance(deletes, Mapping):
            for name, rows in deletes.items():
                key = _VARIANT_KEYS.get(str(name))
                if key is not None and isinstance(rows, (list, tuple)):
                    family._deletes_pending[key] = rows
        return family


class TrieFamilyRegistry:
    """Deduplicates trie compilation across buckets sharing one token sequence.

    Families are held weakly: a family stays alive exactly as long as some
    compiled bucket (dictionary LRU, shard cache, snapshot hydration list)
    references it, so the registry never pins memory on its own.  The
    counters feed the compiled-cache stats surface — ``views`` counts every
    bucket that attached to a family, ``families_created`` how many distinct
    tries-sets were actually compiled or adopted; their difference is the
    number of compilations the level-sharing saved.
    """

    def __init__(self) -> None:
        self._families: "weakref.WeakValueDictionary[Tuple[str, ...], TrieFamily]" = (
            weakref.WeakValueDictionary()
        )
        self._lock = tracked_lock("matcher.registry")
        self._created = 0
        self._views = 0
        self._adopted = 0

    def family_for(self, entries: Sequence[DictionaryEntry]) -> TrieFamily:
        """The shared family for ``entries``' token sequence (created on miss)."""
        key = tuple(entry.token for entry in entries)
        with self._lock:
            self._views += 1
            family = self._families.get(key)
            if family is None:
                family = TrieFamily(key)
                self._families[key] = family
                self._created += 1
            return family

    def adopt(self, family: TrieFamily) -> TrieFamily:
        """Register a hydrated family, preferring an existing live one.

        Snapshot loading rebuilds families from disk; adopting them here
        means later compilations (dictionary or shard) find the pre-built
        tries instead of compiling fresh ones.
        """
        with self._lock:
            existing = self._families.get(family.tokens)
            if existing is not None:
                return existing
            self._families[family.tokens] = family
            self._adopted += 1
            return family

    def stats(self) -> dict[str, int]:
        """Counters for the stats surfaces (views - created - adopted = shares)."""
        with self._lock:
            return {
                "views": self._views,
                "families_created": self._created,
                "families_adopted": self._adopted,
                "families_shared": max(
                    0, self._views - self._created - self._adopted
                ),
                "live_families": len(self._families),
            }


class CompiledBucket(Sequence[DictionaryEntry]):
    """A sound bucket compiled for one-pass edit-distance matching.

    Behaves as an immutable sequence of its :class:`DictionaryEntry` objects
    (in ``tokens_for_key`` order), so every consumer of a plain bucket —
    including the linear fallback path of
    :meth:`~repro.core.lookup.LookupEngine.build_result` — accepts a
    compiled one unchanged.  The raw-spelling and canonical-form tries are
    built lazily on first use (canonical-distance queries are rare) and live
    on the bucket's :class:`TrieFamily` — pass ``family`` (usually obtained
    from a :class:`TrieFamilyRegistry`) to share tries with every other
    bucket spelling the same token sequence; without it the bucket gets a
    private family, preserving the original standalone behavior.
    """

    __slots__ = ("entries", "family")

    def __init__(
        self,
        entries: Sequence[DictionaryEntry],
        family: TrieFamily | None = None,
    ) -> None:
        self.entries: tuple[DictionaryEntry, ...] = tuple(entries)
        self.family: TrieFamily = (
            family
            if family is not None
            else TrieFamily(tuple(entry.token for entry in self.entries))
        )

    @property
    def tokens_lower(self) -> tuple[str, ...]:
        """Lowered raw spellings in bucket order (cached per entry)."""
        return tuple(entry.token_lower for entry in self.entries)

    # ------------------------------------------------------------------ #
    # sequence protocol (drop-in for a plain entry tuple)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index):  # type: ignore[override]
        return self.entries[index]

    def __iter__(self) -> Iterator[DictionaryEntry]:
        return iter(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledBucket({len(self.entries)} entries)"

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def _trie(self, canonical: bool, english_only: bool = False) -> _TrieNode:
        return self.family.trie(canonical, english_only, self.entries)

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def kernel_for(
        self,
        kernel: str,
        query_length: int,
        max_distance: int,
        transpositions: bool = False,
    ) -> str:
        """The concrete kernel :meth:`match` will run for these parameters.

        Query engines call this to attribute the match in the per-kernel
        hit counters; passing the resolved name back into :meth:`match` is
        idempotent (a concrete eligible kernel resolves to itself).
        """
        return resolve_kernel(
            kernel, query_length, max_distance, len(self.entries), transpositions
        )

    def match(
        self,
        query: str,
        max_distance: int,
        canonical: bool = False,
        transpositions: bool = False,
        english_only: bool = False,
        kernel: str = "auto",
    ) -> Dict[int, int]:
        """Distances of every entry within ``max_distance`` of ``query``.

        ``query`` must already be in the compared representation — the
        *lowered* raw spelling for the default mode, the *canonical* folded
        form when ``canonical`` is true (mirroring what
        ``LookupEngine.build_result`` compares).  Returns a mapping
        from entry index (position in :attr:`entries`) to its exact
        distance; entries beyond the bound are absent, exactly as
        ``bounded_levenshtein`` returns ``None`` for them.

        With ``transpositions`` the distance is optimal-string-alignment
        (Damerau): an adjacent swap costs one edit, matching ``bounded_osa``
        cell for cell.  The traversal is still one pass — each DFS frame
        additionally carries its parent's DP row and the character of the
        edge into the node, which is exactly the two-back state the OSA
        transposition case reads.

        With ``english_only`` the traversal runs over a trie holding only
        the bucket's lexicon-word entries (built lazily, cached like the
        other variants).  Normalization discards non-word candidates
        unconditionally, and real sound buckets are dominated by observed
        misspellings — matching the filtered trie does strictly less DP
        work than matching everything and filtering afterwards.  Reported
        indexes still address :attr:`entries`.

        ``kernel`` selects the inner loop (see :mod:`repro.core.kernels`):
        the bit-parallel Myers traversal, the SymSpell delete-neighborhood
        index, or the banded DP rows below.  Every kernel reports the same
        mapping for the same query — the policy only chooses how fast it is
        computed — and ineligible selections degrade to one that can honor
        the query (transpositions and long patterns always run banded).
        """
        if max_distance < 0 or not self.entries:
            return {}
        selected = resolve_kernel(
            kernel, len(query), max_distance, len(self.entries), transpositions
        )
        if selected == "myers":
            return myers_trie_match(
                self._trie(canonical, english_only), query, max_distance
            )
        if selected == "symspell":
            return self._match_symspell(
                query, max_distance, canonical, transpositions, english_only
            )
        n = len(query)
        limit = max_distance + 1
        results: Dict[int, int] = {}
        root = self._trie(canonical, english_only)
        first_row = [col if col <= max_distance else limit for col in range(n + 1)]
        # Frames carry (node, its DP row, its depth, the parent's DP row,
        # the edge character into the node); DFS order is irrelevant to the
        # result set (each terminal's distance depends only on its own
        # root-to-terminal path).  The last two fields are the transposition
        # lookback; the plain-Levenshtein mode never reads them.
        stack: list[tuple[_TrieNode, list[int], int, list[int] | None, str]] = [
            (root, first_row, 0, None, "")
        ]
        while stack:
            node, row, depth, parent_row, edge_char = stack.pop()
            if node.terminals:
                distance = row[n]
                if distance <= max_distance:
                    for index in node.terminals:
                        results[index] = distance
            child_depth = depth + 1
            band_low = child_depth - max_distance
            window_start = 1 if band_low < 1 else band_low
            window_end = child_depth + max_distance
            if window_end > n:
                window_end = n
            for char, child in node.items:
                # Length pre-partition: every terminal below `child` is
                # shorter than len(query) - d or longer than len(query) + d,
                # so no descendant can report a distance — skip the DP.
                if child.min_depth > n + max_distance or child.max_depth < n - max_distance:
                    continue
                new_row = [limit] * (n + 1)
                if band_low <= 0:
                    new_row[0] = child_depth if child_depth <= max_distance else limit
                row_minimum = new_row[0]
                for col in range(window_start, window_end + 1):
                    value = row[col - 1] + (query[col - 1] != char)
                    insertion = new_row[col - 1] + 1
                    if insertion < value:
                        value = insertion
                    deletion = row[col] + 1
                    if deletion < value:
                        value = deletion
                    if (
                        transpositions
                        and parent_row is not None
                        and col > 1
                        and char == query[col - 2]
                        and edge_char == query[col - 1]
                    ):
                        # OSA: token[-1] == query[col-2] and token[-2] ==
                        # query[col-1] — swap the pair for one edit on top
                        # of the grandparent prefix's cost.
                        transposition = parent_row[col - 2] + 1
                        if transposition < value:
                            value = transposition
                    if value < limit:
                        new_row[col] = value
                        if value < row_minimum:
                            row_minimum = value
                # Automaton dead state: no cell of this row is within the
                # bound, so no extension of this prefix ever will be.  Valid
                # under OSA too: a transposition reaching two rows back from
                # a descendant would imply an in-band cell <= bound in this
                # row (OSA cells still dominate |row - col|).
                if row_minimum <= max_distance:
                    stack.append((child, new_row, child_depth, row, char))
        return results

    def _match_symspell(
        self,
        query: str,
        max_distance: int,
        canonical: bool,
        transpositions: bool,
        english_only: bool,
    ) -> Dict[int, int]:
        """Delete-neighborhood candidate generation + exact verification.

        The index (built lazily on the family, like the tries) yields a
        superset of the true match set for ``d <= 2`` under Levenshtein and
        OSA alike; each candidate is then scored with the same bounded
        distance the linear path uses — or the cffi Myers kernel when it is
        compiled in and both strings fit a word — so the returned mapping
        is byte-identical to the trie traversals'.
        """
        index = self.family.delete_index(canonical, english_only, self.entries)
        candidates = index.candidates(query, max_distance)
        if not candidates:
            return {}
        entries = self.entries
        results: Dict[int, int] = {}
        use_native = (
            not transpositions
            and len(query) <= MYERS_MAX_PATTERN
            and native_available()
        )
        verify = bounded_osa if transpositions else bounded_levenshtein
        for entry_index in candidates:
            entry = entries[entry_index]
            text = entry.canonical if canonical else entry.token_lower
            if use_native and len(text) <= MYERS_MAX_PATTERN:
                distance = native_distance(query, text, max_distance)
            else:
                distance = verify(query, text, max_distance)
            if distance is not None:
                results[entry_index] = distance
        return results

    def match_tokens(
        self,
        query: str,
        max_distance: int,
        canonical: bool = False,
        transpositions: bool = False,
        english_only: bool = False,
        kernel: str = "auto",
    ) -> Tuple[Tuple[str, int], ...]:
        """``(raw token, distance)`` pairs in bucket order (test/debug view)."""
        distances = self.match(
            query,
            max_distance,
            canonical=canonical,
            transpositions=transpositions,
            english_only=english_only,
            kernel=kernel,
        )
        return tuple(
            (entry.token, distances[index])
            for index, entry in enumerate(self.entries)
            if index in distances
        )
