"""Edit distances used by the SMS property.

The Look Up and Normalization functions decide whether two tokens "mean the
same thing" by combining phonetic equality (customized Soundex) with a bound
on their Levenshtein edit distance (paper §III-B): two tokens that sound the
same and are separated by a sufficiently small number of character edits are
treated as spelling variants of one word.

Four implementations are provided:

* :func:`levenshtein_distance` — the classic Wagner-Fischer dynamic program
  (two-row memory);
* :func:`bounded_levenshtein` — a banded variant that stops as soon as the
  distance provably exceeds a caller-supplied bound (the hot path of the
  dictionary lookups, where only ``d <= 3`` matters);
* :func:`damerau_levenshtein_distance` — the optimal-string-alignment
  variant that counts adjacent transpositions as a single edit, which better
  matches human typo behaviour ("demorcats") and is exposed as an option on
  the SMS check;
* :func:`bounded_osa` — the banded/bounded form of the optimal-string-
  alignment distance, playing the same role for ``use_transpositions``
  call sites that :func:`bounded_levenshtein` plays for the plain policy.
"""

from __future__ import annotations

from ..errors import CrypTextError


def _validate(first: str, second: str) -> None:
    if not isinstance(first, str) or not isinstance(second, str):
        raise CrypTextError(
            "edit distances are defined over strings, got "
            f"{type(first).__name__} and {type(second).__name__}"
        )


def levenshtein_distance(first: str, second: str) -> int:
    """Number of single-character insertions/deletions/substitutions.

    >>> levenshtein_distance("democrats", "demokRATs".lower())
    1
    >>> levenshtein_distance("kitten", "sitting")
    3
    """
    _validate(first, second)
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    # Keep the shorter string in the inner loop for cache friendliness.
    if len(second) < len(first):
        first, second = second, first
    previous = list(range(len(first) + 1))
    current = [0] * (len(first) + 1)
    for row, char_second in enumerate(second, start=1):
        current[0] = row
        for col, char_first in enumerate(first, start=1):
            substitution = previous[col - 1] + (char_first != char_second)
            insertion = current[col - 1] + 1
            deletion = previous[col] + 1
            current[col] = min(substitution, insertion, deletion)
        previous, current = current, previous
    return previous[len(first)]


def bounded_levenshtein(first: str, second: str, bound: int) -> int | None:
    """Levenshtein distance if it is ``<= bound``, else ``None``.

    Uses a diagonal band of width ``2 * bound + 1``: cells outside the band
    can never contribute to a distance within the bound, and a row whose
    in-band minimum already exceeds the bound terminates the computation
    early.

    >>> bounded_levenshtein("republicans", "repubLIEcans".lower(), 3)
    1
    >>> bounded_levenshtein("vaccine", "elephant", 2) is None
    True
    """
    _validate(first, second)
    if bound < 0:
        raise CrypTextError(f"bound must be non-negative, got {bound}")
    if first == second:
        return 0
    length_difference = abs(len(first) - len(second))
    if length_difference > bound:
        return None
    if not first or not second:
        return length_difference if length_difference <= bound else None
    if len(second) < len(first):
        first, second = second, first
    width = len(first)
    infinity = bound + 1
    previous = [col if col <= bound else infinity for col in range(width + 1)]
    for row, char_second in enumerate(second, start=1):
        window_start = max(1, row - bound)
        window_end = min(width, row + bound)
        current = [infinity] * (width + 1)
        if window_start == 1:
            current[0] = row if row <= bound else infinity
        row_minimum = infinity
        for col in range(window_start, window_end + 1):
            char_first = first[col - 1]
            substitution = previous[col - 1] + (char_first != char_second)
            insertion = current[col - 1] + 1
            deletion = previous[col] + 1
            value = min(substitution, insertion, deletion)
            current[col] = value if value <= bound else infinity
            if current[col] < row_minimum:
                row_minimum = current[col]
        if row_minimum >= infinity:
            return None
        previous = current
    distance = previous[width]
    return distance if distance <= bound else None


def bounded_osa(first: str, second: str, bound: int) -> int | None:
    """Optimal-string-alignment distance if it is ``<= bound``, else ``None``.

    The transposition-aware counterpart of :func:`bounded_levenshtein`: an
    adjacent swap costs one edit, the DP is restricted to a diagonal band of
    width ``2 * bound + 1``, and a row whose in-band minimum already exceeds
    the bound terminates the computation.  The band argument stays valid for
    OSA because every cell still satisfies ``D[i][j] >= |i - j|`` (no edit
    operation, transposition included, changes lengths by more than one per
    unit cost), so an all-over-bound row can never be rescued by a later
    transposition reaching two rows back.

    >>> bounded_osa("the", "teh", 1)
    1
    >>> bounded_levenshtein("the", "teh", 1) is None
    True
    >>> bounded_osa("vaccine", "elephant", 2) is None
    True
    """
    _validate(first, second)
    if bound < 0:
        raise CrypTextError(f"bound must be non-negative, got {bound}")
    if first == second:
        return 0
    length_difference = abs(len(first) - len(second))
    if length_difference > bound:
        return None
    if not first or not second:
        return length_difference if length_difference <= bound else None
    # OSA is symmetric, so the shorter string can sit in the inner loop.
    if len(second) < len(first):
        first, second = second, first
    width = len(first)
    infinity = bound + 1
    two_back: list[int] | None = None
    previous = [col if col <= bound else infinity for col in range(width + 1)]
    previous_char = ""
    for row, char_second in enumerate(second, start=1):
        window_start = max(1, row - bound)
        window_end = min(width, row + bound)
        current = [infinity] * (width + 1)
        if window_start == 1:
            current[0] = row if row <= bound else infinity
        row_minimum = infinity
        for col in range(window_start, window_end + 1):
            char_first = first[col - 1]
            substitution = previous[col - 1] + (char_first != char_second)
            insertion = current[col - 1] + 1
            deletion = previous[col] + 1
            value = min(substitution, insertion, deletion)
            if (
                two_back is not None
                and col > 1
                and char_first == previous_char
                and first[col - 2] == char_second
            ):
                transposition = two_back[col - 2] + 1
                if transposition < value:
                    value = transposition
            current[col] = value if value <= bound else infinity
            if current[col] < row_minimum:
                row_minimum = current[col]
        if row_minimum >= infinity:
            return None
        two_back, previous = previous, current
        previous_char = char_second
    distance = previous[width]
    return distance if distance <= bound else None


def damerau_levenshtein_distance(first: str, second: str) -> int:
    """Optimal-string-alignment distance (transpositions count as one edit).

    >>> damerau_levenshtein_distance("democrats", "demorcats")
    1
    >>> levenshtein_distance("democrats", "demorcats")
    2
    """
    _validate(first, second)
    if first == second:
        return 0
    if not first:
        return len(second)
    if not second:
        return len(first)
    # The transposition lookback only ever reaches two rows up, so three
    # rolling rows replace the full O(n*m) matrix.
    cols = len(second) + 1
    two_back: list[int] = []  # populated once row 2 is reached
    previous = list(range(cols))
    for row in range(1, len(first) + 1):
        current = [row] + [0] * len(second)
        char_first = first[row - 1]
        for col in range(1, cols):
            cost = char_first != second[col - 1]
            best = min(
                previous[col] + 1,
                current[col - 1] + 1,
                previous[col - 1] + cost,
            )
            if (
                row > 1
                and col > 1
                and char_first == second[col - 2]
                and first[row - 2] == second[col - 1]
            ):
                best = min(best, two_back[col - 2] + 1)
            current[col] = best
        two_back, previous = previous, current
    return previous[cols - 1]


def similarity_ratio(first: str, second: str) -> float:
    """Normalized similarity in ``[0, 1]`` derived from the Levenshtein distance.

    ``1.0`` means identical strings; ``0.0`` means nothing in common (for two
    empty strings the ratio is defined as ``1.0``).

    >>> similarity_ratio("vaccine", "vaccine")
    1.0
    >>> round(similarity_ratio("vaccine", "vacc1ne"), 3)
    0.857
    """
    _validate(first, second)
    if first == second:
        # Covers the two-empty-strings case (defined as 1.0) without a DP.
        return 1.0
    longest = max(len(first), len(second))
    if not first or not second:
        # The distance to an empty string is the other string's length, so
        # the ratio collapses to 0.0 without running the DP.
        return 0.0
    return 1.0 - levenshtein_distance(first, second) / longest
