"""Core CrypText library: the paper's primary contribution.

The modules in this subpackage implement, from scratch, everything the paper
describes in §III:

* :mod:`repro.core.soundex` — the original SOUNDEX algorithm and the
  customized variant CrypText introduces (visual-character folding,
  phonetic-level-``k`` prefixes);
* :mod:`repro.core.edit_distance` — Levenshtein / Damerau-Levenshtein
  distances, including a bounded variant used by the SMS property check;
* :mod:`repro.core.sms` — the "same Sound, same Meaning, different Spelling"
  property that defines a perturbation;
* :mod:`repro.core.categories` — the taxonomy of human-written perturbation
  strategies the paper observes in the wild;
* :mod:`repro.core.dictionary` — the human-written token database: hash-maps
  ``H_k`` from Soundex encodings to the tokens sharing them;
* :mod:`repro.core.lookup` — the Look Up function (§III-B);
* :mod:`repro.core.matcher` — trie-compiled Levenshtein-automaton matching
  over whole sound buckets (the Look Up hot path);
* :mod:`repro.core.normalizer` — the Normalization function (§III-C);
* :mod:`repro.core.perturber` — the Perturbation function (§III-D);
* :mod:`repro.core.pipeline` — the :class:`~repro.core.pipeline.CrypText`
  facade tying everything together.
"""

from .soundex import OriginalSoundex, CustomSoundex, soundex_key
from .metaphone import MetaphoneEncoder
from .edit_distance import (
    levenshtein_distance,
    bounded_levenshtein,
    damerau_levenshtein_distance,
    similarity_ratio,
)
from .sms import SMSCheck, SMSResult
from .categories import PerturbationCategory, categorize_perturbation
from .dictionary import (
    AddOutcome,
    DictionaryEntry,
    DictionaryStats,
    PerturbationDictionary,
    RecoveryReport,
    SnapshotLoadReport,
    SnapshotSaveReport,
)
from .lookup import LookupEngine, LookupResult, PerturbationMatch
from .matcher import CompiledBucket, TrieFamily, TrieFamilyRegistry
from .normalizer import Normalizer, NormalizationResult, TokenCorrection
from .perturber import Perturber, PerturbationOutcome, PerturbedToken
from .pipeline import CrypText

__all__ = [
    "OriginalSoundex",
    "CustomSoundex",
    "MetaphoneEncoder",
    "soundex_key",
    "levenshtein_distance",
    "bounded_levenshtein",
    "damerau_levenshtein_distance",
    "similarity_ratio",
    "SMSCheck",
    "SMSResult",
    "PerturbationCategory",
    "categorize_perturbation",
    "AddOutcome",
    "DictionaryEntry",
    "DictionaryStats",
    "PerturbationDictionary",
    "RecoveryReport",
    "SnapshotLoadReport",
    "SnapshotSaveReport",
    "CompiledBucket",
    "TrieFamily",
    "TrieFamilyRegistry",
    "LookupEngine",
    "LookupResult",
    "PerturbationMatch",
    "Normalizer",
    "NormalizationResult",
    "TokenCorrection",
    "Perturber",
    "PerturbationOutcome",
    "PerturbedToken",
    "CrypText",
]
