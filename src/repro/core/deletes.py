"""SymSpell-style delete-neighborhood index: candidate generation for d <= 2.

The trie kernels (:mod:`repro.core.matcher`, :mod:`repro.core.kernels`)
*walk* a bucket to find everything within edit distance ``d``.  The SymSpell
approach (SNIPPETS.md Snippet 1, ``symspellpy``) precomputes instead: every
dictionary string is indexed under each of its deletion variants up to depth
:data:`DELETE_DEPTH`, and a query generates *its* deletion variants and
collects the index rows they hit.  The guarantee (Garbe's symmetric-delete
argument, and the property suite in ``tests/test_match_kernel.py``): if two
strings are within edit distance ``d <= 2`` — Levenshtein *or* OSA, an
adjacent transposition being a deletion of either swapped character away
from a shared variant — they share at least one deletion variant of depth
``<= d``, so the candidate set is a superset of the true match set.
Candidates are then verified with the exact bounded distance, which is what
keeps results byte-identical to the trie traversal.

The index trades memory for query time: a bucket of ``N`` strings of length
``L`` stores ``O(N * L^2)`` variant rows.  That is why it is built lazily —
exactly like the trie variants on :class:`~repro.core.matcher.TrieFamily` —
only when the ``symspell`` kernel is actually selected for a bucket, and why
it serializes through the same flat-row payload scheme so a snapshot can
persist what was built (``TrieFamily.to_payload`` embeds these rows).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

__all__ = ["DELETE_DEPTH", "DeleteIndex", "delete_variants"]

#: Deletion depth the index precomputes.  Depth 2 serves every query with
#: ``d <= 2`` (the index side only needs depth >= d); deeper bounds fall
#: back to the trie kernels instead of cubing the index size.
DELETE_DEPTH = 2


def delete_variants(text: str, depth: int) -> Set[str]:
    """Every string reachable from ``text`` by at most ``depth`` deletions.

    Includes ``text`` itself (zero deletions).  The neighborhood is small
    for real tokens — ``1 + L + L*(L-1)/2`` strings at depth 2 — and is
    generated breadth-first so each depth's variants derive from the
    previous depth's set without duplicates.
    """
    variants: Set[str] = {text}
    frontier: Set[str] = {text}
    for _ in range(min(depth, len(text))):
        next_frontier: Set[str] = set()
        for variant in frontier:
            for position in range(len(variant)):
                shorter = variant[:position] + variant[position + 1 :]
                if shorter not in variants:
                    variants.add(shorter)
                    next_frontier.add(shorter)
        frontier = next_frontier
        if not frontier:
            break
    return variants


class DeleteIndex:
    """One bucket variant's precomputed delete-neighborhood map.

    Maps each deletion variant (depth <= :attr:`depth`) of each indexed
    string to the *entry indexes* spelling it — the same index space the
    trie terminals report, so the matcher can verify candidates directly
    against ``CompiledBucket.entries``.  Immutable once built, like a
    frozen trie; writers invalidate by dropping the bucket that owns the
    family this index lives on.
    """

    __slots__ = ("depth", "_variants")

    def __init__(self, depth: int = DELETE_DEPTH) -> None:
        self.depth = depth
        self._variants: Dict[str, Tuple[int, ...]] = {}

    def __len__(self) -> int:
        return len(self._variants)

    @classmethod
    def build(
        cls, items: Iterable[Tuple[int, str]], depth: int = DELETE_DEPTH
    ) -> "DeleteIndex":
        """Index ``(entry index, text)`` pairs (the trie builder's shape).

        Indexes are carried explicitly so filtered views (the English-only
        variant) keep reporting positions in the full entry sequence.
        """
        index = cls(depth)
        variants = index._variants
        for entry_index, text in items:
            for variant in delete_variants(text, depth):
                existing = variants.get(variant)
                variants[variant] = (
                    (entry_index,) if existing is None else existing + (entry_index,)
                )
        return index

    def candidates(self, query: str, max_distance: int) -> List[int]:
        """Entry indexes that *may* lie within ``max_distance`` of ``query``.

        Generates the query's deletion variants to depth
        ``min(max_distance, self.depth)`` and unions the rows they hit.
        Sorted and deduplicated so verification visits each entry once, in
        bucket order (the order the trie kernels report in).
        """
        depth = min(max_distance, self.depth)
        rows = self._variants
        found: Set[int] = set()
        for variant in delete_variants(query, depth):
            hit = rows.get(variant)
            if hit is not None:
                found.update(hit)
        return sorted(found)

    # ------------------------------------------------------------------ #
    # serialization (TrieFamily.to_payload-style flat rows)
    # ------------------------------------------------------------------ #
    def to_rows(self) -> List[list]:
        """Flatten to JSON-compatible ``[variant, [entry indexes]]`` rows.

        Rows are sorted by variant string so the payload is deterministic
        (snapshots of equal state stay byte-identical).
        """
        return [
            [variant, list(indexes)]
            for variant, indexes in sorted(self._variants.items())
        ]

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Sequence],
        depth: int = DELETE_DEPTH,
        index_bound: "int | None" = None,
    ) -> "DeleteIndex":
        """Rebuild from :meth:`to_rows` output; raises on malformed rows.

        Mirrors the trie payload contract: ``ValueError``/``TypeError``/
        ``IndexError`` signal corruption and the caller (family hydration)
        falls back to building the index fresh from entries.  With
        ``index_bound`` every entry index must address a real bucket entry.
        """
        index = cls(depth)
        variants = index._variants
        for row in rows:
            variant, indexes = row
            if not isinstance(variant, str):
                raise ValueError("delete row variant must be a string")
            cleaned = []
            for entry_index in indexes:
                if not isinstance(entry_index, int) or isinstance(entry_index, bool):
                    raise ValueError("delete row entry indexes must be integers")
                if index_bound is not None and not 0 <= entry_index < index_bound:
                    raise ValueError("delete row entry index out of range for its bucket")
                cleaned.append(entry_index)
            variants[variant] = tuple(cleaned)
        return index
