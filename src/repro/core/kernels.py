"""Match kernels for compiled buckets: policy, bit-parallel Myers DP, counters.

PR 2/3 made Look Up fast by sharing banded DP rows across a bucket trie's
common prefixes (:class:`~repro.core.matcher.CompiledBucket`).  At paper
scale (2M tokens, 400K+ sound keys with heavy skew) the remaining cost is
the *inner loop itself*: a pure-python ``for col in range(...)`` over
``2d + 1`` band cells per trie node.  This module replaces that row with a
Myers/Hyyrö **bit-parallel** step — the whole DP column lives in three
machine-word bitvectors (``VP``/``VN`` plus the running score), and one trie
edge costs a fixed handful of integer operations instead of a Python loop —
for queries up to :data:`MYERS_MAX_PATTERN` characters (one 64-bit word).

Three kernels exist, selected per query by a policy string
(``config.match_kernel``; every query can also override it):

``banded``
    The PR 2/3 trie traversal with banded Wagner-Fischer rows.  The only
    kernel that scores transpositions (OSA), and the fallback for patterns
    longer than one word.
``myers``
    The bit-parallel traversal below.  Plain Levenshtein only; distances
    are *identical* to the banded rows (both report the exact distance for
    every entry within the bound — the property suite in
    ``tests/test_match_kernel.py`` asserts equality against brute force).
``symspell``
    The precomputed delete-neighborhood index (:mod:`repro.core.deletes`),
    eligible at ``d <= 2``.  Candidate generation is hash lookups instead
    of a trie walk; every candidate is verified with the exact bounded
    distance, so results stay byte-identical.
``auto``
    Picks the measured winner per (bucket size, d) — thresholds below come
    from ``benchmarks/bench_match_kernel.py`` (see
    ``benchmarks/results/match_kernel.json``).

``linear`` is not a compiled kernel: it names the non-compiled per-entry
scan path in the shared hit counters (:class:`KernelCounters`), so the
stats surface accounts for every match a query engine performs.

An optional **cffi fast path** (:func:`native_distance`) compiles a C
implementation of the same Myers recurrence for single string pairs.  It is
probed lazily behind the ``CRYPTEXT_NATIVE=1`` environment flag and used by
the SymSpell verification loop, where one call scores one whole candidate
(amortizing the FFI crossing); absence of a compiler, of cffi, or of the
flag silently keeps the pure-python verifier.
"""

from __future__ import annotations

import os
from typing import Dict, Mapping, Tuple

__all__ = [
    "MATCH_KERNELS",
    "KERNEL_NAMES",
    "MYERS_MAX_PATTERN",
    "SYMSPELL_MAX_DISTANCE",
    "AUTO_HUGE_BUCKET",
    "AUTO_SYMSPELL_MIN_BUCKET",
    "build_peq",
    "myers_trie_match",
    "resolve_kernel",
    "KernelCounters",
    "native_distance",
    "native_available",
]

#: Legal values of ``config.match_kernel`` (the selection policy).
MATCH_KERNELS: Tuple[str, ...] = ("auto", "myers", "banded", "symspell")

#: Names that appear in the per-kernel hit counters.  ``linear`` counts the
#: non-compiled fallback path of the query engines.
KERNEL_NAMES: Tuple[str, ...] = ("myers", "banded", "symspell", "linear")

#: Longest pattern (query) the single-word Myers kernel accepts.  One
#: machine word keeps every bitvector operation a single-digit int op in
#: CPython; longer patterns fall back to the banded rows.
MYERS_MAX_PATTERN = 64

#: The delete-neighborhood guarantee (shared variant after <= d deletions
#: on each side) is precomputed to depth 2; larger bounds fall back.
SYMSPELL_MAX_DISTANCE = 2

#: Auto-policy thresholds measured by ``benchmarks/bench_match_kernel.py``
#: (mixed hit/miss workload; see ``benchmarks/results/match_kernel.json``).
#: Below the MIN the trie kernels win (the delete map's hash lookups
#: cannot beat a tiny traversal); between MIN and MAX the SymSpell index
#: wins at d <= 2 (candidate lookup cost does not scale with bucket
#: size).  Above the MAX the token space is so dense that nearly every
#: query-deletion variant collides with entries — candidate sets balloon
#: toward the whole bucket while the banded traversal keeps amortizing DP
#: rows over ever-more-shared prefixes, so banded retakes the lead (at 2M
#: entries it beats both bit-parallel kernels outright).
AUTO_SYMSPELL_MIN_BUCKET = 64
AUTO_HUGE_BUCKET = 200_000


def build_peq(pattern: str) -> Dict[str, int]:
    """Pattern-character bitmask table (``PEQ``) for the Myers recurrence.

    Bit ``i`` of ``peq[c]`` is set when ``pattern[i] == c``.  Any unicode
    character keys the table; characters absent from the pattern read as 0
    through ``dict.get`` on the hot path.
    """
    peq: Dict[str, int] = {}
    for position, char in enumerate(pattern):
        peq[char] = peq.get(char, 0) | (1 << position)
    return peq


def myers_trie_match(root, query: str, max_distance: int) -> Dict[int, int]:
    """Match ``query`` against a frozen trie with bit-parallel DP columns.

    The Hyyrö formulation of Myers' algorithm, with the *trie path* as the
    text: each DFS frame carries the vertical-delta bitvectors ``VP``/``VN``
    and the score ``D[depth][n]`` (edit distance between the full query and
    the path so far), and one trie edge advances all of them in O(1) word
    operations.  Terminals report their score when it is within the bound —
    the score *is* the exact Levenshtein distance of the full strings, so
    the result mapping is identical to the banded traversal's.

    Pruning mirrors the banded kernel's guarantees without materializing a
    row minimum:

    * the **length pre-partition** skips subtrees whose every terminal
      violates ``|len(query) - len(token)| > d`` (same bounds the banded
      walk reads);
    * the **score bound** drops a child when even the deepest terminal
      below it cannot get back inside the bound — the score decreases by
      at most one per consumed character, so
      ``score - (max_depth - depth) > d`` proves every descendant out.

    Both prunes are conservative (they only skip subtrees that cannot
    report), so the result set never changes — only the work.  Patterns
    must satisfy ``1 <= len(query) <= MYERS_MAX_PATTERN``; callers route
    anything else to the banded kernel.
    """
    n = len(query)
    results: Dict[int, int] = {}
    peq = build_peq(query)
    peq_get = peq.get
    full = (1 << n) - 1
    high = 1 << (n - 1)
    # Frames: (node, VP, VN, score, depth).  D[0][j] = j, so the root's
    # column is all-ones vertical-positive with score n.
    stack = [(root, full, 0, n, 0)]
    push = stack.append
    pop = stack.pop
    while stack:
        node, vp, vn, score, depth = pop()
        if node.terminals and score <= max_distance:
            for index in node.terminals:
                results[index] = score
        child_depth = depth + 1
        for char, child in node.items:
            if (
                child.min_depth > n + max_distance
                or child.max_depth < n - max_distance
            ):
                continue
            eq = peq_get(char, 0)
            xv = eq | vn
            xh = (((eq & vp) + vp) ^ vp) | eq
            ph = vn | ~(xh | vp)
            mh = vp & xh
            child_score = score
            if ph & high:
                child_score += 1
            elif mh & high:
                child_score -= 1
            ph = (ph << 1) | 1
            new_vp = (mh << 1) | ~(xv | ph)
            new_vn = ph & xv
            if child_score - (child.max_depth - child_depth) <= max_distance:
                push((child, new_vp & full, new_vn & full, child_score, child_depth))
    return results


def resolve_kernel(
    policy: str,
    query_length: int,
    max_distance: int,
    bucket_size: int,
    transpositions: bool = False,
) -> str:
    """The concrete kernel a compiled-bucket match will run.

    Policies degrade to the nearest eligible kernel instead of raising:
    results must be byte-identical across policies, so an ineligible
    request (a transposition query under ``myers``, ``d > 2`` under
    ``symspell``) silently runs the kernel that *can* honor the query.
    The banded traversal is always eligible.
    """
    myers_ok = not transpositions and 1 <= query_length <= MYERS_MAX_PATTERN
    symspell_ok = 0 <= max_distance <= SYMSPELL_MAX_DISTANCE
    if policy == "banded":
        return "banded"
    if policy == "myers":
        return "myers" if myers_ok else "banded"
    if policy == "symspell":
        if symspell_ok:
            return "symspell"
        return "myers" if myers_ok else "banded"
    if policy != "auto":
        raise ValueError(
            f"unknown match kernel policy {policy!r} (choose from {MATCH_KERNELS})"
        )
    # "auto": the measured winner per (bucket size, distance) — see
    # benchmarks/bench_match_kernel.py for where the thresholds come from.
    if bucket_size > AUTO_HUGE_BUCKET:
        return "banded"
    if symspell_ok and bucket_size >= AUTO_SYMSPELL_MIN_BUCKET:
        return "symspell"
    if myers_ok:
        return "myers"
    return "banded"


class KernelCounters:
    """Per-kernel hit counters (one instance per dictionary).

    Incremented by the query engines on every match they perform —
    compiled kernels by resolved name, the non-compiled per-entry scan as
    ``linear`` — and surfaced through
    ``PerturbationDictionary.stats().compiled_cache["kernels"]`` and
    ``BatchEngine.stats()``.  Callers synchronize externally (the
    dictionary counts under its compiled-cache lock); the object itself is
    a plain counter record.
    """

    __slots__ = tuple(KERNEL_NAMES)

    def __init__(self) -> None:
        for name in KERNEL_NAMES:
            setattr(self, name, 0)

    def note(self, kernel: str, count: int = 1) -> None:
        """Count ``count`` matches served by ``kernel`` (unknown names ignored)."""
        if kernel in KERNEL_NAMES:
            setattr(self, kernel, getattr(self, kernel) + count)

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in KERNEL_NAMES}

    def merge(self, other: "Mapping[str, int] | KernelCounters") -> None:
        """Fold another counter set into this one (stats aggregation)."""
        items = other.to_dict() if isinstance(other, KernelCounters) else other
        for name, value in items.items():
            self.note(name, int(value))


# --------------------------------------------------------------------- #
# optional cffi fast path (feature-probed, never required)
# --------------------------------------------------------------------- #
_NATIVE_SENTINEL = object()
_native = _NATIVE_SENTINEL  # resolved on first probe; None = unavailable

_NATIVE_SOURCE = r"""
#include <stdint.h>

/* Myers/Hyyro bit-parallel edit distance for strings of <= 64 codepoints.
   Returns the exact Levenshtein distance, or -1 when it provably exceeds
   `bound` (early exit on the same score/remaining-length argument the
   python trie kernel prunes with). */
int myers_distance64(const uint32_t *pattern, int m,
                     const uint32_t *text, int n, int bound)
{
    if (m == 0) return n <= bound ? n : -1;
    if (n == 0) return m <= bound ? m : -1;
    uint64_t vp = (m == 64) ? ~0ULL : ((1ULL << m) - 1ULL);
    uint64_t vn = 0;
    uint64_t high = 1ULL << (m - 1);
    int score = m;
    for (int j = 0; j < n; j++) {
        uint32_t c = text[j];
        uint64_t eq = 0;
        for (int i = 0; i < m; i++)
            if (pattern[i] == c) eq |= 1ULL << i;
        uint64_t xv = eq | vn;
        uint64_t xh = (((eq & vp) + vp) ^ vp) | eq;
        uint64_t ph = vn | ~(xh | vp);
        uint64_t mh = vp & xh;
        if (ph & high) score++;
        else if (mh & high) score--;
        ph = (ph << 1) | 1ULL;
        vp = (mh << 1) | ~(xv | ph);
        vn = ph & xv;
        if (score - (n - 1 - j) > bound) return -1;
    }
    return score <= bound ? score : -1;
}
"""


def _probe_native():
    """Compile the cffi kernel once; any failure disables the fast path."""
    global _native
    if _native is not _NATIVE_SENTINEL:
        return _native
    _native = None
    if os.environ.get("CRYPTEXT_NATIVE") != "1":
        return None
    try:  # lint: allow=swallowed-exception (feature probe: any failure means "no native path")
        import cffi

        ffi = cffi.FFI()
        ffi.cdef(
            "int myers_distance64(const uint32_t *pattern, int m,"
            " const uint32_t *text, int n, int bound);"
        )
        library = ffi.verify(_NATIVE_SOURCE)
        _native = (ffi, library)
    except Exception:
        _native = None
    return _native


def native_available() -> bool:
    """Whether the cffi Myers kernel compiled (probes on first call)."""
    return _probe_native() is not None


def native_distance(a: str, b: str, bound: int) -> "int | None":
    """Exact distance of ``a``/``b`` via the C kernel, ``None`` beyond bound.

    Mirrors :func:`repro.core.edit_distance.bounded_levenshtein` exactly
    for strings of at most :data:`MYERS_MAX_PATTERN` codepoints; raises
    ``ValueError`` on longer input or when the native path is unavailable
    (callers check :func:`native_available` and string lengths first).
    """
    probed = _probe_native()
    if probed is None:
        raise ValueError("native kernel is unavailable")
    if len(a) > MYERS_MAX_PATTERN or len(b) > MYERS_MAX_PATTERN:
        raise ValueError("native kernel accepts at most 64 codepoints per string")
    if bound < 0:
        return None
    ffi, library = probed
    pattern = ffi.new("uint32_t[]", [ord(ch) for ch in a] or [0])
    text = ffi.new("uint32_t[]", [ord(ch) for ch in b] or [0])
    distance = library.myers_distance64(pattern, len(a), text, len(b), bound)
    return None if distance < 0 else distance
