"""The Look Up function: discovering text perturbations (paper §III-B).

Given a query token ``x``, Look Up returns the set ``P_x`` of tokens in the
database that satisfy the SMS property with respect to ``x``: they share the
customized Soundex encoding at phonetic level ``k`` and lie within
Levenshtein distance ``d`` of the query.  The paper's GUI displays the result
as an interactive word cloud whose word sizes follow observed frequencies;
the equivalent data export lives in :mod:`repro.viz.wordcloud`.

The default hyper-parameters are the paper's (``k = 1``, ``d = 3``);
"advanced users" may override both per query, which is exposed here as plain
keyword arguments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

from ..analysis.sanitizer import tracked_lock
from ..config import CrypTextConfig, DEFAULT_CONFIG
from ..storage import TTLCache, make_key
from .categories import PerturbationCategory, categorize_perturbation
from .dictionary import DictionaryEntry, PerturbationDictionary
from .edit_distance import bounded_levenshtein, bounded_osa
from .matcher import CompiledBucket
from .sms import SMSCheck


def sound_tag(phonetic_level: int, soundex_key: str) -> tuple[str, int, str]:
    """Cache tag identifying one sound bucket at one phonetic level.

    Every cached query whose answer depends on the bucket ``soundex_key`` at
    level ``phonetic_level`` is tagged with this value, so enrichment can
    invalidate exactly the queries whose buckets changed (shard-scoped
    invalidation) instead of flushing the whole cache.
    """
    return ("sound", phonetic_level, soundex_key)


@dataclass(frozen=True)
class PerturbationMatch:
    """One token of ``P_x`` returned by Look Up."""

    token: str
    canonical: str
    edit_distance: int
    count: int
    is_original: bool
    is_word: bool
    category: PerturbationCategory

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer and visualization exports."""
        return {
            "token": self.token,
            "canonical": self.canonical,
            "edit_distance": self.edit_distance,
            "count": self.count,
            "is_original": self.is_original,
            "is_word": self.is_word,
            "category": self.category.value,
        }


@dataclass(frozen=True)
class LookupResult:
    """The full result of a Look Up query."""

    query: str
    phonetic_level: int
    max_edit_distance: int
    soundex_key: str | None
    matches: tuple[PerturbationMatch, ...] = field(default_factory=tuple)

    @property
    def perturbations(self) -> tuple[PerturbationMatch, ...]:
        """Matches other than the query word itself (``P_x`` proper)."""
        return tuple(match for match in self.matches if not match.is_original)

    @property
    def tokens(self) -> tuple[str, ...]:
        """Raw token strings of every match (query included), most frequent first."""
        return tuple(match.token for match in self.matches)

    def perturbation_tokens(self) -> tuple[str, ...]:
        """Raw token strings of the perturbations only."""
        return tuple(match.token for match in self.perturbations)

    def enriched_queries(self, limit: int | None = None) -> tuple[str, ...]:
        """Query plus perturbations — the "keyword enrichment" use case.

        The §III-B use case searches a platform with the original keyword
        *and* its perturbations; this helper returns that expanded query set.
        """
        extra = self.perturbation_tokens()
        if limit is not None:
            extra = extra[:limit]
        return (self.query, *extra)

    def to_dict(self) -> dict[str, object]:
        """Serialize for the API layer."""
        return {
            "query": self.query,
            "phonetic_level": self.phonetic_level,
            "max_edit_distance": self.max_edit_distance,
            "soundex_key": self.soundex_key,
            "matches": [match.to_dict() for match in self.matches],
        }


class LookupEngine:
    """Executes Look Up queries against a :class:`PerturbationDictionary`.

    Parameters
    ----------
    dictionary:
        The token database to query.
    config:
        Default hyper-parameters (``phonetic_level``, ``edit_distance``) and
        cache settings.
    cache:
        Optional query cache; when omitted and ``config.cache_enabled`` is
        true a private :class:`~repro.storage.TTLCache` is created.  The
        cache mirrors the Redis layer of the original architecture.
    """

    def __init__(
        self,
        dictionary: PerturbationDictionary,
        config: CrypTextConfig = DEFAULT_CONFIG,
        cache: TTLCache | None = None,
    ) -> None:
        self.dictionary = dictionary
        self.config = config
        if cache is not None:
            self.cache = cache
        elif config.cache_enabled:
            self.cache = TTLCache(
                max_entries=config.cache_max_entries,
                default_ttl=config.cache_ttl_seconds,
            )
        else:
            self.cache = None
        self._epoch = 0
        self._epoch_lock = tracked_lock("lookup.epoch")

    @property
    def epoch(self) -> int:
        """Invalidation epoch; bumped by every :meth:`invalidate_sounds`.

        Writers capture it before computing a result and skip caching if it
        moved, so an in-flight query that read a pre-enrichment bucket can
        never re-insert a stale entry after the invalidation ran.
        """
        return self._epoch

    def resolve_transpositions(self, use_transpositions: bool | None) -> bool:
        """The distance policy for one query: explicit override or config."""
        return (
            self.config.use_transpositions
            if use_transpositions is None
            else use_transpositions
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _finish_match(
        query: str, entry: DictionaryEntry, distance: int, transpositions: bool
    ) -> PerturbationMatch:
        """Build the match record once the edit distance is known.

        The categorizer runs in the same canonical-distance mode the match
        was filtered under, so a swap perturbation admitted as one OSA edit
        is labelled ``adjacent_swap`` while the same pair admitted under
        plain Levenshtein (two edits) reports ``mixed``.
        """
        is_original = entry.token == query
        category = (
            PerturbationCategory.IDENTICAL
            if is_original
            else categorize_perturbation(
                query, entry.token, use_transpositions=transpositions
            )
        )
        return PerturbationMatch(
            token=entry.token,
            canonical=entry.canonical,
            edit_distance=distance,
            count=entry.count,
            is_original=is_original,
            is_word=entry.is_word,
            category=category,
        )

    def build_result(
        self,
        query: str,
        phonetic_level: int,
        max_edit_distance: int,
        case_sensitive: bool,
        canonical_distance: bool,
        soundex_key: str | None,
        bucket: Sequence[DictionaryEntry],
        use_transpositions: bool | None = None,
    ) -> LookupResult:
        """Assemble a :class:`LookupResult` from a pre-fetched sound bucket.

        This is the single matching/merging/ranking path shared by the
        per-query route (:meth:`look_up`, which fetches the bucket from the
        dictionary) and the batch engine (which fetches buckets shard-parallel
        from its sharded index) — guaranteeing batch results are identical to
        sequential ones.

        When ``bucket`` is a :class:`~repro.core.matcher.CompiledBucket` the
        edit distances come from one trie traversal instead of a per-entry
        scan; merge/rank semantics are unchanged because matches are still
        folded in bucket order with the exact distances the scan produces.
        """
        if soundex_key is None:
            return LookupResult(
                query=query,
                phonetic_level=phonetic_level,
                max_edit_distance=max_edit_distance,
                soundex_key=None,
                matches=(),
            )
        encoder = self.dictionary.encoder(phonetic_level)
        query_canonical = encoder.canonicalize(query)
        query_lower = query.lower()
        # One distance policy for filtering *and* categorization, shared
        # with SMSCheck and the normalizer: with transpositions an adjacent
        # swap costs one edit on the compiled and the linear path alike.
        # ``use_transpositions`` overrides the config per query (the paper's
        # "advanced users" hook); ``None`` keeps the configured policy.
        transpositions = self.resolve_transpositions(use_transpositions)
        if isinstance(bucket, CompiledBucket):
            compared = query_canonical if canonical_distance else query_lower
            kernel = bucket.kernel_for(
                self.config.match_kernel,
                len(compared),
                max_edit_distance,
                transpositions,
            )
            self.dictionary.note_kernel_hits(kernel)
            distances = bucket.match(
                compared,
                max_edit_distance,
                canonical=canonical_distance,
                transpositions=transpositions,
                kernel=kernel,
            )
            # Visit only the matched entries, in ascending index = bucket
            # order (the merge below is order-sensitive when counts tie).
            entries = bucket.entries
            scored = (
                (entries[index], distances[index]) for index in sorted(distances)
            )
        else:
            # The paper's d bounds the Levenshtein distance between the raw
            # spellings (its worked example counts "republic@@ns" as two
            # edits from "republicans"); canonical-distance mode is offered
            # for callers that want visual folds to count as zero-cost.
            if len(bucket):
                self.dictionary.note_kernel_hits("linear")
            bounded_distance = bounded_osa if transpositions else bounded_levenshtein
            scored = (
                (
                    entry,
                    bounded_distance(
                        query_canonical if canonical_distance else query_lower,
                        entry.canonical if canonical_distance else entry.token_lower,
                        max_edit_distance,
                    ),
                )
                for entry in bucket
            )
        matches: dict[str, PerturbationMatch] = {}
        for entry, distance in scored:
            if distance is None:
                continue
            match = self._finish_match(query, entry, distance, transpositions)
            key = match.token if case_sensitive else match.token.lower()
            existing = matches.get(key)
            if existing is None:
                matches[key] = match
            else:
                # Case-insensitive mode merges "DemocRATs"/"democRATs":
                # keep the more frequent spelling, sum the counts.
                keep, drop = (
                    (existing, match)
                    if existing.count >= match.count
                    else (match, existing)
                )
                matches[key] = PerturbationMatch(
                    token=keep.token,
                    canonical=keep.canonical,
                    edit_distance=min(keep.edit_distance, drop.edit_distance),
                    count=keep.count + drop.count,
                    is_original=keep.is_original or drop.is_original,
                    is_word=keep.is_word or drop.is_word,
                    category=keep.category,
                )
        ordered = sorted(
            matches.values(),
            key=lambda match: (-match.count, match.edit_distance, match.token),
        )
        return LookupResult(
            query=query,
            phonetic_level=phonetic_level,
            max_edit_distance=max_edit_distance,
            soundex_key=soundex_key,
            matches=tuple(ordered),
        )

    def _execute(
        self,
        query: str,
        phonetic_level: int,
        max_edit_distance: int,
        case_sensitive: bool,
        canonical_distance: bool = False,
        use_transpositions: bool | None = None,
    ) -> LookupResult:
        soundex_key = self.dictionary.encoder(phonetic_level).encode_or_none(query)
        bucket: Sequence[DictionaryEntry] = ()
        if soundex_key is not None:
            if self.config.compiled_buckets:
                bucket = self.dictionary.compiled_bucket(
                    soundex_key, phonetic_level=phonetic_level
                )
            else:
                bucket = self.dictionary.tokens_for_key(
                    soundex_key, phonetic_level=phonetic_level
                )
        return self.build_result(
            query,
            phonetic_level,
            max_edit_distance,
            case_sensitive,
            canonical_distance,
            soundex_key,
            bucket,
            use_transpositions=use_transpositions,
        )

    def cache_key(
        self,
        query: str,
        phonetic_level: int,
        max_edit_distance: int,
        case_sensitive: bool,
        canonical_distance: bool,
        use_transpositions: bool | None = None,
    ) -> Hashable:
        """The cache key a Look Up with these parameters is stored under.

        Exposed so the batch engine populates the same cache entries the
        per-query route consults (one cache, two access paths).  The
        *resolved* distance policy — the per-query ``use_transpositions``
        override, or the config default when none was given — is part of the
        key: engines sharing one cache object with different policies must
        never serve each other's results (the same pair can be in-bound
        under OSA and out-of-bound under plain Levenshtein), and an
        overridden query must not collide with a default-policy one.
        """
        return make_key(
            "lookup", query, phonetic_level, max_edit_distance, case_sensitive,
            canonical_distance, self.resolve_transpositions(use_transpositions),
        )

    def cache_result(self, result: LookupResult, case_sensitive: bool,
                     canonical_distance: bool, epoch: int | None = None,
                     use_transpositions: bool | None = None) -> None:
        """Store ``result`` in the query cache, tagged with its sound bucket.

        With ``epoch`` (captured before the result was computed), the store
        is atomically guarded: it is skipped when :meth:`invalidate_sounds`
        ran in the meantime, so a result built from a pre-enrichment bucket
        can never survive the invalidation.
        """
        if self.cache is None:
            return
        key = self.cache_key(
            result.query,
            result.phonetic_level,
            result.max_edit_distance,
            case_sensitive,
            canonical_distance,
            use_transpositions,
        )
        tags = (
            (sound_tag(result.phonetic_level, result.soundex_key),)
            if result.soundex_key is not None
            else ()
        )
        if epoch is None:
            self.cache.set(key, result, tags=tags)
        else:
            self.cache.set_if(key, result, lambda: self._epoch == epoch, tags=tags)

    def invalidate_sounds(self, changed_keys: Iterable[tuple[int, str]]) -> int:
        """Drop cached queries whose sound buckets changed; returns removals.

        ``changed_keys`` holds ``(phonetic_level, soundex_key)`` pairs, as
        collected by :meth:`PerturbationDictionary.add_corpus`.  Cached
        queries over unchanged buckets survive (the shard-scoped alternative
        to clearing the whole cache on enrichment).
        """
        # Bump the epoch *before* dropping entries: a reader that computed
        # from the old bucket either stores before the drop (and is dropped)
        # or sees the moved epoch and skips storing.
        with self._epoch_lock:
            self._epoch += 1
        if self.cache is None:
            return 0
        return self.cache.invalidate_tags(
            sound_tag(level, key) for level, key in changed_keys
        )

    def look_up(
        self,
        query: str,
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        canonical_distance: bool = False,
        use_transpositions: bool | None = None,
    ) -> LookupResult:
        """Return ``P_query``: the perturbations of ``query`` in the database.

        Parameters
        ----------
        query:
            The token to search for (typically a correctly-spelled keyword).
        phonetic_level / max_edit_distance:
            Override the configured ``k`` / ``d`` for this query (the paper's
            "advanced users ... through a provided API").
        case_sensitive:
            When ``False``, case variants are merged into a single match.
        canonical_distance:
            Compute the ``d`` bound between canonical (visually folded) forms
            instead of raw spellings.
        use_transpositions:
            Override the configured distance policy for this query: ``True``
            scores an adjacent swap as one edit (OSA/Damerau), ``False`` as
            two (plain Levenshtein), ``None`` keeps
            ``config.use_transpositions``.  The resolved policy is part of
            the cache key, so overridden and default queries never serve
            each other's results.
        """
        level = self.config.phonetic_level if phonetic_level is None else phonetic_level
        distance = (
            self.config.edit_distance if max_edit_distance is None else max_edit_distance
        )
        if self.cache is None:
            return self._execute(
                query, level, distance, case_sensitive, canonical_distance,
                use_transpositions,
            )
        cache_key = self.cache_key(
            query, level, distance, case_sensitive, canonical_distance,
            use_transpositions,
        )
        cached = self.cache.get(cache_key, default=None)
        if cached is not None:
            return cached
        epoch = self._epoch
        result = self._execute(
            query, level, distance, case_sensitive, canonical_distance,
            use_transpositions,
        )
        self.cache_result(
            result, case_sensitive, canonical_distance, epoch=epoch,
            use_transpositions=use_transpositions,
        )
        return result

    def look_up_many(
        self,
        queries: list[str] | tuple[str, ...],
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        use_transpositions: bool | None = None,
    ) -> dict[str, LookupResult]:
        """Bulk Look Up (the API layer's batch endpoint)."""
        return {
            query: self.look_up(
                query,
                phonetic_level=phonetic_level,
                max_edit_distance=max_edit_distance,
                case_sensitive=case_sensitive,
                use_transpositions=use_transpositions,
            )
            for query in queries
        }
