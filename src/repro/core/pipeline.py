"""The CrypText facade: one object exposing the paper's four functions.

:class:`CrypText` wires together the token database, the Look Up engine, the
Normalization function, the Perturbation function, and (optionally) a trained
coherency scorer, behind the compact API that the examples, the service
layer, and the benchmarks use::

    cryptext = CrypText.from_corpus(sentences)
    cryptext.look_up("democrats")            # §III-B
    cryptext.normalize("the demokRATs ...")  # §III-C
    cryptext.perturb("the democrats ...", ratio=0.25)  # §III-D

Social Listening (§III-E) lives in :mod:`repro.social.listening` because it
needs a platform to listen to; :meth:`CrypText.social_listener` constructs
one bound to this instance's dictionary.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, TYPE_CHECKING

from ..config import CrypTextConfig, DEFAULT_CONFIG
from ..lm import CoherencyScorer
from ..obs.registry import OBS
from ..storage import DocumentStore, TTLCache
from ..text.tokenizer import Tokenizer
from ..text.wordlist import EnglishLexicon, default_lexicon
from .dictionary import DictionaryStats, PerturbationDictionary
from .lookup import LookupEngine, LookupResult
from .normalizer import NormalizationResult, Normalizer
from .perturber import PerturbationOutcome, Perturber

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from ..batch import BatchEngine
    from ..social.listening import SocialListener
    from ..social.platform import SocialPlatform


class CrypText:
    """End-to-end CrypText system over an in-process database.

    Most callers should use the :meth:`from_corpus` factory, which builds the
    dictionary, trains the coherency scorer, and seeds the English lexicon in
    one call.  The plain constructor accepts pre-built components for
    advanced composition (e.g. sharing one document store across systems).
    """

    def __init__(
        self,
        dictionary: PerturbationDictionary,
        config: CrypTextConfig = DEFAULT_CONFIG,
        scorer: CoherencyScorer | None = None,
        cache: TTLCache | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.config = config
        self.dictionary = dictionary
        self.scorer = scorer
        if cache is None and config.cache_enabled:
            # Always own the query cache so learn_from() can invalidate it;
            # otherwise the lookup engine would create a private one that the
            # facade cannot see.
            cache = TTLCache(
                max_entries=config.cache_max_entries,
                default_ttl=config.cache_ttl_seconds,
            )
        self.cache = cache
        self.lookup_engine = LookupEngine(dictionary, config=config, cache=cache)
        self.normalizer = Normalizer(dictionary, scorer=scorer, config=config)
        self.perturber = Perturber(self.lookup_engine, config=config, rng=rng)
        self._batch_engine: "BatchEngine | None" = None
        self._maintenance = None
        if config.obs_enabled:
            # Arm the process-global registry exactly like CRYPTEXT_OBS=1
            # would; the config carries the slow-query threshold with it.
            OBS.arm(slow_query_ms=config.slow_query_ms)

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #
    @classmethod
    def from_corpus(
        cls,
        texts: Sequence[str],
        config: CrypTextConfig = DEFAULT_CONFIG,
        lexicon: EnglishLexicon | None = None,
        store: DocumentStore | None = None,
        source: str = "corpus",
        seed_lexicon: bool = True,
        train_scorer: bool = True,
    ) -> "CrypText":
        """Build a complete CrypText system from an iterable of sentences.

        Parameters
        ----------
        texts:
            Source corpus (e.g. the synthetic social posts from
            :mod:`repro.datasets`, or any list of raw strings).
        config:
            Hyper-parameters; defaults mirror the paper (``k=1, d=3``).
        lexicon:
            English lexicon; the bundled one is used when omitted.
        store:
            Optional shared document store.
        source:
            Source label recorded on every dictionary entry.
        seed_lexicon:
            Also insert every lexicon word into the dictionary so Look Up
            buckets always contain the canonical spelling.
        train_scorer:
            Train the n-gram coherency scorer on the same corpus (needed for
            context-aware normalization ranking).
        """
        lexicon = lexicon if lexicon is not None else default_lexicon()
        dictionary = PerturbationDictionary(store=store, config=config, lexicon=lexicon)
        dictionary.add_corpus(texts, source=source)
        if seed_lexicon:
            dictionary.seed_lexicon()
        scorer: CoherencyScorer | None = None
        if train_scorer:
            tokenizer = Tokenizer(lowercase=True)
            tokenized = [
                [token.text for token in tokenizer.word_tokens(text)] for text in texts
            ]
            tokenized = [sentence for sentence in tokenized if sentence]
            if tokenized:
                scorer = CoherencyScorer(order=config.lm_order)
                scorer.fit(tokenized)
        cache = (
            TTLCache(
                max_entries=config.cache_max_entries,
                default_ttl=config.cache_ttl_seconds,
            )
            if config.cache_enabled
            else None
        )
        return cls(
            dictionary=dictionary,
            config=config,
            scorer=scorer,
            cache=cache,
            rng=random.Random(config.seed),
        )

    @classmethod
    def empty(
        cls,
        config: CrypTextConfig = DEFAULT_CONFIG,
        lexicon: EnglishLexicon | None = None,
        seed_lexicon: bool = True,
    ) -> "CrypText":
        """A system with no observed corpus (lexicon-only dictionary).

        Useful as the starting point for crawler-driven enrichment
        (:mod:`repro.social.crawler`), mirroring how the deployed system
        "constantly learn[s] new perturbations from social platforms".
        """
        lexicon = lexicon if lexicon is not None else default_lexicon()
        dictionary = PerturbationDictionary(config=config, lexicon=lexicon)
        if seed_lexicon:
            dictionary.seed_lexicon()
        return cls(dictionary=dictionary, config=config, rng=random.Random(config.seed))

    # ------------------------------------------------------------------ #
    # the four paper functions
    # ------------------------------------------------------------------ #
    def look_up(
        self,
        query: str,
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        use_transpositions: bool | None = None,
    ) -> LookupResult:
        """Look Up (§III-B): the perturbations ``P_query`` in the database.

        ``use_transpositions`` overrides the configured distance policy for
        this query only (``True`` = adjacent swaps cost one edit).
        """
        if OBS.armed:
            with OBS.span("lookup"):
                return self.lookup_engine.look_up(
                    query,
                    phonetic_level=phonetic_level,
                    max_edit_distance=max_edit_distance,
                    case_sensitive=case_sensitive,
                    use_transpositions=use_transpositions,
                )
        return self.lookup_engine.look_up(
            query,
            phonetic_level=phonetic_level,
            max_edit_distance=max_edit_distance,
            case_sensitive=case_sensitive,
            use_transpositions=use_transpositions,
        )

    def normalize(self, text: str) -> NormalizationResult:
        """Normalization (§III-C): detect and de-perturb ``text``."""
        if OBS.armed:
            with OBS.span("normalize"):
                return self.normalizer.normalize(text)
        return self.normalizer.normalize(text)

    def perturb(
        self,
        text: str,
        ratio: float | None = None,
        case_sensitive: bool | None = None,
    ) -> PerturbationOutcome:
        """Perturbation (§III-D): manipulate ``text`` at ratio ``ratio``."""
        return self.perturber.perturb(text, ratio=ratio, case_sensitive=case_sensitive)

    def social_listener(self, platform: "SocialPlatform") -> "SocialListener":
        """Social Listening (§III-E): a listener bound to this dictionary.

        The listener expands whole watch-lists through this instance's batch
        engine, so repeated keywords across a watch-list are resolved once.
        """
        from ..social.listening import SocialListener

        return SocialListener(
            platform=platform, lookup=self.lookup_engine, batch_engine=self.batch
        )

    # ------------------------------------------------------------------ #
    # batch & streaming
    # ------------------------------------------------------------------ #
    @property
    def batch(self) -> "BatchEngine":
        """The batch throughput engine bound to this system (lazily built).

        Shares this instance's query cache, so batch and per-call traffic
        keep each other warm, and is kept in sync by :meth:`learn_from`.
        """
        if self._batch_engine is None:
            self._batch_engine = self.make_batch_engine()
        return self._batch_engine

    def make_batch_engine(
        self,
        num_shards: int = 4,
        chunk_size: int = 256,
        max_in_flight: int = 4,
    ) -> "BatchEngine":
        """Build a batch engine over this system with custom shard/stream knobs.

        The returned engine becomes the one :attr:`batch` exposes and the one
        :meth:`learn_from` keeps synchronized.
        """
        from ..batch import BatchEngine

        self._batch_engine = BatchEngine(
            self.dictionary,
            lookup_engine=self.lookup_engine,
            config=self.config,
            scorer=self.scorer,
            perturber=self.perturber,
            num_shards=num_shards,
            chunk_size=chunk_size,
            max_in_flight=max_in_flight,
        )
        if self._maintenance is not None:
            self._batch_engine.attach_maintenance(self._maintenance)
        return self._batch_engine

    def look_up_batch(
        self,
        queries: Sequence[str],
        phonetic_level: int | None = None,
        max_edit_distance: int | None = None,
        case_sensitive: bool = True,
        use_transpositions: bool | None = None,
    ) -> list[LookupResult]:
        """Batch Look Up: one result per query, input order preserved.

        Identical to calling :meth:`look_up` once per query, but duplicates
        are resolved once and sound buckets are retrieved shard-parallel.
        ``use_transpositions`` overrides the distance policy for the batch.
        """
        return self.batch.look_up_batch(
            queries,
            phonetic_level=phonetic_level,
            max_edit_distance=max_edit_distance,
            case_sensitive=case_sensitive,
            use_transpositions=use_transpositions,
        )

    def normalize_batch(self, texts: Sequence[str]) -> list[NormalizationResult]:
        """Batch Normalization: one result per document, input order preserved.

        Identical to calling :meth:`normalize` once per document, with
        per-token candidate retrieval memoized across the batch.
        """
        return self.batch.normalize_batch(texts)

    def perturb_batch(
        self,
        texts: Sequence[str],
        ratio: float | None = None,
        case_sensitive: bool | None = None,
    ) -> list[PerturbationOutcome]:
        """Batch Perturbation: one outcome per document, input order preserved."""
        return self.batch.perturb_batch(texts, ratio=ratio, case_sensitive=case_sensitive)

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def learn_from(self, texts: Iterable[str], source: str = "stream") -> int:
        """Enrich the dictionary with newly observed texts (crawler path).

        Cache invalidation is shard-scoped: only cached queries whose sound
        buckets actually changed are dropped (plus untagged entries such as
        whole-response service caches, whose dependencies are unknown);
        unrelated cached queries survive the enrichment.  The batch engine's
        sharded index, if one was built, is refreshed for the same keys.
        """
        changed: set[tuple[int, str]] = set()
        added = self.dictionary.learn_batch(texts, source=source, changed_keys=changed)
        self.note_external_changes(changed)
        return added

    def note_external_changes(self, changed: set[tuple[int, str]]) -> None:
        """Propagate dictionary changes that bypassed this facade's writers.

        The invalidation half of :meth:`learn_from`, shared with follower
        replication (which mutates the dictionary by replaying WAL records):
        refreshes the batch engine's sharded index and drops exactly the
        cached queries whose sound buckets changed, plus untagged entries
        whose dependencies are unknown.
        """
        if self._batch_engine is not None:
            # Refreshes the sharded index and invalidates both the memoized
            # normalization candidates and the tagged query-cache entries.
            self._batch_engine.apply_enrichment(changed)
        else:
            self.lookup_engine.invalidate_sounds(changed)
        if self.cache is not None and changed:
            self.cache.invalidate_untagged()

    def stats(self) -> DictionaryStats:
        """Dictionary statistics (token counts, unique phonetic sounds)."""
        return self.dictionary.stats()

    # ------------------------------------------------------------------ #
    # warm-start snapshots & durability
    # ------------------------------------------------------------------ #
    def save_snapshot(
        self,
        path=None,
        levels: Sequence[int] | None = None,
        incremental: bool = False,
        shards: "int | None" = None,
    ):
        """Persist the dictionary plus compiled tries for warm restarts.

        Delegates to
        :meth:`~repro.core.dictionary.PerturbationDictionary.save_snapshot`;
        ``path`` defaults to ``config.snapshot_dir``.  ``incremental``
        writes a delta covering only the buckets changed since the last
        save instead of rewriting the whole snapshot; ``shards`` overrides
        ``config.snapshot_shards`` (> 0 writes the v2 sharded layout).
        """
        return self.dictionary.save_snapshot(
            path, levels=levels, incremental=incremental, shards=shards
        )

    def recover(self, snapshot_dir=None, wal_dir=None, strict: bool = False):
        """Crash recovery: hydrate base + deltas, then replay the WAL tail.

        Delegates to
        :meth:`~repro.core.dictionary.PerturbationDictionary.recover` and
        then drops every response-level cache (query cache, batch memo), so
        nothing computed against the pre-recovery state survives.  The
        change log stays attached: subsequent writes keep journaling.
        """
        report = self.dictionary.recover(snapshot_dir, wal_dir=wal_dir, strict=strict)
        if self.cache is not None:
            self.cache.clear()
        if self._batch_engine is not None:
            self._batch_engine.memo.clear()
        return report

    def make_maintenance_scheduler(
        self,
        snapshot_dir=None,
        wal_dir=None,
        policy=None,
    ):
        """Build (and remember) a :class:`~repro.wal.maintenance.MaintenanceScheduler`.

        ``snapshot_dir`` defaults to ``config.snapshot_dir``; when
        ``wal_dir`` (default ``config.wal_dir``, else ``<snapshot_dir>/wal``)
        is resolvable, a change log is opened there and attached to the
        dictionary so every write is journaled between saves.  The returned
        scheduler is also attached to the batch engine (existing or built
        later), whose streaming loops tick it between chunks.
        """
        from ..wal.maintenance import MaintenanceScheduler

        scheduler = MaintenanceScheduler(
            self.dictionary,
            snapshot_dir=snapshot_dir,
            wal_dir=wal_dir,
            policy=policy,
        )
        self._maintenance = scheduler
        if self._batch_engine is not None:
            self._batch_engine.attach_maintenance(scheduler)
        return scheduler

    @property
    def maintenance(self):
        """The maintenance scheduler built by :meth:`make_maintenance_scheduler`."""
        return self._maintenance

    def load_snapshot(self, path=None, strict: bool = False):
        """Hydrate the dictionary and every live cache layer from a snapshot.

        On success the batch engine's sharded index (when one was built) is
        warmed from the same snapshot and the query cache is cleared, so no
        stale pre-load result survives.  On failure (corrupt file, version
        or fingerprint mismatch) the system keeps its current state and the
        report's ``reason`` says why — unless ``strict``, which raises.
        """
        report = self.dictionary.load_snapshot(path, strict=strict)
        if report.loaded:
            if self.cache is not None:
                self.cache.clear()
            if self._batch_engine is not None:
                self._batch_engine.memo.clear()
                # Re-warm the already-built shards from the same snapshot
                # (the observer refresh only *drops* their compiled tries);
                # the fingerprint matches by construction, so this installs
                # the hydrated families instead of recompiling per bucket.
                self._batch_engine.warm_from_snapshot(
                    self.dictionary._snapshot_path(path)
                )
        return report
