"""Classification metrics.

Figure 4 of the paper reports the *accuracy* of third-party NLP APIs on
inputs perturbed at increasing ratios; the benchmark page additionally needs
per-class precision/recall/F1.  These helpers are dependency-free and work on
plain label sequences.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from ..errors import CrypTextError

Label = Hashable


def _check_lengths(y_true: Sequence[Label], y_pred: Sequence[Label]) -> None:
    if len(y_true) != len(y_pred):
        raise CrypTextError(
            f"label sequences differ in length: {len(y_true)} vs {len(y_pred)}"
        )
    if not y_true:
        raise CrypTextError("cannot compute metrics on empty label sequences")


def accuracy(y_true: Sequence[Label], y_pred: Sequence[Label]) -> float:
    """Fraction of predictions equal to the reference labels."""
    _check_lengths(y_true, y_pred)
    correct = sum(1 for truth, prediction in zip(y_true, y_pred) if truth == prediction)
    return correct / len(y_true)


@dataclass(frozen=True)
class ConfusionMatrix:
    """Confusion counts for a multi-class problem."""

    labels: tuple[Label, ...]
    counts: Mapping[tuple[Label, Label], int]

    @classmethod
    def from_labels(
        cls, y_true: Sequence[Label], y_pred: Sequence[Label]
    ) -> "ConfusionMatrix":
        """Build the matrix from reference and predicted label sequences."""
        _check_lengths(y_true, y_pred)
        labels = tuple(sorted(set(y_true) | set(y_pred), key=str))
        counts: Counter[tuple[Label, Label]] = Counter()
        for truth, prediction in zip(y_true, y_pred):
            counts[(truth, prediction)] += 1
        return cls(labels=labels, counts=dict(counts))

    def count(self, true_label: Label, predicted_label: Label) -> int:
        """Number of samples with the given (true, predicted) pair."""
        return self.counts.get((true_label, predicted_label), 0)

    def support(self, label: Label) -> int:
        """Number of reference samples of ``label``."""
        return sum(
            count for (truth, _prediction), count in self.counts.items() if truth == label
        )

    def predicted(self, label: Label) -> int:
        """Number of samples predicted as ``label``."""
        return sum(
            count
            for (_truth, prediction), count in self.counts.items()
            if prediction == label
        )

    def as_table(self) -> list[list[int]]:
        """Dense row-major matrix ordered by :attr:`labels`."""
        return [
            [self.count(true_label, predicted_label) for predicted_label in self.labels]
            for true_label in self.labels
        ]


def precision_recall_f1(
    y_true: Sequence[Label], y_pred: Sequence[Label], positive_label: Label
) -> tuple[float, float, float]:
    """Precision, recall and F1 of ``positive_label``.

    Degenerate cases (no predicted positives / no reference positives) yield
    zeros rather than raising, matching common evaluation-toolkit behaviour.
    """
    _check_lengths(y_true, y_pred)
    true_positive = sum(
        1
        for truth, prediction in zip(y_true, y_pred)
        if truth == positive_label and prediction == positive_label
    )
    predicted_positive = sum(1 for prediction in y_pred if prediction == positive_label)
    actual_positive = sum(1 for truth in y_true if truth == positive_label)
    precision = true_positive / predicted_positive if predicted_positive else 0.0
    recall = true_positive / actual_positive if actual_positive else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return precision, recall, f1


def macro_f1(y_true: Sequence[Label], y_pred: Sequence[Label]) -> float:
    """Unweighted mean of per-class F1 scores."""
    _check_lengths(y_true, y_pred)
    labels = sorted(set(y_true), key=str)
    scores = [precision_recall_f1(y_true, y_pred, label)[2] for label in labels]
    return sum(scores) / len(scores)


def classification_report(
    y_true: Sequence[Label], y_pred: Sequence[Label]
) -> dict[str, object]:
    """Accuracy, macro F1 and per-class precision/recall/F1/support."""
    _check_lengths(y_true, y_pred)
    labels = sorted(set(y_true) | set(y_pred), key=str)
    matrix = ConfusionMatrix.from_labels(y_true, y_pred)
    per_class: dict[str, dict[str, float | int]] = {}
    for label in labels:
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, label)
        per_class[str(label)] = {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "support": matrix.support(label),
        }
    return {
        "accuracy": accuracy(y_true, y_pred),
        "macro_f1": macro_f1(y_true, y_pred),
        "per_class": per_class,
    }
