"""Evaluation metrics used by the robustness benchmarks."""

from .classification import (
    ConfusionMatrix,
    accuracy,
    precision_recall_f1,
    macro_f1,
    classification_report,
)

__all__ = [
    "ConfusionMatrix",
    "accuracy",
    "precision_recall_f1",
    "macro_f1",
    "classification_report",
]
