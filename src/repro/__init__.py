"""CrypText reproduction: human-written text perturbations in the wild.

This package is a from-scratch reproduction of *CRYPTEXT: Database and
Interactive Toolkit of Human-Written Text Perturbations in the Wild*
(Le, Ye, Hu, Lee — ICDE 2023).  It provides:

* the human-written token database and the customized Soundex encoding it is
  keyed by (:mod:`repro.core`);
* the four interactive functions — Look Up, Normalization, Perturbation and
  Social Listening;
* every substrate the system depends on — an embedded document store and
  cache (:mod:`repro.storage`), an n-gram coherency scorer (:mod:`repro.lm`),
  a sentiment analyzer (:mod:`repro.sentiment`), simulated downstream NLP
  APIs (:mod:`repro.classifiers`), a simulated social platform with crawler
  (:mod:`repro.social`), synthetic corpora (:mod:`repro.datasets`), a
  token-authorized service layer (:mod:`repro.api`) and visualization data
  exports (:mod:`repro.viz`);
* the machine-generated perturbation baselines the paper contrasts with
  (:mod:`repro.adversarial`).

Quickstart::

    from repro import CrypText
    from repro.datasets import build_social_corpus

    corpus = build_social_corpus(num_posts=500, seed=7)
    cryptext = CrypText.from_corpus([post.text for post in corpus])
    print(cryptext.look_up("democrats").tokens)
    print(cryptext.perturb("the democrats and republicans debate", ratio=0.5).perturbed_text)
    print(cryptext.normalize("the demokrats support the vacc1ne mandate").normalized_text)
"""

from .config import CrypTextConfig, DEFAULT_CONFIG
from .errors import CrypTextError
from .core import (
    CompiledBucket,
    CrypText,
    CustomSoundex,
    AddOutcome,
    DictionaryEntry,
    DictionaryStats,
    RecoveryReport,
    SnapshotLoadReport,
    SnapshotSaveReport,
    TrieFamily,
    TrieFamilyRegistry,
    LookupEngine,
    LookupResult,
    NormalizationResult,
    Normalizer,
    OriginalSoundex,
    PerturbationCategory,
    PerturbationDictionary,
    PerturbationMatch,
    PerturbationOutcome,
    Perturber,
    SMSCheck,
    SMSResult,
    bounded_levenshtein,
    categorize_perturbation,
    damerau_levenshtein_distance,
    levenshtein_distance,
    similarity_ratio,
    soundex_key,
)
from .batch import BatchEngine, EnrichmentReport, ShardedPhoneticIndex

__version__ = "1.1.0"

__all__ = [
    "BatchEngine",
    "EnrichmentReport",
    "ShardedPhoneticIndex",
    "CrypTextConfig",
    "DEFAULT_CONFIG",
    "CrypTextError",
    "CrypText",
    "CompiledBucket",
    "TrieFamily",
    "TrieFamilyRegistry",
    "RecoveryReport",
    "SnapshotLoadReport",
    "SnapshotSaveReport",
    "CustomSoundex",
    "OriginalSoundex",
    "soundex_key",
    "AddOutcome",
    "DictionaryEntry",
    "DictionaryStats",
    "PerturbationDictionary",
    "LookupEngine",
    "LookupResult",
    "PerturbationMatch",
    "Normalizer",
    "NormalizationResult",
    "Perturber",
    "PerturbationOutcome",
    "PerturbationCategory",
    "categorize_perturbation",
    "SMSCheck",
    "SMSResult",
    "levenshtein_distance",
    "bounded_levenshtein",
    "damerau_levenshtein_distance",
    "similarity_ratio",
    "__version__",
]
