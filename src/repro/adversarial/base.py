"""Shared machinery of the machine-generated perturbation baselines."""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from ..errors import CrypTextError
from ..text.tokenizer import Token, Tokenizer, detokenize


@dataclass(frozen=True)
class PerturbationRecord:
    """One token replaced by a baseline attack."""

    original: str
    perturbed: str
    start: int
    end: int
    operator: str

    def to_dict(self) -> dict[str, object]:
        """Serialize for comparison benchmarks."""
        return {
            "original": self.original,
            "perturbed": self.perturbed,
            "start": self.start,
            "end": self.end,
            "operator": self.operator,
        }


class CharacterPerturber(ABC):
    """Base class: sample tokens at a ratio, apply a character-level operator.

    Subclasses implement :meth:`perturb_token`, which returns the perturbed
    spelling of a single token (or the token unchanged when no operator
    applies, e.g. single-character tokens).

    Parameters
    ----------
    seed:
        RNG seed; every baseline is deterministic given its seed.
    min_token_length:
        Tokens shorter than this are never perturbed (attacking one-letter
        tokens is meaningless and most papers skip them).
    """

    #: Name used in benchmark outputs.
    name: str = "baseline"

    def __init__(self, seed: int = 0, min_token_length: int = 3) -> None:
        self.rng = random.Random(seed)
        self.min_token_length = min_token_length
        self.tokenizer = Tokenizer(lowercase=False)

    # ------------------------------------------------------------------ #
    @abstractmethod
    def perturb_token(self, token: str) -> tuple[str, str]:
        """Return ``(perturbed_token, operator_name)`` for one token."""

    def _eligible_tokens(self, text: str) -> list[Token]:
        return [
            token
            for token in self.tokenizer.word_tokens(text)
            if len(token.text) >= self.min_token_length
        ]

    def perturb(self, text: str, ratio: float = 0.25) -> str:
        """Perturb ``text`` at token ratio ``ratio`` and return the new text."""
        return self.perturb_with_records(text, ratio=ratio)[0]

    def perturb_with_records(
        self, text: str, ratio: float = 0.25
    ) -> tuple[str, list[PerturbationRecord]]:
        """Perturb ``text`` and also return what was changed."""
        if not 0.0 <= ratio <= 1.0:
            raise CrypTextError(f"ratio must lie in [0, 1], got {ratio}")
        eligible = self._eligible_tokens(text)
        if not eligible or ratio == 0.0:
            return text, []
        target_count = max(1, math.ceil(ratio * len(eligible))) if ratio > 0 else 0
        chosen = self.rng.sample(eligible, min(target_count, len(eligible)))
        replacements: list[tuple[Token, str]] = []
        records: list[PerturbationRecord] = []
        for token in chosen:
            perturbed, operator = self.perturb_token(token.text)
            if perturbed == token.text:
                continue
            replacements.append((token, perturbed))
            records.append(
                PerturbationRecord(
                    original=token.text,
                    perturbed=perturbed,
                    start=token.start,
                    end=token.end,
                    operator=operator,
                )
            )
        perturbed_text = detokenize(text, replacements) if replacements else text
        records.sort(key=lambda record: record.start)
        return perturbed_text, records

    def perturb_many(self, texts: Sequence[str], ratio: float = 0.25) -> list[str]:
        """Perturb a batch of texts."""
        return [self.perturb(text, ratio=ratio) for text in texts]

    # ------------------------------------------------------------------ #
    # helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def _random_inner_index(self, token: str) -> int:
        """Random index excluding the first and last character when possible.

        Attacks prefer inner characters because word-initial and word-final
        edits are more disruptive to human readability.
        """
        if len(token) <= 2:
            return self.rng.randrange(len(token))
        return self.rng.randrange(1, len(token) - 1)

    @staticmethod
    def _replace_at(token: str, index: int, replacement: str) -> str:
        return token[:index] + replacement + token[index + 1 :]

    @staticmethod
    def _delete_at(token: str, index: int) -> str:
        return token[:index] + token[index + 1 :]

    @staticmethod
    def _insert_at(token: str, index: int, insertion: str) -> str:
        return token[:index] + insertion + token[index:]

    @staticmethod
    def _swap_at(token: str, index: int) -> str:
        if index + 1 >= len(token):
            return token
        chars = list(token)
        chars[index], chars[index + 1] = chars[index + 1], chars[index]
        return "".join(chars)
