"""TextBugger character-level perturbation operators (Li et al., NDSS 2018).

The paper cites TextBugger as the canonical machine-generated attack:
"swapping, deleting a character in a word (e.g. 'democrats' -> 'demorcats'),
replacing a character by its most probable misspell (e.g. 'republicans' ->
'rwpublicans'), replacing a character by another visually similar digit or
symbol (e.g. 'democrats' -> 'dem0cr@ts')".  This implementation reproduces
those five black-box *bug generation* operators:

* ``insert``  — insert a space-free character inside the word;
* ``delete``  — delete a random inner character;
* ``swap``    — swap two adjacent inner characters;
* ``sub-c``   — substitute a character with an adjacent keyboard key
  (the "most probable misspell");
* ``sub-w``   — substitute a character with a visually similar symbol.

The original attack greedily picks the bug that most reduces the victim
model's confidence; without white-box access this implementation samples the
operator uniformly (or per caller-supplied weights), which is the standard
black-box transfer setting.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import CrypTextError
from ..text.charmap import LEET_SUBSTITUTIONS
from .base import CharacterPerturber

#: QWERTY adjacency used for the "most probable misspell" operator.
KEYBOARD_NEIGHBORS: dict[str, str] = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "ol",
    "a": "qsz", "s": "awdx", "d": "sefc", "f": "drgv", "g": "fthb",
    "h": "gyjn", "j": "hukm", "k": "jil", "l": "kop",
    "z": "asx", "x": "zsdc", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
}

#: The five TextBugger operators.
TEXTBUGGER_OPERATORS: tuple[str, ...] = ("insert", "delete", "swap", "sub-c", "sub-w")


class TextBugger(CharacterPerturber):
    """Black-box TextBugger bug generator.

    Parameters
    ----------
    seed:
        RNG seed.
    operators:
        Subset of :data:`TEXTBUGGER_OPERATORS` to draw from (all by default).
    operator_weights:
        Optional sampling weights per operator.
    """

    name = "textbugger"

    def __init__(
        self,
        seed: int = 0,
        operators: Sequence[str] | None = None,
        operator_weights: Mapping[str, float] | None = None,
    ) -> None:
        super().__init__(seed=seed)
        chosen = tuple(operators) if operators is not None else TEXTBUGGER_OPERATORS
        unknown = [op for op in chosen if op not in TEXTBUGGER_OPERATORS]
        if unknown:
            raise CrypTextError(f"unknown TextBugger operators: {unknown}")
        if not chosen:
            raise CrypTextError("at least one operator is required")
        self.operators = chosen
        if operator_weights is None:
            self.weights = tuple(1.0 for _ in chosen)
        else:
            self.weights = tuple(float(operator_weights.get(op, 1.0)) for op in chosen)

    # ------------------------------------------------------------------ #
    def _apply(self, operator: str, token: str) -> str:
        index = self._random_inner_index(token)
        char = token[index].lower()
        if operator == "insert":
            insertion = self.rng.choice("aeiou" + char)
            return self._insert_at(token, index + 1, insertion)
        if operator == "delete":
            return self._delete_at(token, index)
        if operator == "swap":
            return self._swap_at(token, index)
        if operator == "sub-c":
            neighbors = KEYBOARD_NEIGHBORS.get(char)
            if not neighbors:
                return token
            replacement = self.rng.choice(neighbors)
            if token[index].isupper():
                replacement = replacement.upper()
            return self._replace_at(token, index, replacement)
        if operator == "sub-w":
            visual = LEET_SUBSTITUTIONS.get(char)
            if not visual:
                return token
            return self._replace_at(token, index, self.rng.choice(visual))
        raise CrypTextError(f"unknown operator {operator!r}")

    def perturb_token(self, token: str) -> tuple[str, str]:
        """Apply one randomly drawn TextBugger operator to ``token``."""
        operator = self.rng.choices(self.operators, weights=self.weights, k=1)[0]
        perturbed = self._apply(operator, token)
        if perturbed == token:
            # The drawn operator had no effect (e.g. no keyboard neighbor);
            # fall back to deletion, which always changes the token.
            perturbed = self._delete_at(token, self._random_inner_index(token))
            operator = "delete"
        return perturbed, operator
