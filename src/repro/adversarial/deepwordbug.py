"""DeepWordBug character transformations (Gao et al., SPW 2018).

DeepWordBug scores tokens with a black-box scoring function and transforms
the highest-scoring ones with one of four character operators — adjacent
swap, substitution, deletion, insertion — the substitution/insertion
characters being drawn so the result stays visually close (the paper
highlights its homoglyph flavour).  Without a victim model the token
selection is uniform at the caller's ratio (handled by the shared base
class); this module reproduces the four transformation operators.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import CrypTextError
from ..text.charmap import LEET_SUBSTITUTIONS
from .base import CharacterPerturber

#: The four DeepWordBug transformers.
DEEPWORDBUG_OPERATORS: tuple[str, ...] = ("swap", "substitute", "delete", "insert")


class DeepWordBug(CharacterPerturber):
    """DeepWordBug transformation functions.

    Parameters
    ----------
    seed:
        RNG seed.
    operators:
        Subset of :data:`DEEPWORDBUG_OPERATORS` to draw from.
    use_homoglyphs:
        When ``True`` (default) substitutions and insertions prefer
        homoglyph/leet characters, matching the paper's description of the
        attack; otherwise a random ASCII letter is used.
    """

    name = "deepwordbug"

    def __init__(
        self,
        seed: int = 0,
        operators: Sequence[str] | None = None,
        use_homoglyphs: bool = True,
    ) -> None:
        super().__init__(seed=seed)
        chosen = tuple(operators) if operators is not None else DEEPWORDBUG_OPERATORS
        unknown = [op for op in chosen if op not in DEEPWORDBUG_OPERATORS]
        if unknown:
            raise CrypTextError(f"unknown DeepWordBug operators: {unknown}")
        if not chosen:
            raise CrypTextError("at least one operator is required")
        self.operators = chosen
        self.use_homoglyphs = use_homoglyphs

    def _substitution_for(self, char: str) -> str:
        lowered = char.lower()
        if self.use_homoglyphs and lowered in LEET_SUBSTITUTIONS:
            return self.rng.choice(LEET_SUBSTITUTIONS[lowered])
        alphabet = "abcdefghijklmnopqrstuvwxyz".replace(lowered, "") or "x"
        replacement = self.rng.choice(alphabet)
        return replacement.upper() if char.isupper() else replacement

    def perturb_token(self, token: str) -> tuple[str, str]:
        """Apply one randomly drawn DeepWordBug transformer to ``token``."""
        operator = self.rng.choice(self.operators)
        index = self._random_inner_index(token)
        if operator == "swap":
            perturbed = self._swap_at(token, index)
        elif operator == "substitute":
            perturbed = self._replace_at(token, index, self._substitution_for(token[index]))
        elif operator == "delete":
            perturbed = self._delete_at(token, index)
        else:  # insert
            perturbed = self._insert_at(token, index, self._substitution_for(token[index]))
        if perturbed == token:
            perturbed = self._delete_at(token, index)
            operator = "delete"
        return perturbed, operator
