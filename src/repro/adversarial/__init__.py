"""Machine-generated character-level perturbation baselines.

Paper §II-B surveys the adversarial-NLP manipulation strategies that
CrypText's *human-written* perturbations are contrasted with, and §III-D
positions CrypText against them as the more realistic robustness probe:

* **TextBugger** (Li et al., NDSS 2018) — insert / delete / swap characters,
  substitute a character with a likely keyboard typo, or with a visually
  similar symbol;
* **VIPER** (Eger et al., NAACL 2019) — replace characters with visually
  similar *accented / decorated* code points;
* **DeepWordBug** (Gao et al., SPW 2018) — swap / substitute / delete /
  insert characters, with homoglyph substitution.

These from-scratch implementations reproduce each attack's *perturbation
operators* (not the model-gradient target selection, which needs access to a
victim model's internals); tokens to perturb are chosen uniformly at a
caller-supplied ratio so the baselines plug into the same
:class:`~repro.classifiers.apis.RobustnessEvaluator` harness as CrypText.
"""

from .base import CharacterPerturber, PerturbationRecord
from .textbugger import TextBugger
from .viper import Viper
from .deepwordbug import DeepWordBug

__all__ = [
    "CharacterPerturber",
    "PerturbationRecord",
    "TextBugger",
    "Viper",
    "DeepWordBug",
]
