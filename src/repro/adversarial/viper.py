"""VIPER visual perturbations (Eger et al., NAACL 2019).

VIPER ("VIsual PERturber") replaces characters with visually similar
code points drawn from a visual-embedding neighborhood; the paper's example
is "democrats" -> "d ˙emocr¯ats" (accented variants).  This implementation
reproduces the attack's *easy/"DCES-like"* setting: each selected character
is replaced, with probability ``prob``, by a visually confusable variant
drawn from a table of accented and decorated forms.
"""

from __future__ import annotations

from ..errors import CrypTextError
from .base import CharacterPerturber

#: Visually-confusable variants per ASCII letter (accented / decorated forms).
VISUAL_VARIANTS: dict[str, tuple[str, ...]] = {
    "a": ("á", "à", "â", "ä", "ã", "å", "ā", "ă"),
    "b": ("ḃ", "ḅ"),
    "c": ("ç", "ć", "ĉ", "č", "ċ"),
    "d": ("ď", "ḋ", "ḍ"),
    "e": ("é", "è", "ê", "ë", "ē", "ĕ", "ė"),
    "f": ("ḟ",),
    "g": ("ğ", "ĝ", "ġ", "ģ"),
    "h": ("ĥ", "ḣ", "ḥ"),
    "i": ("í", "ì", "î", "ï", "ī", "ĭ"),
    "j": ("ĵ",),
    "k": ("ķ", "ḳ"),
    "l": ("ĺ", "ļ", "ľ", "ḷ"),
    "m": ("ṁ", "ṃ"),
    "n": ("ñ", "ń", "ņ", "ň", "ṅ"),
    "o": ("ó", "ò", "ô", "ö", "õ", "ō", "ŏ"),
    "p": ("ṗ",),
    "r": ("ŕ", "ř", "ṙ"),
    "s": ("ś", "ŝ", "ş", "š", "ṡ"),
    "t": ("ţ", "ť", "ṫ", "ṭ"),
    "u": ("ú", "ù", "û", "ü", "ū", "ŭ"),
    "v": ("ṿ",),
    "w": ("ŵ", "ẁ", "ẃ", "ẇ"),
    "x": ("ẋ",),
    "y": ("ý", "ŷ", "ÿ", "ẏ"),
    "z": ("ź", "ż", "ž"),
}


class Viper(CharacterPerturber):
    """Visual character replacement attack.

    Parameters
    ----------
    seed:
        RNG seed.
    prob:
        Per-character replacement probability within a selected token
        (VIPER's ``p`` parameter); at least one character is always replaced
        so selected tokens are guaranteed to change.
    """

    name = "viper"

    def __init__(self, seed: int = 0, prob: float = 0.4) -> None:
        super().__init__(seed=seed)
        if not 0.0 < prob <= 1.0:
            raise CrypTextError(f"prob must lie in (0, 1], got {prob}")
        self.prob = prob

    def perturb_token(self, token: str) -> tuple[str, str]:
        """Replace characters of ``token`` with accented lookalikes."""
        characters = list(token)
        replaceable = [
            index for index, char in enumerate(characters) if char.lower() in VISUAL_VARIANTS
        ]
        if not replaceable:
            return token, "visual"
        changed = False
        for index in replaceable:
            if self.rng.random() <= self.prob:
                characters[index] = self.rng.choice(VISUAL_VARIANTS[characters[index].lower()])
                changed = True
        if not changed:
            index = self.rng.choice(replaceable)
            characters[index] = self.rng.choice(VISUAL_VARIANTS[characters[index].lower()])
        return "".join(characters), "visual"
